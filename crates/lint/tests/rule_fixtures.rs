//! Per-rule fixture tests: every rule in the catalogue has a firing
//! fixture that fails without it and a clean fixture that stays
//! silent. The fixtures live in `tests/fixtures/` — a directory name
//! the workspace walk excludes, because the firing fixtures are
//! intentionally violating input, and one cargo never compiles (only
//! direct children of `tests/` become test binaries).
//!
//! The fixtures are read with `fs`, never embedded as string literals:
//! embedding them would put the violating tokens inside *this* file,
//! which the workspace pass does scan.

use riskpipe_lint::{lint_source, lint_sources, Config, Finding, RuleId, Severity};
use std::path::Path;
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint a fixture as if it lived at `as_path` in the workspace.
fn lint_fixture(name: &str, as_path: &str) -> Vec<Finding> {
    lint_source(as_path, &fixture(name), &Config::default())
}

fn rules_of(findings: &[Finding]) -> Vec<RuleId> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_fires_on_hash_iteration_in_merge_code() {
    let findings = lint_fixture("d1_fire.rs", "crates/app/src/partials.rs");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == RuleId::D1 && f.severity == Severity::Deny),
        "{findings:?}"
    );
}

#[test]
fn d1_clean_btree_and_sorted_drain_pass() {
    let findings = lint_fixture("d1_clean.rs", "crates/app/src/partials.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_fires_on_partial_cmp_comparators() {
    let findings = lint_fixture("d2_fire.rs", "crates/app/src/rank.rs");
    let d2: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::D2).collect();
    assert_eq!(
        d2.len(),
        2,
        "sort_by and max_by should both fire: {findings:?}"
    );
    assert!(d2.iter().all(|f| f.severity == Severity::Deny));
}

#[test]
fn d2_clean_total_cmp_passes() {
    let findings = lint_fixture("d2_clean.rs", "crates/app/src/rank.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_fires_outside_timing_modules() {
    let findings = lint_fixture("d3_fire.rs", "crates/app/src/stage.rs");
    let d3: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::D3).collect();
    assert_eq!(
        d3.len(),
        2,
        "Instant::now and SystemTime::now should both fire: {findings:?}"
    );
}

#[test]
fn d3_same_source_is_exempt_in_a_timing_module() {
    // The very same firing source, linted under the designated timing
    // module path, is clean — the allowlist is path-based.
    let findings = lint_fixture("d3_fire.rs", "crates/bench/src/stage.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d3_clean_duration_data_passes() {
    let findings = lint_fixture("d3_clean.rs", "crates/app/src/stage.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- D4

#[test]
fn d4_fires_on_entropy_seeded_rng() {
    let findings = lint_fixture("d4_fire.rs", "crates/app/src/sim.rs");
    let d4: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::D4).collect();
    assert_eq!(
        d4.len(),
        2,
        "thread_rng and from_entropy should both fire: {findings:?}"
    );
}

#[test]
fn d4_clean_explicit_seeds_pass() {
    let findings = lint_fixture("d4_clean.rs", "crates/app/src/sim.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- S1

#[test]
fn s1_fires_on_unaudited_unsafe() {
    let findings = lint_fixture("s1_fire.rs", "crates/app/src/view.rs");
    let s1: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::S1).collect();
    assert_eq!(
        s1.len(),
        2,
        "the unsafe impl and the unsafe block should both fire: {findings:?}"
    );
}

#[test]
fn s1_clean_audited_unsafe_passes() {
    let findings = lint_fixture("s1_clean.rs", "crates/app/src/view.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- S2

#[test]
fn s2_fires_as_deny_on_narrowing_casts_in_decode_code() {
    let findings = lint_fixture("s2_fire.rs", "crates/app/src/wire.rs");
    let s2: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::S2).collect();
    assert_eq!(s2.len(), 2, "{findings:?}");
    assert!(
        s2.iter().all(|f| f.severity == Severity::Deny),
        "S2 graduated from its warning period: {findings:?}"
    );
}

#[test]
fn s2_clean_checked_and_widening_casts_pass() {
    let findings = lint_fixture("s2_clean.rs", "crates/app/src/wire.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- C1

/// Lint the cross-file firing pair as two workspace files.
fn lint_c1_pair() -> Vec<Finding> {
    let files = vec![
        (
            "crates/app/src/drive.rs".to_string(),
            fixture("c1_fire_root.rs"),
        ),
        (
            "crates/app/src/gate.rs".to_string(),
            fixture("c1_fire_leaf.rs"),
        ),
    ];
    lint_sources(&files, &Config::default()).findings
}

#[test]
fn c1_cross_file_chain_fires_two_hops_from_the_pool_task() {
    let findings = lint_c1_pair();
    let c1: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::C1).collect();
    assert_eq!(c1.len(), 1, "{findings:?}");
    let f = c1[0];
    assert_eq!(f.severity, Severity::Deny);
    // The finding anchors at the blocking site in the leaf file...
    assert_eq!(f.path, "crates/app/src/gate.rs");
    assert!(f.message.contains("2 hop(s)"), "{}", f.message);
    // ...and carries the full chain: task closure → stage_kernel →
    // gate_barrier → the lock itself.
    assert_eq!(f.trace.len(), 4, "{:?}", f.trace);
    assert_eq!(f.trace[0].path, "crates/app/src/drive.rs");
    assert!(f.trace[0].name.contains("task closure"), "{:?}", f.trace);
    assert!(f.trace[1].name.contains("stage_kernel"), "{:?}", f.trace);
    assert!(f.trace[2].name.contains("gate_barrier"), "{:?}", f.trace);
    assert!(f.trace[3].name.contains("lock"), "{:?}", f.trace);
}

#[test]
fn c1_text_rendering_prints_the_call_chain() {
    let findings = lint_c1_pair();
    let text = findings
        .iter()
        .find(|f| f.rule == RuleId::C1)
        .expect("C1 finding")
        .to_string();
    assert!(text.contains("chain: crates/app/src/drive.rs"), "{text}");
    assert!(text.contains("-> crates/app/src/gate.rs"), "{text}");
}

#[test]
fn c1_clean_coordinator_side_blocking_passes() {
    let findings = lint_fixture("c1_clean.rs", "crates/app/src/drain.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn c1_root_in_a_test_path_is_exempt() {
    // The same firing pair linted under a tests/ path spawns no roots,
    // so the chain never forms.
    let files = vec![
        (
            "crates/app/tests/drive.rs".to_string(),
            fixture("c1_fire_root.rs"),
        ),
        (
            "crates/app/tests/gate.rs".to_string(),
            fixture("c1_fire_leaf.rs"),
        ),
    ];
    let findings = lint_sources(&files, &Config::default()).findings;
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- C2

#[test]
fn c2_fires_on_raw_writes_in_persistence_scope() {
    let findings = lint_fixture("c2_fire.rs", "crates/app/src/store.rs");
    let c2: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::C2).collect();
    assert_eq!(
        c2.len(),
        2,
        "fs::write and .truncate(true) should both fire: {findings:?}"
    );
    assert!(c2.iter().all(|f| f.severity == Severity::Deny));
}

#[test]
fn c2_clean_durable_routed_persistence_passes() {
    let findings = lint_fixture("c2_clean.rs", "crates/app/src/store.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn c2_same_source_is_exempt_inside_the_durable_module() {
    // The firing source, linted as the durable layer itself, is clean
    // — the exemption is path-based, mirroring D3's timing modules.
    let findings = lint_fixture("c2_fire.rs", "crates/tables/src/durable.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- L1

/// Lint the cross-file cycle pair as two files of one crate.
fn lint_l1_pair(alpha: &str, beta: &str) -> riskpipe_lint::Report {
    let files = vec![
        ("crates/app/src/alpha.rs".to_string(), fixture(alpha)),
        ("crates/app/src/beta.rs".to_string(), fixture(beta)),
    ];
    lint_sources(&files, &Config::default())
}

#[test]
fn l1_cross_file_cycle_fires_with_one_chain_per_edge() {
    let report = lint_l1_pair("l1_fire_alpha.rs", "l1_fire_beta.rs");
    let l1: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::L1)
        .collect();
    assert_eq!(l1.len(), 1, "one finding per cycle: {:?}", report.findings);
    let f = l1[0];
    assert_eq!(f.severity, Severity::Deny);
    assert!(f.message.contains("lock-order cycle"), "{}", f.message);
    assert!(
        f.message.contains("journal") && f.message.contains("registry"),
        "{}",
        f.message
    );
    // Two cycle edges (`journal` -> `registry` -> `journal`), each
    // proven by its own root→site chain.
    assert_eq!(f.chains.len(), 2, "{:?}", f.chains);
    assert!(f.chains.iter().all(|c| !c.is_empty()), "{:?}", f.chains);
    // One edge is created in each file: the chains together must span
    // both halves of the pair.
    let chain_paths: Vec<&str> = f
        .chains
        .iter()
        .flat_map(|c| c.iter().map(|fr| fr.path.as_str()))
        .collect();
    assert!(
        chain_paths.contains(&"crates/app/src/alpha.rs"),
        "{chain_paths:?}"
    );
    assert!(
        chain_paths.contains(&"crates/app/src/beta.rs"),
        "{chain_paths:?}"
    );
}

#[test]
fn l1_text_and_json_v3_render_every_chain() {
    let report = lint_l1_pair("l1_fire_alpha.rs", "l1_fire_beta.rs");
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == RuleId::L1)
        .expect("L1 finding");
    let text = f.to_string();
    assert!(text.contains("chain 1:"), "{text}");
    assert!(text.contains("chain 2:"), "{text}");
    let json = report.render_json();
    assert!(json.contains("\"version\": 3"), "{json}");
    assert!(json.contains("\"chains\": [["), "{json}");
}

#[test]
fn l1_clean_consistent_order_passes() {
    let report = lint_l1_pair("l1_clean_alpha.rs", "l1_clean_beta.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    // The graph itself is still derived: both locks, edges one-way.
    assert!(report.lock_graph.locks.contains(&"journal".to_string()));
    assert!(report.lock_graph.locks.contains(&"registry".to_string()));
    assert!(
        report
            .lock_graph
            .edges
            .iter()
            .all(|e| !(e.held == "journal" && e.acquired == "registry")),
        "clean pair must not create the reversed edge"
    );
}

// ---------------------------------------------------------------- L2

#[test]
fn l2_fires_on_guard_across_spawn_and_across_recv() {
    let findings = lint_fixture("l2_fire.rs", "crates/app/src/fanout.rs");
    let l2: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::L2).collect();
    assert!(
        l2.len() >= 2,
        "both the spawn hold and the recv hold should fire: {findings:?}"
    );
    assert!(l2.iter().all(|f| f.severity == Severity::Deny));
    assert!(
        l2.iter().any(|f| f.message.contains("`queue`")),
        "{findings:?}"
    );
    assert!(
        l2.iter()
            .any(|f| f.message.contains("`results`") && f.message.contains("recv")),
        "{findings:?}"
    );
}

#[test]
fn l2_clean_guard_scoped_out_before_the_boundary_passes() {
    let findings = lint_fixture("l2_clean.rs", "crates/app/src/fanout.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- L3

#[test]
fn l3_warns_on_guard_across_cross_crate_call() {
    let files = vec![
        (
            "crates/feed/src/publish.rs".to_string(),
            fixture("l3_fire_holder.rs"),
        ),
        (
            "crates/relay/src/forward.rs".to_string(),
            fixture("l3_fire_callee.rs"),
        ),
    ];
    let findings = lint_sources(&files, &Config::default()).findings;
    let l3: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::L3).collect();
    assert_eq!(l3.len(), 1, "{findings:?}");
    let f = l3[0];
    assert_eq!(f.severity, Severity::Warn);
    assert!(f.message.contains("cross-crate"), "{}", f.message);
    assert!(f.message.contains("`outbox`"), "{}", f.message);
}

#[test]
fn l3_same_crate_call_is_silent() {
    // The identical pair linted as one crate: order is readable
    // in-crate, so no warning.
    let files = vec![
        (
            "crates/feed/src/publish.rs".to_string(),
            fixture("l3_fire_holder.rs"),
        ),
        (
            "crates/feed/src/forward.rs".to_string(),
            fixture("l3_fire_callee.rs"),
        ),
    ];
    let findings = lint_sources(&files, &Config::default()).findings;
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l3_lock_leaf_crates_are_exempt() {
    // The callee linted under the configured lock-leaf prefix
    // (crates/obs by default): its locks never call back out, so the
    // hold creates no opaque edge.
    let files = vec![
        (
            "crates/feed/src/publish.rs".to_string(),
            fixture("l3_fire_holder.rs"),
        ),
        (
            "crates/obs/src/forward.rs".to_string(),
            fixture("l3_fire_callee.rs"),
        ),
    ];
    let findings = lint_sources(&files, &Config::default()).findings;
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- W1

#[test]
fn w1_warns_on_panic_paths_in_serving_crates() {
    let findings = lint_fixture("w1_fire.rs", "crates/core/src/stats.rs");
    let w1: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::W1).collect();
    assert_eq!(
        w1.len(),
        2,
        "the unwrap and the panic! should both warn: {findings:?}"
    );
    assert!(w1.iter().all(|f| f.severity == Severity::Warn));
}

#[test]
fn w1_is_scoped_to_serving_crates_and_library_code() {
    // Same source outside the serving set: silent.
    let non_serving = lint_fixture("w1_fire.rs", "crates/catmodel/src/stats.rs");
    assert!(non_serving.is_empty(), "{non_serving:?}");
    // Same source in a test path of a serving crate: silent.
    let test_path = lint_fixture("w1_fire.rs", "crates/core/tests/stats.rs");
    assert!(test_path.is_empty(), "{test_path:?}");
}

#[test]
fn w1_clean_total_function_passes() {
    let findings = lint_fixture("w1_clean.rs", "crates/core/src/stats.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ------------------------------------------------------ suppressions

#[test]
fn reasoned_suppression_silences_exactly_its_site() {
    let findings = lint_fixture("suppressed.rs", "crates/app/src/demo.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn suppression_above_an_attribute_stack_binds_to_the_item() {
    // Regression: the allow sits above `#[cfg(...)]`/`#[inline]`; it
    // must skip the attributes and cover the decorated fn, so neither
    // the D4 on the item nor an unused-suppression warning appears.
    let findings = lint_fixture("sup_attr.rs", "crates/app/src/demo.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn bad_suppressions_are_deny_and_do_not_suppress() {
    let findings = lint_fixture("bad_suppression.rs", "crates/app/src/demo.rs");
    // The reasonless allow(D4) does not silence the RNG finding...
    assert!(rules_of(&findings).contains(&RuleId::D4), "{findings:?}");
    // ...and both the reasonless and the unknown-rule suppression are
    // deny-level SUP findings.
    let sup: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::Sup && f.severity == Severity::Deny)
        .collect();
    assert_eq!(sup.len(), 2, "{findings:?}");
}

// ------------------------------------------------------- CLI surface

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_riskpipe-lint"))
}

#[test]
fn cli_json_report_on_a_firing_fixture() {
    let root = env!("CARGO_MANIFEST_DIR");
    let out = bin()
        .args(["--root", root, "--json", "tests/fixtures/d2_fire.rs"])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(out.status.code(), Some(1), "deny findings exit 1");
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.contains("\"version\": 3"), "{json}");
    assert!(json.contains("\"rule\": \"D2\""), "{json}");
    assert!(json.contains("\"severity\": \"deny\""), "{json}");
    assert!(json.contains("tests/fixtures/d2_fire.rs"), "{json}");
}

#[test]
fn cli_exit_codes_split_warn_from_deny() {
    let root = env!("CARGO_MANIFEST_DIR");
    // An unused suppression is warn-level: exit 0 by default...
    let warn_only = bin()
        .args(["--root", root, "tests/fixtures/sup_unused.rs"])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(warn_only.status.code(), Some(0));
    // ...and exit 1 under --deny-warnings.
    let denied = bin()
        .args([
            "--root",
            root,
            "--deny-warnings",
            "tests/fixtures/sup_unused.rs",
        ])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(denied.status.code(), Some(1));
}

#[test]
fn cli_exits_nonzero_on_graduated_s2() {
    let root = env!("CARGO_MANIFEST_DIR");
    // S2 findings are deny-level since graduation: exit 1 without
    // needing --deny-warnings.
    let denied = bin()
        .args(["--root", root, "tests/fixtures/s2_fire.rs"])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(denied.status.code(), Some(1));
}

#[test]
fn cli_json_v3_carries_the_c1_call_chain_trace() {
    // The fixture pair must live under a src/ layout — tests/fixtures
    // paths spawn no C1 roots — so stage a tiny workspace in tmp.
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("c1_cli");
    let src = tmp.join("crates/app/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(src.join("drive.rs"), fixture("c1_fire_root.rs")).expect("write");
    std::fs::write(src.join("gate.rs"), fixture("c1_fire_leaf.rs")).expect("write");
    let out = bin()
        .args([
            "--root",
            tmp.to_str().expect("utf8 path"),
            "--json",
            "crates",
        ])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.contains("\"version\": 3"), "{json}");
    assert!(json.contains("\"rule\": \"C1\""), "{json}");
    assert!(json.contains("\"trace\": ["), "{json}");
    assert!(
        json.contains("\"path\": \"crates/app/src/drive.rs\""),
        "{json}"
    );
    assert!(json.contains("\"name\": \"`stage_kernel`\""), "{json}");
}

#[test]
fn cli_baseline_ratchets_warn_findings() {
    let root = env!("CARGO_MANIFEST_DIR");
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("baseline");
    std::fs::create_dir_all(&tmp).expect("mkdir");
    let snapshot = tmp.join("lint-baseline.json");
    let snapshot_arg = snapshot.to_str().expect("utf8 path");
    // Snapshot the warn debt of the unused-suppression fixture...
    let wrote = bin()
        .args([
            "--root",
            root,
            "--write-baseline",
            snapshot_arg,
            "tests/fixtures/sup_unused.rs",
        ])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(wrote.status.code(), Some(0), "{wrote:?}");
    // ...which then passes --deny-warnings against its own baseline...
    let ok = bin()
        .args([
            "--root",
            root,
            "--deny-warnings",
            "--baseline",
            snapshot_arg,
            "tests/fixtures/sup_unused.rs",
        ])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(ok.status.code(), Some(0), "{ok:?}");
    // ...while an empty baseline treats the same warns as regressions.
    let empty = tmp.join("empty-baseline.json");
    std::fs::write(&empty, "{\"version\": 1, \"entries\": []}\n").expect("write");
    let denied = bin()
        .args([
            "--root",
            root,
            "--deny-warnings",
            "--baseline",
            empty.to_str().expect("utf8 path"),
            "tests/fixtures/sup_unused.rs",
        ])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(denied.status.code(), Some(1), "{denied:?}");
    let stderr = String::from_utf8(denied.stderr).expect("utf8");
    assert!(stderr.contains("exceeds baseline"), "{stderr}");
    // A malformed baseline is a usage error, not a silent pass.
    let bad = tmp.join("bad-baseline.json");
    std::fs::write(&bad, "{\"version\": 9}").expect("write");
    let usage = bin()
        .args([
            "--root",
            root,
            "--deny-warnings",
            "--baseline",
            bad.to_str().expect("utf8 path"),
            "tests/fixtures/sup_unused.rs",
        ])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(usage.status.code(), Some(2), "{usage:?}");
}

#[test]
fn cli_explain_covers_every_rule() {
    for rule in RuleId::ALL {
        let out = bin()
            .args(["--explain", rule.code()])
            .output()
            .expect("run riskpipe-lint");
        assert_eq!(out.status.code(), Some(0), "--explain {}", rule.code());
        let text = String::from_utf8(out.stdout).expect("utf8");
        assert!(
            text.contains(rule.code()),
            "--explain {} output: {text}",
            rule.code()
        );
    }
}
