//! Per-rule fixture tests: every rule in the catalogue has a firing
//! fixture that fails without it and a clean fixture that stays
//! silent. The fixtures live in `tests/fixtures/` — a directory name
//! the workspace walk excludes, because the firing fixtures are
//! intentionally violating input, and one cargo never compiles (only
//! direct children of `tests/` become test binaries).
//!
//! The fixtures are read with `fs`, never embedded as string literals:
//! embedding them would put the violating tokens inside *this* file,
//! which the workspace pass does scan.

use riskpipe_lint::{lint_source, Config, Finding, RuleId, Severity};
use std::path::Path;
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint a fixture as if it lived at `as_path` in the workspace.
fn lint_fixture(name: &str, as_path: &str) -> Vec<Finding> {
    lint_source(as_path, &fixture(name), &Config::default())
}

fn rules_of(findings: &[Finding]) -> Vec<RuleId> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_fires_on_hash_iteration_in_merge_code() {
    let findings = lint_fixture("d1_fire.rs", "crates/app/src/partials.rs");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == RuleId::D1 && f.severity == Severity::Deny),
        "{findings:?}"
    );
}

#[test]
fn d1_clean_btree_and_sorted_drain_pass() {
    let findings = lint_fixture("d1_clean.rs", "crates/app/src/partials.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_fires_on_partial_cmp_comparators() {
    let findings = lint_fixture("d2_fire.rs", "crates/app/src/rank.rs");
    let d2: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::D2).collect();
    assert_eq!(
        d2.len(),
        2,
        "sort_by and max_by should both fire: {findings:?}"
    );
    assert!(d2.iter().all(|f| f.severity == Severity::Deny));
}

#[test]
fn d2_clean_total_cmp_passes() {
    let findings = lint_fixture("d2_clean.rs", "crates/app/src/rank.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_fires_outside_timing_modules() {
    let findings = lint_fixture("d3_fire.rs", "crates/app/src/stage.rs");
    let d3: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::D3).collect();
    assert_eq!(
        d3.len(),
        2,
        "Instant::now and SystemTime::now should both fire: {findings:?}"
    );
}

#[test]
fn d3_same_source_is_exempt_in_a_timing_module() {
    // The very same firing source, linted under the designated timing
    // module path, is clean — the allowlist is path-based.
    let findings = lint_fixture("d3_fire.rs", "crates/bench/src/stage.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d3_clean_duration_data_passes() {
    let findings = lint_fixture("d3_clean.rs", "crates/app/src/stage.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- D4

#[test]
fn d4_fires_on_entropy_seeded_rng() {
    let findings = lint_fixture("d4_fire.rs", "crates/app/src/sim.rs");
    let d4: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::D4).collect();
    assert_eq!(
        d4.len(),
        2,
        "thread_rng and from_entropy should both fire: {findings:?}"
    );
}

#[test]
fn d4_clean_explicit_seeds_pass() {
    let findings = lint_fixture("d4_clean.rs", "crates/app/src/sim.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- S1

#[test]
fn s1_fires_on_unaudited_unsafe() {
    let findings = lint_fixture("s1_fire.rs", "crates/app/src/view.rs");
    let s1: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::S1).collect();
    assert_eq!(
        s1.len(),
        2,
        "the unsafe impl and the unsafe block should both fire: {findings:?}"
    );
}

#[test]
fn s1_clean_audited_unsafe_passes() {
    let findings = lint_fixture("s1_clean.rs", "crates/app/src/view.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- S2

#[test]
fn s2_fires_as_deny_on_narrowing_casts_in_decode_code() {
    let findings = lint_fixture("s2_fire.rs", "crates/app/src/wire.rs");
    let s2: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::S2).collect();
    assert_eq!(s2.len(), 2, "{findings:?}");
    assert!(
        s2.iter().all(|f| f.severity == Severity::Deny),
        "S2 graduated from its warning period: {findings:?}"
    );
}

#[test]
fn s2_clean_checked_and_widening_casts_pass() {
    let findings = lint_fixture("s2_clean.rs", "crates/app/src/wire.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ------------------------------------------------------ suppressions

#[test]
fn reasoned_suppression_silences_exactly_its_site() {
    let findings = lint_fixture("suppressed.rs", "crates/app/src/demo.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn bad_suppressions_are_deny_and_do_not_suppress() {
    let findings = lint_fixture("bad_suppression.rs", "crates/app/src/demo.rs");
    // The reasonless allow(D4) does not silence the RNG finding...
    assert!(rules_of(&findings).contains(&RuleId::D4), "{findings:?}");
    // ...and both the reasonless and the unknown-rule suppression are
    // deny-level SUP findings.
    let sup: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::Sup && f.severity == Severity::Deny)
        .collect();
    assert_eq!(sup.len(), 2, "{findings:?}");
}

// ------------------------------------------------------- CLI surface

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_riskpipe-lint"))
}

#[test]
fn cli_json_report_on_a_firing_fixture() {
    let root = env!("CARGO_MANIFEST_DIR");
    let out = bin()
        .args(["--root", root, "--json", "tests/fixtures/d2_fire.rs"])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(out.status.code(), Some(1), "deny findings exit 1");
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.contains("\"version\": 1"), "{json}");
    assert!(json.contains("\"rule\": \"D2\""), "{json}");
    assert!(json.contains("\"severity\": \"deny\""), "{json}");
    assert!(json.contains("tests/fixtures/d2_fire.rs"), "{json}");
}

#[test]
fn cli_exit_codes_split_warn_from_deny() {
    let root = env!("CARGO_MANIFEST_DIR");
    // An unused suppression is warn-level: exit 0 by default...
    let warn_only = bin()
        .args(["--root", root, "tests/fixtures/sup_unused.rs"])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(warn_only.status.code(), Some(0));
    // ...and exit 1 under --deny-warnings.
    let denied = bin()
        .args([
            "--root",
            root,
            "--deny-warnings",
            "tests/fixtures/sup_unused.rs",
        ])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(denied.status.code(), Some(1));
}

#[test]
fn cli_exits_nonzero_on_graduated_s2() {
    let root = env!("CARGO_MANIFEST_DIR");
    // S2 findings are deny-level since graduation: exit 1 without
    // needing --deny-warnings.
    let denied = bin()
        .args(["--root", root, "tests/fixtures/s2_fire.rs"])
        .output()
        .expect("run riskpipe-lint");
    assert_eq!(denied.status.code(), Some(1));
}

#[test]
fn cli_explain_covers_every_rule() {
    for rule in RuleId::ALL {
        let out = bin()
            .args(["--explain", rule.code()])
            .output()
            .expect("run riskpipe-lint");
        assert_eq!(out.status.code(), Some(0), "--explain {}", rule.code());
        let text = String::from_utf8(out.stdout).expect("utf8");
        assert!(
            text.contains(rule.code()),
            "--explain {} output: {text}",
            rule.code()
        );
    }
}
