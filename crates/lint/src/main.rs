//! The `riskpipe-lint` command-line front-end.
//!
//! ```text
//! riskpipe-lint                      # lint the whole workspace
//! riskpipe-lint crates/warehouse     # lint one subtree
//! riskpipe-lint --json               # machine-readable output (v3)
//! riskpipe-lint --explain L1         # why a rule exists and how to fix
//! riskpipe-lint --rules              # list the catalogue
//! riskpipe-lint --deny-warnings      # warn findings also fail
//! riskpipe-lint --deny-warnings --baseline lint-baseline.json
//!                                    # warns fail only beyond the ratchet
//! riskpipe-lint --write-baseline lint-baseline.json
//!                                    # snapshot current warn counts
//! ```
//!
//! Exit codes: 0 clean, 1 findings at failing severity, 2 usage or I/O
//! error.

use riskpipe_lint::{find_workspace_root, lint_paths, Baseline, Config, RuleId, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
riskpipe-lint — workspace determinism & safety static-analysis pass

USAGE:
    riskpipe-lint [OPTIONS] [PATHS...]

ARGS:
    [PATHS...]        files or directories to lint, relative to the
                      workspace root (default: crates src examples tests)

OPTIONS:
    --root <DIR>      workspace root (default: nearest ancestor with a
                      [workspace] Cargo.toml)
    --json            emit the machine-readable JSON report (schema v3:
                      C1/L2/L3 findings carry a call-chain `trace`,
                      L1 findings carry the cycle's `chains`)
    --deny-warnings   exit nonzero on warn-level findings too
    --baseline <F>    tolerate warn findings up to the per-(rule, path)
                      counts recorded in F; only growth fails (deny
                      findings are never baselined)
    --write-baseline <F>  snapshot current warn counts to F and exit 0
    --jobs <N>        pass-1 scan threads (default: one per core)
    --summary-cache <DIR>  incremental pass-1 cache: re-lex only files
                      whose contents (or the lint config) changed
    --emit-lock-graph <DIR>  write the workspace lock-order graph as
                      lock-order.dot + lock-order.manifest (the runtime
                      lockwitness asserts against the manifest)
    --explain <RULE>  print the rationale and fix guidance for one rule
    --rules           list the rule catalogue
    -h, --help        this text
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut json = false;
    let mut deny_warnings = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut jobs: usize = 0;
    let mut summary_cache: Option<PathBuf> = None;
    let mut emit_lock_graph: Option<PathBuf> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--rules" => {
                for r in RuleId::ALL {
                    println!(
                        "{:4} [{}]  {}",
                        r.code(),
                        r.severity().as_str(),
                        r.summary()
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(code) = args.next() else {
                    eprintln!(
                        "--explain needs a rule code (one of D1 D2 D3 D4 S1 S2 C1 C2 L1 L2 L3 W1 SUP)"
                    );
                    return ExitCode::from(2);
                };
                match RuleId::from_code(&code) {
                    Some(rule) => {
                        println!("{}", rule.explain());
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "unknown rule `{code}` — known: D1 D2 D3 D4 S1 S2 C1 C2 L1 L2 L3 W1 SUP"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--baseline" => {
                let Some(f) = args.next() else {
                    eprintln!("--baseline needs a file");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(f));
            }
            "--write-baseline" => {
                let Some(f) = args.next() else {
                    eprintln!("--write-baseline needs a file");
                    return ExitCode::from(2);
                };
                write_baseline = Some(PathBuf::from(f));
            }
            "--jobs" => {
                let parsed = args.next().and_then(|n| n.parse::<usize>().ok());
                let Some(n) = parsed else {
                    eprintln!("--jobs needs a thread count");
                    return ExitCode::from(2);
                };
                jobs = n;
            }
            "--summary-cache" => {
                let Some(dir) = args.next() else {
                    eprintln!("--summary-cache needs a directory");
                    return ExitCode::from(2);
                };
                summary_cache = Some(PathBuf::from(dir));
            }
            "--emit-lock-graph" => {
                let Some(dir) = args.next() else {
                    eprintln!("--emit-lock-graph needs a directory");
                    return ExitCode::from(2);
                };
                emit_lock_graph = Some(PathBuf::from(dir));
            }
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("could not find a workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };

    if paths.is_empty() {
        paths = riskpipe_lint::WORKSPACE_SCAN_ROOTS
            .iter()
            .map(PathBuf::from)
            .collect();
    }

    let baseline = match &baseline_path {
        None => None,
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("riskpipe-lint: cannot read baseline {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            };
            match Baseline::parse_json(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("riskpipe-lint: bad baseline {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let cfg = Config {
        jobs,
        summary_cache,
        ..Config::default()
    };
    let report = match lint_paths(&root, &paths, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("riskpipe-lint: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(dir) = &emit_lock_graph {
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            std::fs::write(dir.join("lock-order.dot"), report.lock_graph.render_dot())?;
            std::fs::write(
                dir.join("lock-order.manifest"),
                report.lock_graph.render_manifest(),
            )
        };
        if let Err(e) = write() {
            eprintln!(
                "riskpipe-lint: cannot write lock graph to {}: {e}",
                dir.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "riskpipe-lint: lock graph ({} lock(s), {} edge(s)) written to {}",
            report.lock_graph.locks.len(),
            report.lock_graph.edges.len(),
            dir.display()
        );
    }

    if let Some(out) = write_baseline {
        let snapshot = Baseline::from_report(&report);
        if let Err(e) = std::fs::write(&out, snapshot.render_json()) {
            eprintln!(
                "riskpipe-lint: cannot write baseline {}: {e}",
                out.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "riskpipe-lint: wrote baseline ({} entries) to {}",
            snapshot.counts.len(),
            out.display()
        );
        return ExitCode::SUCCESS;
    }

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    let any_deny = report.findings.iter().any(|f| f.severity == Severity::Deny);
    let warns_fail = if !deny_warnings {
        false
    } else if let Some(b) = &baseline {
        let regressions = b.regressions(&report);
        for r in &regressions {
            eprintln!(
                "riskpipe-lint: {}:{} warn count {} exceeds baseline {}",
                r.rule, r.path, r.have, r.allowed
            );
        }
        !regressions.is_empty()
    } else {
        report.findings.iter().any(|f| f.severity == Severity::Warn)
    };
    if any_deny || warns_fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
