//! The `riskpipe-lint` command-line front-end.
//!
//! ```text
//! riskpipe-lint                      # lint the whole workspace
//! riskpipe-lint crates/warehouse     # lint one subtree
//! riskpipe-lint --json               # machine-readable output
//! riskpipe-lint --explain D1         # why a rule exists and how to fix
//! riskpipe-lint --rules              # list the catalogue
//! riskpipe-lint --deny-warnings      # warn findings also fail
//! ```
//!
//! Exit codes: 0 clean, 1 findings at failing severity, 2 usage or I/O
//! error.

use riskpipe_lint::{find_workspace_root, lint_paths, Config, RuleId, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
riskpipe-lint — workspace determinism & safety static-analysis pass

USAGE:
    riskpipe-lint [OPTIONS] [PATHS...]

ARGS:
    [PATHS...]        files or directories to lint, relative to the
                      workspace root (default: crates src examples tests)

OPTIONS:
    --root <DIR>      workspace root (default: nearest ancestor with a
                      [workspace] Cargo.toml)
    --json            emit the machine-readable JSON report
    --deny-warnings   exit nonzero on warn-level findings too
    --explain <RULE>  print the rationale and fix guidance for one rule
    --rules           list the rule catalogue
    -h, --help        this text
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut json = false;
    let mut deny_warnings = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--rules" => {
                for r in RuleId::ALL {
                    println!(
                        "{:4} [{}]  {}",
                        r.code(),
                        r.severity().as_str(),
                        r.summary()
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(code) = args.next() else {
                    eprintln!("--explain needs a rule code (one of D1 D2 D3 D4 S1 S2 SUP)");
                    return ExitCode::from(2);
                };
                match RuleId::from_code(&code) {
                    Some(rule) => {
                        println!("{}", rule.explain());
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!("unknown rule `{code}` — known: D1 D2 D3 D4 S1 S2 SUP");
                        return ExitCode::from(2);
                    }
                }
            }
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("could not find a workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };

    if paths.is_empty() {
        paths = riskpipe_lint::WORKSPACE_SCAN_ROOTS
            .iter()
            .map(PathBuf::from)
            .collect();
    }

    let cfg = Config::default();
    let report = match lint_paths(&root, &paths, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("riskpipe-lint: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    let failing = report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Deny || (deny_warnings && f.severity == Severity::Warn));
    if failing {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
