//! The determinism & safety rule implementations.
//!
//! Every rule is a pattern over the [`FileModel`] token stream. Rules
//! are heuristic by construction (see the module docs on
//! [`crate::analysis`]); each one is tuned so that a *true* finding is
//! a genuine threat to bit-identical artifacts, and a false positive
//! is cheap to silence with an auditable per-site suppression.
//!
//! | Rule | Fires on |
//! |------|----------|
//! | D1   | iteration over `HashMap`/`HashSet` in fold/merge/sink/rollup code without a sorted drain |
//! | D2   | `sort_by`/`max_by`/`min_by` comparators built on `partial_cmp` |
//! | D3   | `Instant::now`/`SystemTime::now` outside designated timing modules |
//! | D4   | entropy-seeded RNG construction (`thread_rng`, `from_entropy`, `OsRng`, …) |
//! | S1   | `unsafe` without an adjacent `// SAFETY:` audit comment |
//! | S2   | narrowing `as` casts inside codec/decode code |

use crate::analysis::{is_test_path, FileModel, HashKind};
use crate::lexer::TokKind;
use crate::{Config, RuleId, TraceFrame};

/// A finding before suppression processing.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: RuleId,
    pub line: u32,
    pub message: String,
    /// Call-chain trace (C1/L2/L3 findings only; empty otherwise).
    pub trace: Vec<TraceFrame>,
    /// Root→site chains closing a lock-order cycle, one per cycle
    /// edge (L1 findings only; empty otherwise).
    pub chains: Vec<Vec<TraceFrame>>,
}

/// Function/closure/file-name markers that put code in D1's
/// merge-sensitive scope.
const D1_SCOPE_MARKERS: &[&str] = &[
    "fold",
    "merge",
    "sink",
    "rollup",
    "reduce",
    "finish",
    "aggregate",
    "accumulate",
    "ingest",
    "absorb",
    "flush",
    "drain",
    "scan",
    "emit",
];

/// Idents that mark a statement/loop body as merge-like even when the
/// enclosing names don't (content-based scoping).
const D1_MERGE_CALLS: &[&str] = &["merge", "absorb", "fold", "reduce"];

/// Iterator-producing methods on hash containers.
const D1_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "drain",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
];

/// Comparator-taking methods D2 inspects.
const D2_METHODS: &[&str] = &["sort_by", "sort_unstable_by", "max_by", "min_by"];

/// Entropy-sourced RNG constructors D4 bans.
const D4_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Cast targets S2 treats as narrowing.
const S2_NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// File/function-name markers that put code in S2's codec/decode scope.
const S2_SCOPE_MARKERS: &[&str] = &[
    "codec",
    "encode",
    "decode",
    "compress",
    "serial",
    "frame",
    "pack",
    "from_bytes",
    "to_bytes",
];

/// How many lines above an `unsafe` token S1 searches for `SAFETY:`.
const S1_WINDOW: u32 = 6;

/// File/function-name markers that put code in C2's persistence scope.
const C2_SCOPE_MARKERS: &[&str] = &[
    "persist",
    "store",
    "durable",
    "manifest",
    "shard",
    "snapshot",
    "checkpoint",
    "save",
    "spill",
];

/// Run every rule over one analysed file. (C1 is the cross-file
/// reachability rule and lives in [`crate::graph`].)
pub fn run_all(model: &FileModel, cfg: &Config) -> Vec<RawFinding> {
    let mut out = Vec::new();
    d1_hash_iteration(model, &mut out);
    d2_partial_cmp(model, &mut out);
    d3_wall_clock(model, cfg, &mut out);
    d4_entropy_rng(model, &mut out);
    s1_unsafe_audit(model, &mut out);
    s2_narrowing_casts(model, &mut out);
    c2_raw_persistence_writes(model, cfg, &mut out);
    w1_panic_paths(model, cfg, &mut out);
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

fn name_matches(name: &str, markers: &[&str]) -> bool {
    markers.iter().any(|m| name.contains(m))
}

/// Does any enclosing scope name or the file stem match `markers`?
fn scoped_by_name(model: &FileModel, line: u32, markers: &[&str]) -> bool {
    name_matches(&model.stem(), markers)
        || model
            .scopes_at(line)
            .iter()
            .any(|s| name_matches(s, markers))
}

/// Code index of the end of the statement containing `ci` (the `;` at
/// bracket depth 0, or the end of file).
fn statement_end(model: &FileModel, ci: usize) -> usize {
    let mut depth = 0i32;
    for j in ci..model.code.len() {
        let t = model.ct(j).expect("in range");
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                if depth == 0 {
                    return j; // end of the enclosing argument list
                }
                depth -= 1;
            }
            // A depth-0 brace means a block starts or the enclosing one
            // ends — either way the simple statement stops here.
            "{" | "}" if depth == 0 => return j,
            ";" if depth == 0 => return j,
            _ => {}
        }
    }
    model.code.len().saturating_sub(1)
}

/// Code index of the start of the statement containing `ci` (just
/// after the previous depth-0 `;`, `{` or `}`).
fn statement_start(model: &FileModel, ci: usize) -> usize {
    let mut depth = 0i32;
    for j in (0..ci).rev() {
        let t = model.ct(j).expect("in range");
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    return j + 1;
                }
                depth -= 1;
            }
            // A depth-0 brace walking backwards is the end of a
            // preceding block (or the start of the enclosing one) —
            // the current simple statement begins after it.
            "{" | "}" if depth == 0 => return j + 1,
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
    }
    0
}

/// Does the code range `[from, to)` contain any of `idents`?
fn range_has_ident(model: &FileModel, from: usize, to: usize, idents: &[&str]) -> bool {
    (from..to.min(model.code.len())).any(|j| {
        model
            .ct(j)
            .is_some_and(|t| t.kind == TokKind::Ident && idents.contains(&t.text.as_str()))
    })
}

/// **D1** — iteration over `HashMap`/`HashSet` in merge-sensitive code.
///
/// Fires on `for .. in <hash>` and on `<hash>.iter()/drain()/keys()/…`
/// chains when (a) an enclosing fn/closure/file name looks like
/// fold/merge/sink/rollup code, or (b) the loop body / statement calls
/// `merge`/`fold`/`absorb`/`reduce`. Two escapes encode the sanctioned
/// patterns: collecting into a `BTreeMap`/`BTreeSet`, and the explicit
/// sorted drain `let v = map.into_iter()...collect(); v.sort..()`.
fn d1_hash_iteration(model: &FileModel, out: &mut Vec<RawFinding>) {
    let n = model.code.len();
    for ci in 0..n {
        let t = model.ct(ci).expect("in range");
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "for" {
            if let Some(f) = d1_check_for_loop(model, ci) {
                out.push(f);
            }
        } else if model.hash_idents.get(&t.text) == Some(&HashKind::Hash) {
            if let Some(f) = d1_check_method_chain(model, ci) {
                out.push(f);
            }
        }
    }
}

fn d1_check_for_loop(model: &FileModel, for_ci: usize) -> Option<RawFinding> {
    // Locate `in` at depth 0, then the loop-body `{` at depth 0.
    let mut depth = 0i32;
    let mut in_ci = None;
    for j in for_ci + 1..(for_ci + 64).min(model.code.len()) {
        let t = model.ct(j)?;
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => depth -= 1,
            (TokKind::Ident, "in") if depth == 0 => {
                in_ci = Some(j);
                break;
            }
            _ => {}
        }
    }
    let in_ci = in_ci?;
    let mut body_open = None;
    depth = 0;
    for j in in_ci + 1..(in_ci + 96).min(model.code.len()) {
        let t = model.ct(j)?;
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => depth -= 1,
            (TokKind::Punct, "{") if depth == 0 => {
                body_open = Some(j);
                break;
            }
            _ => {}
        }
    }
    let body_open = body_open?;
    // The iterated expression: `[&] [mut] [self .] IDENT`, nothing else.
    let mut j = in_ci + 1;
    while model
        .ct(j)
        .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
    {
        j += 1;
    }
    if model.ct(j).is_some_and(|t| t.is_ident("self"))
        && model.ct(j + 1).is_some_and(|t| t.is_punct("."))
    {
        j += 2;
    }
    let name_tok = model.ct(j)?;
    if j + 1 != body_open
        || name_tok.kind != TokKind::Ident
        || model.hash_idents.get(&name_tok.text) != Some(&HashKind::Hash)
    {
        return None;
    }
    let line = name_tok.line;
    if model.in_test_code(line) {
        return None;
    }
    // Scope: enclosing names, or a merge-like call in the loop body.
    let body_end = matching_close(model, body_open);
    let in_scope = scoped_by_name(model, line, D1_SCOPE_MARKERS)
        || range_has_ident(model, body_open, body_end, D1_MERGE_CALLS);
    if !in_scope {
        return None;
    }
    Some(RawFinding {
        rule: RuleId::D1,
        line,
        message: format!(
            "iteration over hash container `{}` in merge-sensitive code: \
             visit order is nondeterministic and can leak into folded \
             output — use a BTreeMap/BTreeSet or an explicit sorted drain",
            name_tok.text
        ),
        trace: Vec::new(),
        chains: Vec::new(),
    })
}

/// Code index just past the `}` matching the `{` at `open_ci`.
fn matching_close(model: &FileModel, open_ci: usize) -> usize {
    let mut depth = 0i32;
    for j in open_ci..model.code.len() {
        let t = model.ct(j).expect("in range");
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    model.code.len()
}

fn d1_check_method_chain(model: &FileModel, name_ci: usize) -> Option<RawFinding> {
    let name_tok = model.ct(name_ci)?;
    if !model.ct(name_ci + 1).is_some_and(|t| t.is_punct(".")) {
        return None;
    }
    let method = model.ct(name_ci + 2)?;
    if method.kind != TokKind::Ident || !D1_ITER_METHODS.contains(&method.text.as_str()) {
        return None;
    }
    if !model.ct(name_ci + 3).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let line = name_tok.line;
    if model.in_test_code(line) {
        return None;
    }
    let stmt_start = statement_start(model, name_ci);
    let stmt_end = statement_end(model, name_ci);
    // Scope: enclosing names, or a merge-like call in the statement.
    let in_scope = scoped_by_name(model, line, D1_SCOPE_MARKERS)
        || range_has_ident(model, stmt_start, stmt_end, D1_MERGE_CALLS);
    if !in_scope {
        return None;
    }
    // Escape 1: the chain collects into an ordered container.
    if collects_into_btree(model, name_ci, stmt_end) {
        return None;
    }
    // Escape 2: explicit sorted drain —
    // `let [mut] OUT [: T] = <hash>...collect();` then `OUT.sort..`.
    if sorted_drain(model, stmt_start, stmt_end) {
        return None;
    }
    Some(RawFinding {
        rule: RuleId::D1,
        line,
        message: format!(
            "`{}.{}()` iterates a hash container in merge-sensitive code: \
             order is nondeterministic — use a BTreeMap/BTreeSet, collect \
             into a BTree, or sort the drained entries before use",
            name_tok.text, method.text
        ),
        trace: Vec::new(),
        chains: Vec::new(),
    })
}

fn collects_into_btree(model: &FileModel, from: usize, to: usize) -> bool {
    for j in from..to.min(model.code.len()) {
        let t = model.ct(j).expect("in range");
        if t.is_ident("collect")
            && model.ct(j + 1).is_some_and(|t| t.is_punct("::"))
            && model.ct(j + 2).is_some_and(|t| t.is_punct("<"))
            && model
                .ct(j + 3)
                .is_some_and(|t| t.is_ident("BTreeMap") || t.is_ident("BTreeSet"))
        {
            return true;
        }
    }
    false
}

fn sorted_drain(model: &FileModel, stmt_start: usize, stmt_end: usize) -> bool {
    // Statement shape: `let [mut] OUT ... collect ( ) ;`
    if !model.ct(stmt_start).is_some_and(|t| t.is_ident("let")) {
        return false;
    }
    let mut j = stmt_start + 1;
    if model.ct(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let out_name = match model.ct(j) {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => return false,
    };
    if !range_has_ident(model, j, stmt_end, &["collect"]) {
        return false;
    }
    // Next statement must begin `OUT.sort…`.
    model
        .ct(stmt_end + 1)
        .is_some_and(|t| t.is_ident(&out_name))
        && model.ct(stmt_end + 2).is_some_and(|t| t.is_punct("."))
        && model
            .ct(stmt_end + 3)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text.starts_with("sort"))
}

/// **D2** — `partial_cmp`-based comparators in sorts and extrema.
fn d2_partial_cmp(model: &FileModel, out: &mut Vec<RawFinding>) {
    for ci in 0..model.code.len() {
        let t = model.ct(ci).expect("in range");
        if t.kind != TokKind::Ident || !D2_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if !model.ct(ci + 1).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        if model.in_test_code(t.line) {
            continue;
        }
        // Scan the balanced argument list for `partial_cmp`.
        let mut depth = 0i32;
        for j in ci + 1..model.code.len() {
            let u = model.ct(j).expect("in range");
            match (u.kind, u.text.as_str()) {
                (TokKind::Punct, "(") => depth += 1,
                (TokKind::Punct, ")") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (TokKind::Ident, "partial_cmp") => {
                    out.push(RawFinding {
                        rule: RuleId::D2,
                        line: t.line,
                        message: format!(
                            "`{}` comparator built on `partial_cmp`: NaN makes \
                             the comparator non-total, and unwrap/ordering \
                             fallbacks diverge across inputs — use \
                             `f64::total_cmp` (or `Ord` keys)",
                            t.text
                        ),
                        trace: Vec::new(),
                        chains: Vec::new(),
                    });
                    break;
                }
                _ => {}
            }
        }
    }
}

/// **D3** — wall-clock reads outside designated timing modules.
fn d3_wall_clock(model: &FileModel, cfg: &Config, out: &mut Vec<RawFinding>) {
    if cfg
        .timing_modules
        .iter()
        .any(|m| model.path.contains(m.as_str()))
    {
        return;
    }
    for ci in 0..model.code.len() {
        let t = model.ct(ci).expect("in range");
        if t.kind != TokKind::Ident || (t.text != "Instant" && t.text != "SystemTime") {
            continue;
        }
        if !(model.ct(ci + 1).is_some_and(|u| u.is_punct("::"))
            && model.ct(ci + 2).is_some_and(|u| u.is_ident("now")))
        {
            continue;
        }
        if model.in_test_code(t.line) {
            continue;
        }
        out.push(RawFinding {
            rule: RuleId::D3,
            line: t.line,
            message: format!(
                "`{}::now()` outside a designated timing module: wall-clock \
                 readings must flow only into stats/counter structs, never \
                 into numeric results — move the timing into a designated \
                 module or suppress with a reason documenting where the \
                 reading flows",
                t.text
            ),
            trace: Vec::new(),
            chains: Vec::new(),
        });
    }
}

/// **D4** — entropy-seeded RNG construction.
fn d4_entropy_rng(model: &FileModel, out: &mut Vec<RawFinding>) {
    for ci in 0..model.code.len() {
        let t = model.ct(ci).expect("in range");
        if t.kind != TokKind::Ident || !D4_IDENTS.contains(&t.text.as_str()) {
            continue;
        }
        if model.in_test_code(t.line) {
            continue;
        }
        out.push(RawFinding {
            rule: RuleId::D4,
            line: t.line,
            message: format!(
                "`{}` constructs an entropy-seeded RNG: every random stream \
                 must derive from an explicit caller-provided seed so runs \
                 are replayable bit-for-bit",
                t.text
            ),
            trace: Vec::new(),
            chains: Vec::new(),
        });
    }
}

/// **S1** — `unsafe` without an adjacent `// SAFETY:` audit.
fn s1_unsafe_audit(model: &FileModel, out: &mut Vec<RawFinding>) {
    for (i, t) in model.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let lo = t.line.saturating_sub(S1_WINDOW);
        let audited = model.toks.iter().any(|c| {
            c.kind == TokKind::Comment
                && c.line >= lo
                && c.line <= t.line
                && c.text.contains("SAFETY")
        });
        if audited {
            continue;
        }
        // Describe what kind of unsafe construct this is.
        let next = model.toks[i + 1..]
            .iter()
            .find(|u| u.kind != TokKind::Comment);
        let what = match next {
            Some(u) if u.is_ident("impl") => "unsafe impl",
            Some(u) if u.is_ident("fn") => "unsafe fn",
            _ => "unsafe block",
        };
        out.push(RawFinding {
            rule: RuleId::S1,
            line: t.line,
            message: format!(
                "{what} without a `// SAFETY:` comment in the preceding \
                 {S1_WINDOW} lines: every unsafe site must carry a written \
                 audit of the invariants that make it sound"
            ),
            trace: Vec::new(),
            chains: Vec::new(),
        });
    }
}

/// **S2** — narrowing `as` casts in codec/decode code.
fn s2_narrowing_casts(model: &FileModel, out: &mut Vec<RawFinding>) {
    for ci in 0..model.code.len() {
        let t = model.ct(ci).expect("in range");
        if t.kind != TokKind::Ident || t.text != "as" {
            continue;
        }
        let Some(target) = model.ct(ci + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !S2_NARROW_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        if model.in_test_code(t.line) || !scoped_by_name(model, t.line, S2_SCOPE_MARKERS) {
            continue;
        }
        out.push(RawFinding {
            rule: RuleId::S2,
            line: t.line,
            message: format!(
                "narrowing `as {}` cast in codec/decode code: a silent \
                 truncation here corrupts decoded artifacts — use \
                 `try_from`/checked conversion, or annotate why the value \
                 provably fits",
                target.text
            ),
            trace: Vec::new(),
            chains: Vec::new(),
        });
    }
}

/// **C2** — raw filesystem writes in persistence paths outside the
/// sanctioned durable module.
///
/// Every durable artifact must land via `riskpipe_tables::durable`
/// (tmp file + `sync_all` + rename + parent fsync) or the sharded
/// inflight-then-rename protocol built on it. A bare `fs::write`,
/// `File::create`, or truncating `OpenOptions` in persistence code is
/// a torn-write waiting for a crash. Scope: non-test code whose file
/// stem or enclosing fn name marks it as persistence
/// (persist/store/shard/manifest/…), excluding the durable module
/// itself.
fn c2_raw_persistence_writes(model: &FileModel, cfg: &Config, out: &mut Vec<RawFinding>) {
    if cfg
        .durable_modules
        .iter()
        .any(|m| model.path.contains(m.as_str()))
        || is_test_path(&model.path)
    {
        return;
    }
    for ci in 0..model.code.len() {
        let t = model.ct(ci).expect("in range");
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_path = |who: &str| {
            ci >= 2
                && model.ct(ci - 1).is_some_and(|u| u.is_punct("::"))
                && model.ct(ci - 2).is_some_and(|u| u.is_ident(who))
        };
        let what = match t.text.as_str() {
            "write" if prev_path("fs") => "`fs::write`",
            "create" if prev_path("File") => "`File::create`",
            "truncate"
                if ci >= 1
                    && model.ct(ci - 1).is_some_and(|u| u.is_punct("."))
                    && model.ct(ci + 1).is_some_and(|u| u.is_punct("("))
                    && model.ct(ci + 2).is_some_and(|u| u.is_ident("true")) =>
            {
                "truncating `OpenOptions`"
            }
            _ => continue,
        };
        if model.in_test_code(t.line) || !scoped_by_name(model, t.line, C2_SCOPE_MARKERS) {
            continue;
        }
        out.push(RawFinding {
            rule: RuleId::C2,
            line: t.line,
            message: format!(
                "{what} in a persistence path outside `riskpipe_tables::durable`: \
                 a crash mid-write leaves a torn artifact that the manifest may \
                 still reference — route the bytes through `durable::write_atomic` \
                 (or the inflight-then-rename shard protocol), or suppress with a \
                 written crash-consistency proof"
            ),
            trace: Vec::new(),
            chains: Vec::new(),
        });
    }
}

/// **W1** — `unwrap`/`expect`/`panic!` in non-test library code of the
/// serving-path crates (warn; ratcheted by the CI baseline).
fn w1_panic_paths(model: &FileModel, cfg: &Config, out: &mut Vec<RawFinding>) {
    if !cfg
        .serving_crates
        .iter()
        .any(|p| model.path.starts_with(p.as_str()))
        || is_test_path(&model.path)
    {
        return;
    }
    for ci in 0..model.code.len() {
        let t = model.ct(ci).expect("in range");
        if t.kind != TokKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            m @ ("unwrap" | "expect")
                if ci >= 1
                    && model.ct(ci - 1).is_some_and(|u| u.is_punct("."))
                    && model.ct(ci + 1).is_some_and(|u| u.is_punct("(")) =>
            {
                format!("`.{m}(..)`")
            }
            "panic" if model.ct(ci + 1).is_some_and(|u| u.is_punct("!")) => "`panic!`".to_string(),
            _ => continue,
        };
        if model.in_test_code(t.line) {
            continue;
        }
        out.push(RawFinding {
            rule: RuleId::W1,
            line: t.line,
            message: format!(
                "{what} in non-test library code of a serving-path crate: a \
                 panic on the worker path aborts the whole pipeline (and poisons \
                 shared state) — surface a typed error, or document the invariant \
                 that makes the value infallible"
            ),
            trace: Vec::new(),
            chains: Vec::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FileModel;
    use crate::lexer::lex;

    fn findings_in(path: &str, src: &str) -> Vec<RawFinding> {
        let model = FileModel::build(path, lex(src));
        run_all(&model, &Config::default())
    }

    #[test]
    fn d1_sorted_drain_escape() {
        let src = "fn merge_parts(acc: HashMap<u64, f64>) {\n\
                   let mut v: Vec<(u64, f64)> = acc.into_iter().collect();\n\
                   v.sort_unstable_by_key(|e| e.0);\n}";
        assert!(findings_in("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn d1_btree_collect_escape() {
        let src = "fn merge_parts(acc: HashMap<u64, f64>) {\n\
                   let v = acc.into_iter().collect::<BTreeMap<u64, f64>>();\n\
                   use_it(v);\n}";
        assert!(findings_in("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn d1_out_of_scope_iteration_is_clean() {
        // No merge-ish scope name, no merge-like call in the body.
        let src = "fn count(acc: HashMap<u64, f64>) -> usize {\n\
                   acc.keys().count()\n}";
        assert!(findings_in("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn d1_content_scoping_via_merge_call() {
        let src = "fn build(part: HashMap<u64, f64>, out: &mut Cell) {\n\
                   for (k, v) in part {\n    out.merge(k, v);\n}\n}";
        let f = findings_in("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::D1);
    }

    #[test]
    fn d3_allowlisted_module_is_clean() {
        let src = "fn t() { let t0 = Instant::now(); }";
        assert!(findings_in("crates/bench/src/bin/x.rs", src).is_empty());
        assert_eq!(findings_in("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn rules_skip_inline_test_modules_except_s1() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn t() { let t0 = Instant::now(); let r = thread_rng(); }\n\
                   fn u() { unsafe { danger() } }\n}";
        let f = findings_in("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::S1);
    }

    #[test]
    fn s1_accepts_nearby_safety_comment() {
        let src = "fn f() {\n    // SAFETY: slot i is exclusively owned here.\n\
                   unsafe { write(i) }\n}";
        assert!(findings_in("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn c2_fires_only_in_persistence_scope() {
        let src = "fn persist_frame(dir: &Path, b: &[u8]) {\n\
                   fs::write(dir.join(\"f.bin\"), b);\n}";
        let f = findings_in("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::C2);
        let src2 = "fn dump_debug(dir: &Path, b: &[u8]) {\n\
                    fs::write(dir.join(\"f.bin\"), b);\n}";
        assert!(findings_in("crates/x/src/a.rs", src2).is_empty());
    }

    #[test]
    fn c2_exempts_the_durable_module_itself() {
        let src = "fn persist_bytes(tmp: &Path) {\n    let f = File::create(tmp);\n}";
        assert!(findings_in("crates/tables/src/durable.rs", src).is_empty());
        assert_eq!(findings_in("crates/tables/src/shard.rs", src).len(), 1);
    }

    #[test]
    fn w1_scopes_to_serving_crate_library_code() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = findings_in("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::W1);
        assert!(findings_in("crates/bench/src/x.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n\
                        fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}";
        assert!(findings_in("crates/core/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn s2_only_in_codec_scope() {
        let src = "fn decode_frame(x: u64) -> u32 { x as u32 }";
        assert_eq!(findings_in("crates/x/src/a.rs", src).len(), 1);
        let src2 = "fn widen(x: u64) -> u32 { x as u32 }";
        assert!(findings_in("crates/x/src/a.rs", src2).is_empty());
    }
}
