//! Incremental pass-1 summary cache.
//!
//! One file per `(config, path, contents)` fingerprint holding the
//! complete pass-1 product — suppressions, per-file raw findings, and
//! the [`FileSummary`] the cross-file pass composes — so a warm run
//! re-lexes only files that changed. The key folds every
//! summary-affecting [`Config`] field, so editing the lint
//! configuration invalidates the whole cache rather than serving
//! stale models.
//!
//! The on-disk format is a line-based record stream (hand-rolled, no
//! deps) with a version header; *any* parse anomaly — truncation,
//! unknown tag, version skew — degrades to a cache miss, never an
//! error. Entries land via the durable idiom used across the
//! workspace: full write to a `.tmp` sibling, fsync, atomic rename.

use crate::summary::{
    BlockKind, BlockSite, CallSite, FileSummary, FnNode, GuardSpan, LockAcquire, RootKind,
};
use crate::{Config, FileUnit, RawFinding, RuleId, Suppression, TraceFrame};
use riskpipe_types::Fingerprint;
use std::path::Path;

/// Bump when the record format or the summarizer's semantics change:
/// old entries then miss instead of deserializing into wrong shapes.
const CACHE_VERSION: &str = "riskpipe-lintsum v1";

/// The cache key for one file: format version, every config field the
/// summary or the per-file rules read, the path, and the contents.
pub(crate) fn entry_key(path: &str, source: &str, cfg: &Config) -> u64 {
    let mut fp = Fingerprint::new("lint.summary-cache");
    fp.push_bytes(CACHE_VERSION.as_bytes());
    for list in [
        &cfg.timing_modules,
        &cfg.serving_crates,
        &cfg.durable_modules,
        &cfg.root_fns,
        &cfg.lock_leaf_crates,
    ] {
        fp.push_usize(list.len());
        for item in list {
            fp.push_bytes(item.as_bytes());
        }
    }
    fp.push_bytes(path.as_bytes());
    fp.push_bytes(source.as_bytes());
    fp.finish()
}

fn entry_path(dir: &Path, key: u64) -> std::path::PathBuf {
    dir.join(format!("{key:016x}.lintsum"))
}

/// Escape a field so `|` and newlines survive the line format.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\p"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'p' => out.push('|'),
            'n' => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

fn kind_tag(k: BlockKind) -> &'static str {
    match k {
        BlockKind::Mutex => "mutex",
        BlockKind::RwLock => "rwlock",
        BlockKind::Wait => "wait",
        BlockKind::Recv => "recv",
        BlockKind::Join => "join",
        BlockKind::Park => "park",
        BlockKind::Scope => "scope",
        BlockKind::Spawn => "spawn",
    }
}

fn kind_from(tag: &str) -> Option<BlockKind> {
    Some(match tag {
        "mutex" => BlockKind::Mutex,
        "rwlock" => BlockKind::RwLock,
        "wait" => BlockKind::Wait,
        "recv" => BlockKind::Recv,
        "join" => BlockKind::Join,
        "park" => BlockKind::Park,
        "scope" => BlockKind::Scope,
        "spawn" => BlockKind::Spawn,
        _ => return None,
    })
}

fn root_tag(r: &Option<RootKind>) -> String {
    match r {
        None => "-".to_string(),
        Some(RootKind::SpawnClosure) => "spawn".to_string(),
        Some(RootKind::ParClosure(h)) => format!("par:{h}"),
        Some(RootKind::RootFn) => "rootfn".to_string(),
    }
}

fn root_from(tag: &str) -> Option<Option<RootKind>> {
    Some(match tag {
        "-" => None,
        "spawn" => Some(RootKind::SpawnClosure),
        "rootfn" => Some(RootKind::RootFn),
        t => Some(RootKind::ParClosure(t.strip_prefix("par:")?.to_string())),
    })
}

fn push_site(out: &mut String, tag: &str, s: &BlockSite) {
    out.push_str(&format!(
        "{tag}|{}|{}|{}\n",
        kind_tag(s.kind),
        s.line,
        esc(&s.what)
    ));
}

fn push_acq(out: &mut String, tag: &str, a: &LockAcquire) {
    out.push_str(&format!(
        "{tag}|{}|{}|{}\n",
        esc(&a.lock),
        a.line,
        esc(&a.what)
    ));
}

fn push_frame(out: &mut String, tag: &str, f: &TraceFrame) {
    out.push_str(&format!(
        "{tag}|{}|{}|{}\n",
        esc(&f.path),
        f.line,
        esc(&f.name)
    ));
}

/// Serialize a pass-1 unit to the record stream.
fn render(unit: &FileUnit) -> String {
    let mut out = String::new();
    out.push_str(CACHE_VERSION);
    out.push('\n');
    out.push_str(&format!("path|{}\n", esc(&unit.path)));
    for s in &unit.suppressions {
        out.push_str(&format!(
            "sup|{}|{}|{}|{}\n",
            s.line,
            s.has_reason as u8,
            s.covers
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
            s.rules.join(",")
        ));
    }
    for f in &unit.raw {
        out.push_str(&format!(
            "raw|{}|{}|{}\n",
            f.rule.code(),
            f.line,
            esc(&f.message)
        ));
        for frame in &f.trace {
            push_frame(&mut out, "rawt", frame);
        }
        for (ci, chain) in f.chains.iter().enumerate() {
            for frame in chain {
                out.push_str(&format!(
                    "rawc|{ci}|{}|{}|{}\n",
                    esc(&frame.path),
                    frame.line,
                    esc(&frame.name)
                ));
            }
        }
    }
    for (alias, orig) in &unit.summary.aliases {
        out.push_str(&format!("alias|{}|{}\n", esc(alias), esc(orig)));
    }
    for f in &unit.summary.fns {
        out.push_str(&format!(
            "fn|{}|{}|{}|{}|{}\n",
            esc(&f.name),
            esc(&f.display),
            f.line,
            f.is_test as u8,
            esc(&root_tag(&f.root))
        ));
        for c in &f.calls {
            out.push_str(&format!("call|{}|{}\n", esc(&c.name), c.line));
        }
        for b in &f.blocking {
            push_site(&mut out, "blk", b);
        }
        for a in &f.acquires {
            push_acq(&mut out, "acq", a);
        }
        for s in &f.spawns {
            push_site(&mut out, "spn", s);
        }
        for g in &f.guards {
            out.push_str(&format!(
                "guard|{}|{}|{}\n",
                esc(&g.lock),
                g.line,
                esc(&g.what)
            ));
            for a in &g.acquires {
                push_acq(&mut out, "gacq", a);
            }
            for c in &g.calls {
                out.push_str(&format!("gcall|{}|{}\n", esc(&c.name), c.line));
            }
            for s in &g.crossings {
                push_site(&mut out, "gcross", s);
            }
        }
    }
    out
}

/// Parse the record stream back into a unit. `None` = cache miss.
fn parse(text: &str) -> Option<FileUnit> {
    let mut lines = text.lines();
    if lines.next()? != CACHE_VERSION {
        return None;
    }
    let mut unit = FileUnit {
        path: String::new(),
        suppressions: Vec::new(),
        raw: Vec::new(),
        summary: FileSummary::default(),
    };
    let mut saw_path = false;
    let site = |fields: &[&str]| -> Option<BlockSite> {
        let [k, line, what] = fields else { return None };
        Some(BlockSite {
            line: line.parse().ok()?,
            kind: kind_from(k)?,
            what: unesc(what)?,
        })
    };
    let acq = |fields: &[&str]| -> Option<LockAcquire> {
        let [lock, line, what] = fields else {
            return None;
        };
        Some(LockAcquire {
            lock: unesc(lock)?,
            line: line.parse().ok()?,
            what: unesc(what)?,
        })
    };
    for line in lines {
        let (tag, rest) = line.split_once('|')?;
        let fields: Vec<&str> = rest.split('|').collect();
        match tag {
            "path" => {
                unit.path = unesc(rest)?;
                unit.summary.path = unit.path.clone();
                saw_path = true;
            }
            "sup" => {
                let [line, has_reason, covers, rules] = fields.as_slice() else {
                    return None;
                };
                unit.suppressions.push(Suppression {
                    rules: if rules.is_empty() {
                        Vec::new()
                    } else {
                        rules.split(',').map(str::to_string).collect()
                    },
                    line: line.parse().ok()?,
                    covers: if covers.is_empty() {
                        Vec::new()
                    } else {
                        covers
                            .split(',')
                            .map(str::parse)
                            .collect::<Result<_, _>>()
                            .ok()?
                    },
                    has_reason: *has_reason == "1",
                });
            }
            "raw" => {
                let [rule, line, message] = fields.as_slice() else {
                    return None;
                };
                unit.raw.push(RawFinding {
                    rule: RuleId::from_code(rule)?,
                    line: line.parse().ok()?,
                    message: unesc(message)?,
                    trace: Vec::new(),
                    chains: Vec::new(),
                });
            }
            "rawt" => {
                let [path, line, name] = fields.as_slice() else {
                    return None;
                };
                unit.raw.last_mut()?.trace.push(TraceFrame {
                    path: unesc(path)?,
                    line: line.parse().ok()?,
                    name: unesc(name)?,
                });
            }
            "rawc" => {
                let [ci, path, line, name] = fields.as_slice() else {
                    return None;
                };
                let ci: usize = ci.parse().ok()?;
                let chains = &mut unit.raw.last_mut()?.chains;
                if ci == chains.len() {
                    chains.push(Vec::new());
                }
                if ci + 1 != chains.len() {
                    return None;
                }
                chains.last_mut()?.push(TraceFrame {
                    path: unesc(path)?,
                    line: line.parse().ok()?,
                    name: unesc(name)?,
                });
            }
            "alias" => {
                let [alias, orig] = fields.as_slice() else {
                    return None;
                };
                unit.summary.aliases.insert(unesc(alias)?, unesc(orig)?);
            }
            "fn" => {
                let [name, display, line, is_test, root] = fields.as_slice() else {
                    return None;
                };
                unit.summary.fns.push(FnNode {
                    name: unesc(name)?,
                    display: unesc(display)?,
                    line: line.parse().ok()?,
                    is_test: *is_test == "1",
                    root: root_from(&unesc(root)?)?,
                    calls: Vec::new(),
                    blocking: Vec::new(),
                    acquires: Vec::new(),
                    guards: Vec::new(),
                    spawns: Vec::new(),
                });
            }
            "call" => {
                let [name, line] = fields.as_slice() else {
                    return None;
                };
                unit.summary.fns.last_mut()?.calls.push(CallSite {
                    name: unesc(name)?,
                    line: line.parse().ok()?,
                });
            }
            "blk" => {
                let s = site(&fields)?;
                unit.summary.fns.last_mut()?.blocking.push(s);
            }
            "acq" => {
                let a = acq(&fields)?;
                unit.summary.fns.last_mut()?.acquires.push(a);
            }
            "spn" => {
                let s = site(&fields)?;
                unit.summary.fns.last_mut()?.spawns.push(s);
            }
            "guard" => {
                let [lock, line, what] = fields.as_slice() else {
                    return None;
                };
                unit.summary.fns.last_mut()?.guards.push(GuardSpan {
                    lock: unesc(lock)?,
                    line: line.parse().ok()?,
                    what: unesc(what)?,
                    acquires: Vec::new(),
                    calls: Vec::new(),
                    crossings: Vec::new(),
                });
            }
            "gacq" => {
                let a = acq(&fields)?;
                unit.summary
                    .fns
                    .last_mut()?
                    .guards
                    .last_mut()?
                    .acquires
                    .push(a);
            }
            "gcall" => {
                let [name, line] = fields.as_slice() else {
                    return None;
                };
                unit.summary
                    .fns
                    .last_mut()?
                    .guards
                    .last_mut()?
                    .calls
                    .push(CallSite {
                        name: unesc(name)?,
                        line: line.parse().ok()?,
                    });
            }
            "gcross" => {
                let s = site(&fields)?;
                unit.summary
                    .fns
                    .last_mut()?
                    .guards
                    .last_mut()?
                    .crossings
                    .push(s);
            }
            _ => return None,
        }
    }
    saw_path.then_some(unit)
}

/// Load a cached unit. Any read or parse failure is a miss.
pub(crate) fn lookup(dir: &Path, key: u64) -> Option<FileUnit> {
    let text = std::fs::read_to_string(entry_path(dir, key)).ok()?;
    parse(&text)
}

/// Write a cache entry via the durable idiom: full `.tmp` write,
/// fsync, atomic rename — a crashed or raced run leaves either the old
/// entry or the new one, never a torn file.
pub(crate) fn write_entry(dir: &Path, key: u64, unit: &FileUnit) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let final_path = entry_path(dir, key);
    let tmp = final_path.with_extension("lintsum.tmp");
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(render(unit).as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &final_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FileModel;
    use crate::lexer::lex;

    fn unit_for(path: &str, src: &str, cfg: &Config) -> FileUnit {
        let model = FileModel::build(path, lex(src));
        let raw = crate::rules::run_all(&model, cfg);
        let summary = crate::summary::summarize(&model, cfg);
        FileUnit {
            path: model.path.clone(),
            suppressions: model.suppressions,
            raw,
            summary,
        }
    }

    const SRC: &str = "fn drive(pool: &ThreadPool, m: &Mutex<u32>) {\n\
                       // lint: allow(C2) — demo reason\n\
                       let g = m.lock();\n\
                       pool.scope(|s| { s.spawn(move || { work(); }); });\n\
                       }\n";

    #[test]
    fn round_trips_through_the_record_format() {
        let cfg = Config::default();
        let unit = unit_for("crates/x/src/a|b.rs", SRC, &cfg);
        let parsed = parse(&render(&unit)).expect("round trip");
        assert_eq!(parsed.path, unit.path);
        assert_eq!(parsed.suppressions.len(), unit.suppressions.len());
        assert_eq!(parsed.raw.len(), unit.raw.len());
        assert_eq!(parsed.summary.fns.len(), unit.summary.fns.len());
        for (a, b) in parsed.summary.fns.iter().zip(&unit.summary.fns) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.guards.len(), b.guards.len());
            assert_eq!(a.spawns.len(), b.spawns.len());
            assert_eq!(format!("{:?}", a.root), format!("{:?}", b.root));
        }
        // Re-render is byte-identical (the cache is deterministic).
        assert_eq!(render(&parsed), render(&unit));
    }

    #[test]
    fn version_skew_and_garbage_are_misses() {
        assert!(parse("riskpipe-lintsum v0\npath|x\n").is_none());
        assert!(parse("nonsense").is_none());
        assert!(parse("riskpipe-lintsum v1\nbogus|1|2\n").is_none());
    }

    #[test]
    fn key_tracks_contents_and_config() {
        let cfg = Config::default();
        let a = entry_key("crates/x/src/a.rs", "fn f() {}", &cfg);
        let b = entry_key("crates/x/src/a.rs", "fn g() {}", &cfg);
        let c = entry_key("crates/x/src/b.rs", "fn f() {}", &cfg);
        let mut cfg2 = Config::default();
        cfg2.root_fns.push("extra_root".to_string());
        let d = entry_key("crates/x/src/a.rs", "fn f() {}", &cfg2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn lookup_after_write_is_a_hit() {
        let dir = std::env::temp_dir().join(format!("lintsum-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = Config::default();
        let unit = unit_for("crates/x/src/a.rs", SRC, &cfg);
        let key = entry_key("crates/x/src/a.rs", SRC, &cfg);
        assert!(lookup(&dir, key).is_none());
        write_entry(&dir, key, &unit).expect("cache entry lands");
        let hit = lookup(&dir, key).expect("hit after write");
        assert_eq!(hit.summary.fns.len(), unit.summary.fns.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
