//! Pass 2 of the workspace analysis: link per-file summaries into a
//! call graph and run reachability from pool-task roots.
//!
//! Linking is by bare name (with per-file `use`-alias resolution) —
//! deliberately an *over*-approximation: a call named `merge` links to
//! every non-test fn named `merge` in the workspace. For a deny rule
//! that is the right bias — a false edge costs one audited per-site
//! suppression, a missed edge costs the no-blocking invariant. A small
//! stoplist of hyper-generic method names (`next`, `drop`, `clone`,
//! `get`, …) keeps the noise floor workable; those names are so common
//! that an edge through them carries no signal.
//!
//! Reachability is a multi-source BFS from every root node, recording
//! parent pointers so each finding can print the *shortest* call chain
//! root → … → blocking site. Findings are anchored at the blocking
//! site itself: one suppression there silences every chain through it,
//! which is exactly the audit granularity the rule wants (the site is
//! sound or it is not — how many paths reach it is irrelevant).

use crate::summary::FileSummary;
use crate::{RawFinding, RuleId, TraceFrame};
use std::collections::{BTreeMap, VecDeque};

/// Method/function names too generic to carry call-graph signal. An
/// edge is never created *into* a definition with one of these names
/// (`ReportStream::next` holds a `recv()`, `ThreadPool::drop` joins
/// its workers — both are coordinator-side by construction, and every
/// `.next()`/`drop()` call in the workspace would otherwise link to
/// them).
const STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "next",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "clear",
    "extend",
    "collect",
    "map",
    "filter",
    "fold",
    "for_each",
    "write",
    "read",
    "flush",
    "min",
    "max",
    "sum",
    "abs",
    "sqrt",
    "from",
    "into",
    "try_from",
    "try_into",
    "as_ref",
    "as_mut",
    "to_string",
    "to_owned",
    "to_vec",
    "index",
    "deref",
    "deref_mut",
    "borrow",
    "borrow_mut",
    "add",
    "sub",
    "mul",
    "div",
    "call",
    "load",
    "store",
    "swap",
    "take",
    "send",
    "expect",
    "unwrap",
    "ok",
    "err",
    "as_str",
    "as_slice",
    "as_bytes",
    "split",
    "join",
    "lock",
    "wait",
    "recv",
    "build",
    "run",
];

fn linkable(name: &str) -> bool {
    name.len() > 2 && !STOPLIST.contains(&name)
}

/// Run the C1 reachability check over all summaries. Returns raw
/// findings grouped by file path, ready for the per-file suppression
/// pass.
pub fn check(summaries: &[FileSummary]) -> BTreeMap<String, Vec<RawFinding>> {
    // Flatten to node ids.
    let mut nodes: Vec<(usize, usize)> = Vec::new();
    for (fi, s) in summaries.iter().enumerate() {
        for gi in 0..s.fns.len() {
            nodes.push((fi, gi));
        }
    }
    let fun = |id: usize| {
        let (fi, gi) = nodes[id];
        &summaries[fi].fns[gi]
    };

    // Name → definition nodes (non-test, linkable names only).
    let mut index: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, &(fi, gi)) in nodes.iter().enumerate() {
        let f = &summaries[fi].fns[gi];
        if !f.is_test && linkable(&f.name) {
            index.entry(f.name.as_str()).or_default().push(id);
        }
    }

    // Multi-source BFS from the roots; parent pointers give shortest
    // chains. Node order is deterministic (files arrive sorted, fns in
    // token order), so chains are stable across runs.
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut visited = vec![false; nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (id, seen) in visited.iter_mut().enumerate() {
        if fun(id).root.is_some() {
            *seen = true;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        let (fi, _) = nodes[id];
        for call in &fun(id).calls {
            let resolved = summaries[fi]
                .aliases
                .get(&call.name)
                .map(String::as_str)
                .unwrap_or(call.name.as_str());
            if !linkable(resolved) {
                continue;
            }
            let Some(targets) = index.get(resolved) else {
                continue;
            };
            for &t in targets {
                if !visited[t] {
                    visited[t] = true;
                    parent[t] = Some(id);
                    queue.push_back(t);
                }
            }
        }
    }

    // Every blocking site in a reached node is a finding.
    let mut out: BTreeMap<String, Vec<RawFinding>> = BTreeMap::new();
    for id in 0..nodes.len() {
        if !visited[id] {
            continue;
        }
        let (fi, _) = nodes[id];
        let node = fun(id);
        if node.blocking.is_empty() {
            continue;
        }
        // Chain root → … → this node.
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(p) = parent[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        let root = fun(chain[0]);
        let (rfi, _) = nodes[chain[0]];
        let root_at = format!(
            "{} at {}:{}",
            root.root
                .as_ref()
                .map(|r| r.describe())
                .unwrap_or_else(|| "root".to_string()),
            summaries[rfi].path,
            root.line
        );
        for site in &node.blocking {
            let mut trace: Vec<TraceFrame> = chain
                .iter()
                .map(|&cid| {
                    let (cfi, _) = nodes[cid];
                    let cf = fun(cid);
                    TraceFrame {
                        path: summaries[cfi].path.clone(),
                        line: cf.line,
                        name: cf.display.clone(),
                    }
                })
                .collect();
            trace.push(TraceFrame {
                path: summaries[fi].path.clone(),
                line: site.line,
                name: site.what.clone(),
            });
            out.entry(summaries[fi].path.clone())
                .or_default()
                .push(RawFinding {
                    rule: RuleId::C1,
                    line: site.line,
                    message: format!(
                        "blocking {} reachable from a pool-task root ({root_at}, \
                         {} hop(s)): pool workers must never park on work that \
                         other queued tasks produce — restructure, move the \
                         blocking to the coordinator thread, or suppress with a \
                         written proof the wait is bounded and deadlock-free",
                        site.what,
                        chain.len() - 1
                    ),
                    trace,
                });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FileModel;
    use crate::lexer::lex;
    use crate::summary::summarize;
    use crate::Config;

    fn graph_findings(files: &[(&str, &str)]) -> BTreeMap<String, Vec<RawFinding>> {
        let cfg = Config::default();
        let summaries: Vec<FileSummary> = files
            .iter()
            .map(|(p, s)| summarize(&FileModel::build(p, lex(s)), &cfg))
            .collect();
        check(&summaries)
    }

    #[test]
    fn cross_file_chain_is_reported_shortest_first() {
        let a = "fn drive(pool: &ThreadPool) {\n\
                 pool.scope(|s| {\n    s.spawn(move || { stage_kernel(7); });\n});\n}";
        let b = "pub fn stage_kernel(x: u64) -> u64 {\n    gate_barrier(x)\n}\n\
                 fn gate_barrier(x: u64) -> u64 {\n    let g = GATE.lock();\n    x\n}";
        let out = graph_findings(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        let findings = &out["crates/x/src/b.rs"];
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.rule, RuleId::C1);
        assert_eq!(f.line, 5);
        // Chain: spawn closure → stage_kernel → gate_barrier → lock.
        assert_eq!(f.trace.len(), 4);
        assert!(f.trace[0].name.contains("task closure"));
        assert!(f.trace[1].name.contains("stage_kernel"));
        assert!(f.trace[2].name.contains("gate_barrier"));
        assert!(f.trace[3].name.contains("lock"));
    }

    #[test]
    fn unreachable_blocking_is_clean() {
        let a = "fn coordinator(m: &Mutex<u32>) {\n    let g = m.lock();\n}";
        let out = graph_findings(&[("crates/x/src/a.rs", a)]);
        assert!(out.is_empty());
    }

    #[test]
    fn alias_resolved_calls_still_link() {
        let a = "use helpers::{stage_kernel as kern};\n\
                 fn drive(pool: &ThreadPool) {\n\
                 pool.scope(|s| {\n    s.spawn(move || { kern(7); });\n});\n}";
        let b = "pub fn stage_kernel(x: u64) -> u64 {\n    let g = GATE.lock();\n    x\n}";
        let out = graph_findings(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        assert_eq!(out["crates/x/src/b.rs"].len(), 1);
    }

    #[test]
    fn stoplisted_names_do_not_attract_edges() {
        // A def named `next` holding a recv must not be reached via a
        // generic `.next()` call in a task body.
        let a = "fn drive(pool: &ThreadPool) {\n\
                 pool.scope(|s| {\n    s.spawn(move || { it.next(); });\n});\n}";
        let b = "fn next(rx: &Receiver<u32>) -> Option<u32> {\n    rx.recv().ok()\n}";
        let out = graph_findings(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        assert!(out.is_empty());
    }
}
