//! Pass 2 of the workspace analysis: link per-file summaries into a
//! call graph, run reachability from pool-task roots (C1), and compose
//! per-fn guard spans into the workspace lock-order graph (L1/L2/L3).
//!
//! Linking is by bare name (with per-file `use`-alias resolution) —
//! deliberately an *over*-approximation: a call named `merge` links to
//! every non-test fn named `merge` in the workspace. For a deny rule
//! that is the right bias — a false edge costs one audited per-site
//! suppression, a missed edge costs the no-blocking invariant. A small
//! stoplist of hyper-generic method names (`next`, `drop`, `clone`,
//! `get`, …) keeps the noise floor workable; those names are so common
//! that an edge through them carries no signal.
//!
//! Reachability is a multi-source BFS from every root node, recording
//! parent pointers so each finding can print the *shortest* call chain
//! root → … → blocking site. Findings are anchored at the blocking
//! site itself: one suppression there silences every chain through it,
//! which is exactly the audit granularity the rule wants (the site is
//! sound or it is not — how many paths reach it is irrelevant).

use crate::summary::{BlockKind, FileSummary, FnNode, GuardSpan};
use crate::{Config, RawFinding, RuleId, TraceFrame};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method/function names too generic to carry call-graph signal. An
/// edge is never created *into* a definition with one of these names
/// (`ReportStream::next` holds a `recv()`, `ThreadPool::drop` joins
/// its workers — both are coordinator-side by construction, and every
/// `.next()`/`drop()` call in the workspace would otherwise link to
/// them).
const STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "next",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "clear",
    "extend",
    "collect",
    "map",
    "filter",
    "fold",
    "for_each",
    "write",
    "read",
    "flush",
    "min",
    "max",
    "sum",
    "abs",
    "sqrt",
    "from",
    "into",
    "try_from",
    "try_into",
    "as_ref",
    "as_mut",
    "to_string",
    "to_owned",
    "to_vec",
    "index",
    "deref",
    "deref_mut",
    "borrow",
    "borrow_mut",
    "add",
    "sub",
    "mul",
    "div",
    "call",
    "load",
    "store",
    "swap",
    "take",
    "send",
    "expect",
    "unwrap",
    "ok",
    "err",
    "as_str",
    "as_slice",
    "as_bytes",
    "split",
    "join",
    "lock",
    "wait",
    "wait_for",
    "notify_one",
    "notify_all",
    "recv",
    "build",
    "run",
    "enumerate",
    "finish",
];

fn linkable(name: &str) -> bool {
    name.len() > 2 && !STOPLIST.contains(&name)
}

/// The flattened, name-linked view of all summaries that both the C1
/// reachability pass and the L1/L2/L3 lock-flow pass walk: node ids,
/// the name→definition index, and alias-aware call resolution.
struct Linker<'a> {
    summaries: &'a [FileSummary],
    /// Node id → (file index, fn index).
    nodes: Vec<(usize, usize)>,
    /// Name → definition nodes (non-test, linkable names only).
    index: BTreeMap<&'a str, Vec<usize>>,
}

impl<'a> Linker<'a> {
    fn build(summaries: &'a [FileSummary]) -> Self {
        let mut nodes: Vec<(usize, usize)> = Vec::new();
        for (fi, s) in summaries.iter().enumerate() {
            for gi in 0..s.fns.len() {
                nodes.push((fi, gi));
            }
        }
        let mut index: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, &(fi, gi)) in nodes.iter().enumerate() {
            let f = &summaries[fi].fns[gi];
            if !f.is_test && linkable(&f.name) {
                index.entry(f.name.as_str()).or_default().push(id);
            }
        }
        Linker {
            summaries,
            nodes,
            index,
        }
    }

    fn fun(&self, id: usize) -> &'a FnNode {
        let (fi, gi) = self.nodes[id];
        &self.summaries[fi].fns[gi]
    }

    fn path(&self, id: usize) -> &'a str {
        &self.summaries[self.nodes[id].0].path
    }

    /// Definition nodes a call named `name` from file `fi` links to
    /// (per-file alias resolution, stoplist applied).
    fn resolve(&self, fi: usize, name: &str) -> &[usize] {
        let resolved = self.summaries[fi]
            .aliases
            .get(name)
            .map(String::as_str)
            .unwrap_or(name);
        if !linkable(resolved) {
            return &[];
        }
        self.index.get(resolved).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A trace frame for a node's definition.
    fn def_frame(&self, id: usize) -> TraceFrame {
        let f = self.fun(id);
        TraceFrame {
            path: self.path(id).to_string(),
            line: f.line,
            name: f.display.clone(),
        }
    }
}

/// Run the C1 reachability check over all summaries. Returns raw
/// findings grouped by file path, ready for the per-file suppression
/// pass.
pub fn check(summaries: &[FileSummary]) -> BTreeMap<String, Vec<RawFinding>> {
    let lk = Linker::build(summaries);

    // Multi-source BFS from the roots; parent pointers give shortest
    // chains. Node order is deterministic (files arrive sorted, fns in
    // token order), so chains are stable across runs.
    let mut parent: Vec<Option<usize>> = vec![None; lk.nodes.len()];
    let mut visited = vec![false; lk.nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (id, seen) in visited.iter_mut().enumerate() {
        if lk.fun(id).root.is_some() {
            *seen = true;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        let (fi, _) = lk.nodes[id];
        for call in &lk.fun(id).calls {
            for &t in lk.resolve(fi, &call.name) {
                if !visited[t] {
                    visited[t] = true;
                    parent[t] = Some(id);
                    queue.push_back(t);
                }
            }
        }
    }

    // Every blocking site in a reached node is a finding.
    let mut out: BTreeMap<String, Vec<RawFinding>> = BTreeMap::new();
    for (id, &seen) in visited.iter().enumerate() {
        if !seen {
            continue;
        }
        let node = lk.fun(id);
        if node.blocking.is_empty() {
            continue;
        }
        // Chain root → … → this node.
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(p) = parent[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        let root = lk.fun(chain[0]);
        let root_at = format!(
            "{} at {}:{}",
            root.root
                .as_ref()
                .map(|r| r.describe())
                .unwrap_or_else(|| "root".to_string()),
            lk.path(chain[0]),
            root.line
        );
        for site in &node.blocking {
            let mut trace: Vec<TraceFrame> = chain.iter().map(|&cid| lk.def_frame(cid)).collect();
            trace.push(TraceFrame {
                path: lk.path(id).to_string(),
                line: site.line,
                name: site.what.clone(),
            });
            out.entry(lk.path(id).to_string())
                .or_default()
                .push(RawFinding {
                    rule: RuleId::C1,
                    line: site.line,
                    message: format!(
                        "blocking {} reachable from a pool-task root ({root_at}, \
                         {} hop(s)): pool workers must never park on work that \
                         other queued tasks produce — restructure, move the \
                         blocking to the coordinator thread, or suppress with a \
                         written proof the wait is bounded and deadlock-free",
                        site.what,
                        chain.len() - 1
                    ),
                    trace,
                    chains: Vec::new(),
                });
        }
    }
    out
}

/// One "held → acquired" edge of the workspace lock-order graph, with
/// the shortest hold-site → acquisition-site chain as evidence.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub chain: Vec<TraceFrame>,
}

/// The workspace lock-order graph the L1/L2/L3 pass derives. Nodes are
/// lock identities (receiver binding names), edges record "a thread
/// acquired `acquired` while holding `held`". Exported as DOT for
/// humans and as the witness manifest the runtime `lockwitness`
/// feature asserts against.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Every lock identity seen in non-test code, sorted.
    pub locks: Vec<String>,
    /// Ordered edges, sorted by (held, acquired), first evidence kept.
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// GraphViz DOT rendering (deterministic, one edge per line).
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph lock_order {\n");
        for l in &self.locks {
            out.push_str(&format!("  \"{l}\";\n"));
        }
        for e in &self.edges {
            let at = e
                .chain
                .last()
                .map(|f| format!("{}:{}", f.path, f.line))
                .unwrap_or_default();
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                e.held, e.acquired, at
            ));
        }
        out.push_str("}\n");
        out
    }

    /// The runtime witness manifest: the line-based format
    /// `riskpipe_exec::lockwitness` loads and asserts observed
    /// acquisition orders against (via the manifest's transitive
    /// closure).
    pub fn render_manifest(&self) -> String {
        let mut out = String::from(
            "# riskpipe lock-order manifest v1\n\
             # generated by riskpipe-lint --emit-lock-graph — regenerate, do not hand-edit\n",
        );
        for l in &self.locks {
            out.push_str(&format!("lock {l}\n"));
        }
        for e in &self.edges {
            out.push_str(&format!("edge {} {}\n", e.held, e.acquired));
        }
        out
    }
}

/// How a node reaches a lock (or an L2 boundary) through the call
/// graph: it contains the site itself, or the next hop toward one.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Hop {
    Here,
    Via(usize),
}

/// Reverse BFS from `sources`: for every node that transitively
/// reaches a source through calls, the next hop toward it. Source
/// order is ascending node id, so next-hop choices are deterministic
/// and shortest-path.
fn reach_from(sources: &[usize], radj: &[Vec<usize>], n: usize) -> Vec<Option<Hop>> {
    let mut hop: Vec<Option<Hop>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in sources {
        if hop[s].is_none() {
            hop[s] = Some(Hop::Here);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &u in &radj[v] {
            if hop[u].is_none() {
                hop[u] = Some(Hop::Via(v));
                queue.push_back(u);
            }
        }
    }
    hop
}

/// The crate a workspace-relative path belongs to (`crates/<name>`),
/// or `""` for the root package — L3's cross-crate test.
fn crate_of(path: &str) -> &str {
    let mut it = path.split('/');
    if it.next() == Some("crates") {
        if let Some(name) = it.next() {
            return &path[..("crates/".len() + name.len())];
        }
    }
    ""
}

/// Is `kind` an L2 boundary — a park-style primitive a guard must not
/// be held across? Lock acquisitions are excluded: holding one lock
/// while taking another is L1's domain (an order edge), not L2's.
fn is_boundary(kind: BlockKind) -> bool {
    !matches!(kind, BlockKind::Mutex | BlockKind::RwLock)
}

/// Run the lock-flow analysis: compose per-fn guard spans through the
/// call graph into the workspace lock-order graph, then fire
/// L1 (order cycle), L2 (guard held across a boundary), and
/// L3 (guard held across a cross-crate call). Returns findings grouped
/// by path plus the graph for `--emit-lock-graph`.
pub fn lock_analysis(
    summaries: &[FileSummary],
    cfg: &Config,
) -> (BTreeMap<String, Vec<RawFinding>>, LockGraph) {
    let lk = Linker::build(summaries);
    let n = lk.nodes.len();

    // Forward + reverse call adjacency (deduped, deterministic).
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for id in 0..n {
        let (fi, _) = lk.nodes[id];
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for call in &lk.fun(id).calls {
            for &t in lk.resolve(fi, &call.name) {
                if seen.insert(t) {
                    radj[t].push(id);
                }
            }
        }
    }

    // Lock universe: every identity acquired in non-test code. `_`
    // (unknown receiver) carries no identity and joins no edges.
    let mut locks: BTreeSet<String> = BTreeSet::new();
    for id in 0..n {
        let f = lk.fun(id);
        if f.is_test {
            continue;
        }
        for a in &f.acquires {
            if a.lock != "_" {
                locks.insert(a.lock.clone());
            }
        }
    }

    // Per-lock transitive reach (next-hop toward the nearest direct
    // acquisition), plus the same for L2 boundaries.
    let direct_acquirers = |lock: &str| -> Vec<usize> {
        (0..n)
            .filter(|&id| {
                let f = lk.fun(id);
                !f.is_test && f.acquires.iter().any(|a| a.lock == lock)
            })
            .collect()
    };
    let lock_reach: BTreeMap<&str, Vec<Option<Hop>>> = locks
        .iter()
        .map(|l| (l.as_str(), reach_from(&direct_acquirers(l), &radj, n)))
        .collect();
    let boundary_sources: Vec<usize> = (0..n)
        .filter(|&id| {
            let f = lk.fun(id);
            !f.is_test && (!f.spawns.is_empty() || f.blocking.iter().any(|b| is_boundary(b.kind)))
        })
        .collect();
    let boundary_reach = reach_from(&boundary_sources, &radj, n);

    // Walk a next-hop chain from `start` to the node satisfying
    // `stop`, appending def frames, then the site frame `stop` yields.
    let walk_chain = |chain: &mut Vec<TraceFrame>,
                      start: usize,
                      hop: &[Option<Hop>],
                      site_of: &dyn Fn(usize) -> Option<TraceFrame>| {
        let mut cur = start;
        loop {
            chain.push(lk.def_frame(cur));
            match hop[cur] {
                Some(Hop::Via(next)) => cur = next,
                _ => break,
            }
        }
        if let Some(site) = site_of(cur) {
            chain.push(site);
        }
    };

    // A guard span's anchoring frame: where the lock was taken.
    let guard_frame = |id: usize, g: &GuardSpan| TraceFrame {
        path: lk.path(id).to_string(),
        line: g.line,
        name: format!("{} held in {}", g.what, lk.fun(id).display),
    };

    // Build the lock-order edges: direct nested acquisitions plus
    // call-composed ones. First evidence per (held, acquired) pair
    // wins; iteration order is node id → guard → event, so evidence is
    // stable across runs.
    let mut edges: BTreeMap<(String, String), Vec<TraceFrame>> = BTreeMap::new();
    let mut out: BTreeMap<String, Vec<RawFinding>> = BTreeMap::new();
    for id in 0..n {
        let f = lk.fun(id);
        if f.is_test {
            continue;
        }
        let (fi, _) = lk.nodes[id];
        for g in &f.guards {
            if g.lock != "_" {
                for acq in g.acquires.iter().filter(|a| a.lock != "_") {
                    if acq.lock == g.lock {
                        // Same-identity re-acquisition: with name-merged
                        // identities this is nearly always two distinct
                        // mutexes sharing a binding name; the runtime
                        // witness catches true self-deadlock.
                        continue;
                    }
                    edges
                        .entry((g.lock.clone(), acq.lock.clone()))
                        .or_insert_with(|| {
                            vec![
                                guard_frame(id, g),
                                TraceFrame {
                                    path: lk.path(id).to_string(),
                                    line: acq.line,
                                    name: acq.what.clone(),
                                },
                            ]
                        });
                }
                for call in &g.calls {
                    for &t in lk.resolve(fi, &call.name) {
                        for (lock, hop) in &lock_reach {
                            if *lock == g.lock || hop[t].is_none() {
                                continue;
                            }
                            edges
                                .entry((g.lock.clone(), lock.to_string()))
                                .or_insert_with(|| {
                                    let mut chain = vec![guard_frame(id, g)];
                                    walk_chain(&mut chain, t, hop, &|d| {
                                        lk.fun(d).acquires.iter().find(|a| a.lock == *lock).map(
                                            |a| TraceFrame {
                                                path: lk.path(d).to_string(),
                                                line: a.line,
                                                name: a.what.clone(),
                                            },
                                        )
                                    });
                                    chain
                                });
                        }
                    }
                }
            }

            // L2: guard held across a boundary — directly …
            for site in &g.crossings {
                out.entry(lk.path(id).to_string())
                    .or_default()
                    .push(RawFinding {
                        rule: RuleId::L2,
                        line: site.line,
                        message: format!(
                            "guard on `{}` (taken line {}) held across {} — a pool \
                             worker parked here still owns the lock, and any task it \
                             inline-steals (or that another worker runs) deadlocks \
                             the moment it needs `{}`; drop or narrow the guard \
                             before the boundary, or suppress with a written proof \
                             no queued task takes this lock",
                            g.lock, g.line, site.what, g.lock
                        ),
                        trace: vec![
                            guard_frame(id, g),
                            TraceFrame {
                                path: lk.path(id).to_string(),
                                line: site.line,
                                name: site.what.clone(),
                            },
                        ],
                        chains: Vec::new(),
                    });
            }
            // … or transitively through a call (first offending call
            // per guard keeps the noise at audit granularity).
            'transitive: for call in &g.calls {
                for &t in lk.resolve(fi, &call.name) {
                    if boundary_reach[t].is_some() {
                        let mut trace = vec![guard_frame(id, g)];
                        walk_chain(&mut trace, t, &boundary_reach, &|d| {
                            let df = lk.fun(d);
                            df.blocking
                                .iter()
                                .filter(|b| is_boundary(b.kind))
                                .map(|b| (b.line, b.what.clone()))
                                .chain(df.spawns.iter().map(|s| (s.line, s.what.clone())))
                                .min()
                                .map(|(line, name)| TraceFrame {
                                    path: lk.path(d).to_string(),
                                    line,
                                    name,
                                })
                        });
                        let boundary = trace
                            .last()
                            .map(|f| f.name.clone())
                            .unwrap_or_else(|| "a blocking boundary".to_string());
                        out.entry(lk.path(id).to_string())
                            .or_default()
                            .push(RawFinding {
                                rule: RuleId::L2,
                                line: call.line,
                                message: format!(
                                    "guard on `{}` (taken line {}) held across \
                                     `{}(..)`, which can reach {} — drop the guard \
                                     before the call, or suppress with a written \
                                     proof the callee never parks while this lock \
                                     is needed elsewhere",
                                    g.lock, g.line, call.name, boundary
                                ),
                                trace,
                                chains: Vec::new(),
                            });
                        break 'transitive;
                    }
                }
            }

            // L3: guard held across a call whose every resolution is in
            // another crate (order-opacity smell; leaf crates whose
            // locks never nest are exempt).
            let home = crate_of(lk.path(id));
            for call in &g.calls {
                let targets = lk.resolve(fi, &call.name);
                if targets.is_empty() {
                    continue;
                }
                let foreign = targets.iter().all(|&t| {
                    let tc = crate_of(lk.path(t));
                    tc != home
                        && !cfg
                            .lock_leaf_crates
                            .iter()
                            .any(|c| lk.path(t).starts_with(c.as_str()))
                });
                if foreign {
                    let mut trace = vec![guard_frame(id, g)];
                    trace.push(lk.def_frame(targets[0]));
                    out.entry(lk.path(id).to_string())
                        .or_default()
                        .push(RawFinding {
                            rule: RuleId::L3,
                            line: call.line,
                            message: format!(
                                "guard on `{}` (taken line {}) held across the \
                                 cross-crate call `{}(..)` into {} — lock order \
                                 across crate boundaries is invisible to readers; \
                                 drop the guard first, or keep the callee lock-free",
                                g.lock,
                                g.line,
                                call.name,
                                crate_of(lk.path(targets[0]))
                            ),
                            trace,
                            chains: Vec::new(),
                        });
                }
            }
        }
    }

    // L1: a cycle in the lock-order graph. Mutual-reachability closure
    // over the (tiny) lock set; one finding per strongly-connected
    // component, reported as the shortest cycle through its
    // lexicographically smallest lock with one evidence chain per edge.
    let names: Vec<&String> = locks.iter().collect();
    let idx: BTreeMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, l)| (l.as_str(), i))
        .collect();
    let k = names.len();
    let mut adj = vec![vec![false; k]; k];
    for (held, acquired) in edges.keys() {
        adj[idx[held.as_str()]][idx[acquired.as_str()]] = true;
    }
    let mut reach = adj.clone();
    for m in 0..k {
        // Row `m` cannot gain entries during its own pass (the update
        // is `reach[m][j] |= reach[m][m] && reach[m][j]`), so the
        // clone sidesteps the aliasing borrow without changing the
        // closure computed.
        let via = reach[m].clone();
        for row in reach.iter_mut() {
            if row[m] {
                for (slot, &step) in row.iter_mut().zip(via.iter()) {
                    *slot |= step;
                }
            }
        }
    }
    let mut assigned = vec![false; k];
    for start in 0..k {
        if assigned[start] {
            continue;
        }
        let scc: Vec<usize> = (start..k)
            .filter(|&j| j == start || (reach[start][j] && reach[j][start]))
            .collect();
        for &j in &scc {
            assigned[j] = true;
        }
        if scc.len() < 2 || !reach[start][start] {
            continue;
        }
        // Shortest cycle through `start` inside the SCC.
        let in_scc = |j: usize| scc.contains(&j);
        let mut parent: Vec<Option<usize>> = vec![None; k];
        let mut seen = vec![false; k];
        let mut queue: VecDeque<usize> = VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        let mut closer = None;
        'bfs: while let Some(v) = queue.pop_front() {
            for j in 0..k {
                if !adj[v][j] || !in_scc(j) {
                    continue;
                }
                if j == start {
                    closer = Some(v);
                    break 'bfs;
                }
                if !seen[j] {
                    seen[j] = true;
                    parent[j] = Some(v);
                    queue.push_back(j);
                }
            }
        }
        let Some(closer) = closer else { continue };
        let mut cycle = vec![start];
        {
            let mut path_back = Vec::new();
            let mut cur = closer;
            while cur != start {
                path_back.push(cur);
                cur = parent[cur].expect("BFS parent");
            }
            path_back.reverse();
            cycle.extend(path_back);
        }
        cycle.push(start);
        let chains: Vec<Vec<TraceFrame>> = cycle
            .windows(2)
            .map(|w| edges[&(names[w[0]].clone(), names[w[1]].clone())].clone())
            .collect();
        let order = cycle
            .iter()
            .map(|&j| format!("`{}`", names[j]))
            .collect::<Vec<_>>()
            .join(" -> ");
        let anchor = chains[0].last().expect("edge chains are non-empty").clone();
        out.entry(anchor.path.clone())
            .or_default()
            .push(RawFinding {
                rule: RuleId::L1,
                line: anchor.line,
                message: format!(
                    "lock-order cycle {order}: two threads taking these locks in \
                 opposite orders deadlock; impose one global order (each chain \
                 below shows where an edge is created), narrow one guard, or \
                 suppress with a written proof the orders can never interleave"
                ),
                trace: Vec::new(),
                chains,
            });
    }

    let graph = LockGraph {
        locks: locks.into_iter().collect(),
        edges: edges
            .into_iter()
            .map(|((held, acquired), chain)| LockEdge {
                held,
                acquired,
                chain,
            })
            .collect(),
    };
    (out, graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FileModel;
    use crate::lexer::lex;
    use crate::summary::summarize;
    use crate::Config;

    fn graph_findings(files: &[(&str, &str)]) -> BTreeMap<String, Vec<RawFinding>> {
        let cfg = Config::default();
        let summaries: Vec<FileSummary> = files
            .iter()
            .map(|(p, s)| summarize(&FileModel::build(p, lex(s)), &cfg))
            .collect();
        check(&summaries)
    }

    #[test]
    fn cross_file_chain_is_reported_shortest_first() {
        let a = "fn drive(pool: &ThreadPool) {\n\
                 pool.scope(|s| {\n    s.spawn(move || { stage_kernel(7); });\n});\n}";
        let b = "pub fn stage_kernel(x: u64) -> u64 {\n    gate_barrier(x)\n}\n\
                 fn gate_barrier(x: u64) -> u64 {\n    let g = GATE.lock();\n    x\n}";
        let out = graph_findings(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        let findings = &out["crates/x/src/b.rs"];
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.rule, RuleId::C1);
        assert_eq!(f.line, 5);
        // Chain: spawn closure → stage_kernel → gate_barrier → lock.
        assert_eq!(f.trace.len(), 4);
        assert!(f.trace[0].name.contains("task closure"));
        assert!(f.trace[1].name.contains("stage_kernel"));
        assert!(f.trace[2].name.contains("gate_barrier"));
        assert!(f.trace[3].name.contains("lock"));
    }

    #[test]
    fn unreachable_blocking_is_clean() {
        let a = "fn coordinator(m: &Mutex<u32>) {\n    let g = m.lock();\n}";
        let out = graph_findings(&[("crates/x/src/a.rs", a)]);
        assert!(out.is_empty());
    }

    #[test]
    fn alias_resolved_calls_still_link() {
        let a = "use helpers::{stage_kernel as kern};\n\
                 fn drive(pool: &ThreadPool) {\n\
                 pool.scope(|s| {\n    s.spawn(move || { kern(7); });\n});\n}";
        let b = "pub fn stage_kernel(x: u64) -> u64 {\n    let g = GATE.lock();\n    x\n}";
        let out = graph_findings(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        assert_eq!(out["crates/x/src/b.rs"].len(), 1);
    }

    #[test]
    fn stoplisted_names_do_not_attract_edges() {
        // A def named `next` holding a recv must not be reached via a
        // generic `.next()` call in a task body.
        let a = "fn drive(pool: &ThreadPool) {\n\
                 pool.scope(|s| {\n    s.spawn(move || { it.next(); });\n});\n}";
        let b = "fn next(rx: &Receiver<u32>) -> Option<u32> {\n    rx.recv().ok()\n}";
        let out = graph_findings(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        assert!(out.is_empty());
    }
}
