//! The `--baseline` ratchet: warn-severity findings are tolerated up
//! to a committed per-(rule, path) count, so existing debt cannot
//! silently grow while new debt is rejected at the diff.
//!
//! Deny findings are never baselined — they fail the run regardless.
//! The file format is a small hand-rolled JSON document (this crate
//! builds offline with no dependencies):
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     {"rule": "W1", "path": "crates/core/src/session.rs", "count": 12}
//!   ]
//! }
//! ```
//!
//! The parser below accepts exactly this shape (any key order,
//! arbitrary whitespace) and rejects everything else loudly — a
//! half-read baseline that silently tolerated nothing (or everything)
//! would defeat the ratchet.

use crate::{Report, Severity};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tolerated warn counts keyed by (rule code, path).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<(String, String), u64>,
}

/// One (rule, path) whose current warn count exceeds the baseline.
#[derive(Debug, Clone)]
pub struct Regression {
    pub rule: String,
    pub path: String,
    pub have: u64,
    pub allowed: u64,
}

impl Baseline {
    /// Snapshot the warn findings of a report (deny findings are never
    /// baselined — they must be fixed or suppressed).
    pub fn from_report(report: &Report) -> Baseline {
        let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in &report.findings {
            if f.severity == Severity::Warn {
                *counts
                    .entry((f.rule.code().to_string(), f.path.clone()))
                    .or_default() += 1;
            }
        }
        Baseline { counts }
    }

    /// Per-(rule, path) warn counts that grew beyond the baseline.
    pub fn regressions(&self, report: &Report) -> Vec<Regression> {
        let current = Baseline::from_report(report);
        let mut out = Vec::new();
        for ((rule, path), &have) in &current.counts {
            let allowed = self
                .counts
                .get(&(rule.clone(), path.clone()))
                .copied()
                .unwrap_or(0);
            if have > allowed {
                out.push(Regression {
                    rule: rule.clone(),
                    path: path.clone(),
                    have,
                    allowed,
                });
            }
        }
        out
    }

    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, ((rule, path), count)) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"count\": {}}}",
                crate::json_escape(rule),
                crate::json_escape(path),
                count
            );
        }
        if !self.counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    pub fn parse_json(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            chars: text.char_indices().peekable(),
            text,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.chars.peek().is_some() {
            return Err("trailing content after the baseline document".into());
        }
        let Value::Object(top) = value else {
            return Err("baseline root must be a JSON object".into());
        };
        match top.get("version") {
            Some(Value::Number(n)) if *n == 1.0 => {}
            _ => return Err("baseline `version` must be 1".into()),
        }
        let Some(Value::Array(entries)) = top.get("entries") else {
            return Err("baseline needs an `entries` array".into());
        };
        let mut counts = BTreeMap::new();
        for e in entries {
            let Value::Object(e) = e else {
                return Err("each baseline entry must be an object".into());
            };
            let (Some(Value::String(rule)), Some(Value::String(path)), Some(Value::Number(n))) =
                (e.get("rule"), e.get("path"), e.get("count"))
            else {
                return Err("each entry needs string `rule`/`path` and numeric `count`".into());
            };
            if !(n.is_finite() && *n >= 0.0 && n.fract() == 0.0) {
                return Err(format!("bad count {n} for {rule}:{path}"));
            }
            counts.insert((rule.clone(), path.clone()), *n as u64);
        }
        Ok(Baseline { counts })
    }
}

/// Minimal JSON value model — just enough for the baseline schema.
enum Value {
    Object(BTreeMap<String, Value>),
    Array(Vec<Value>),
    String(String),
    Number(f64),
    Bool(#[allow(dead_code)] bool),
    Null,
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .chars
            .peek()
            .is_some_and(|&(_, c)| c.is_ascii_whitespace())
        {
            self.chars.next();
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some((_, '{')) => self.object(),
            Some((_, '[')) => self.array(),
            Some((_, '"')) => self.string().map(Value::String),
            Some((i, c)) if c == '-' || c.is_ascii_digit() => self.number(i),
            Some((i, _)) => {
                let rest = &self.text[i..];
                for (lit, v) in [
                    ("true", Value::Bool(true)),
                    ("false", Value::Bool(false)),
                    ("null", Value::Null),
                ] {
                    if rest.starts_with(lit) {
                        for _ in 0..lit.len() {
                            self.chars.next();
                        }
                        return Ok(v);
                    }
                }
                Err(format!("unexpected JSON at byte {i}"))
            }
            None => Err("unexpected end of baseline JSON".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.chars.next(); // '{'
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.chars.peek().is_some_and(|&(_, c)| c == '}') {
            self.chars.next();
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            match self.chars.next() {
                Some((_, ':')) => {}
                _ => return Err(format!("expected `:` after key `{key}`")),
            }
            out.insert(key, self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => return Ok(Value::Object(out)),
                _ => return Err("expected `,` or `}` in object".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.chars.next(); // '['
        let mut out = Vec::new();
        self.skip_ws();
        if self.chars.peek().is_some_and(|&(_, c)| c == ']') {
            self.chars.next();
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, ']')) => return Ok(Value::Array(out)),
                _ => return Err("expected `,` or `]` in array".into()),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        match self.chars.next() {
            Some((_, '"')) => {}
            _ => return Err("expected a string".into()),
        }
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, h)) = self.chars.next() else {
                                return Err("truncated \\u escape".into());
                            };
                            let Some(d) = h.to_digit(16) else {
                                return Err("bad \\u escape".into());
                            };
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape in string".into()),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self, start: usize) -> Result<Value, String> {
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_digit() || "+-.eE".contains(c) {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        self.text[start..end]
            .parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number `{}`: {e}", &self.text[start..end]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, RuleId};

    fn warn(rule: RuleId, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            severity: Severity::Warn,
            path: path.into(),
            line,
            message: "m".into(),
            trace: Vec::new(),
            chains: Vec::new(),
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let report = Report {
            findings: vec![
                warn(RuleId::W1, "crates/core/src/a.rs", 1),
                warn(RuleId::W1, "crates/core/src/a.rs", 9),
                warn(RuleId::W1, "crates/exec/src/b.rs", 3),
            ],
            files_scanned: 2,
            ..Report::default()
        };
        let b = Baseline::from_report(&report);
        let parsed = Baseline::parse_json(&b.render_json()).expect("parse");
        assert_eq!(parsed, b);
        assert_eq!(
            parsed.counts[&("W1".to_string(), "crates/core/src/a.rs".to_string())],
            2
        );
    }

    #[test]
    fn regressions_flag_growth_and_new_paths_only() {
        let old = Report {
            findings: vec![warn(RuleId::W1, "crates/core/src/a.rs", 1)],
            files_scanned: 1,
            ..Report::default()
        };
        let baseline = Baseline::from_report(&old);
        // Same count: clean. One more in a.rs plus a new file: two
        // regressions.
        let grown = Report {
            findings: vec![
                warn(RuleId::W1, "crates/core/src/a.rs", 1),
                warn(RuleId::W1, "crates/core/src/a.rs", 2),
                warn(RuleId::W1, "crates/exec/src/b.rs", 3),
            ],
            files_scanned: 2,
            ..Report::default()
        };
        assert!(baseline.regressions(&old).is_empty());
        let regs = baseline.regressions(&grown);
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].path, "crates/core/src/a.rs");
        assert_eq!(regs[0].have, 2);
        assert_eq!(regs[0].allowed, 1);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Baseline::parse_json("[]").is_err());
        assert!(Baseline::parse_json("{\"version\": 2, \"entries\": []}").is_err());
        assert!(Baseline::parse_json("{\"version\": 1}").is_err());
        assert!(
            Baseline::parse_json("{\"version\": 1, \"entries\": [{\"rule\": \"W1\"}]}").is_err()
        );
        assert!(Baseline::parse_json("{\"version\": 1, \"entries\": []} x").is_err());
    }

    #[test]
    fn empty_baseline_parses() {
        let b = Baseline::parse_json("{\"version\": 1, \"entries\": []}").expect("parse");
        assert!(b.counts.is_empty());
    }
}
