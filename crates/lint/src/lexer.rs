//! A small hand-rolled Rust lexer.
//!
//! The rule engine needs just enough token structure to tell *code*
//! from *comments and string literals*: a rule must fire on the
//! identifier `thread_rng` but not on the words "thread_rng" inside a
//! doc comment, an error message, or this very sentence. The lexer
//! therefore produces a flat token stream — identifiers, literals,
//! comments (kept, because `// SAFETY:` audits and `// lint: allow`
//! suppressions live there) and punctuation — with the source line of
//! every token. It does not parse; the rules pattern-match over the
//! stream instead.
//!
//! Handled: line/nested-block comments, string/raw-string/byte-string
//! literals, char literals vs lifetimes, numeric literals, and the
//! multi-character operators the rules care about (`::`, `->`, `=>`,
//! `..`). Everything else is a single-character punct token.

/// What a token is. Rules mostly look at [`TokKind::Ident`] and
/// [`TokKind::Comment`]; literals exist so their *content* is never
/// mistaken for code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Num,
    Str,
    Char,
    Lifetime,
    Comment,
    Punct,
}

/// One token: kind, verbatim text, and the 1-based source line it
/// starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punct with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Tokenize `src`. Never fails: unterminated literals/comments lex as
/// whatever text remains (the pass must degrade gracefully on code
/// that doesn't compile yet).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    /// Does a raw (possibly byte) string literal start at `pos`?
    fn raw_string_ahead(&self) -> bool {
        let mut i = 0;
        if self.peek(i) == Some('b') {
            i += 1;
        }
        if self.peek(i) != Some('r') {
            return false;
        }
        i += 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Comment, text, line);
    }

    fn string(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().expect("opening quote")); // the opening `"`
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn raw_string(&mut self, line: u32) {
        let mut text = String::new();
        if self.peek(0) == Some('b') {
            text.push(self.bump().expect("b prefix"));
        }
        text.push(self.bump().expect("r prefix"));
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push(self.bump().expect("hash"));
        }
        text.push(self.bump().expect("opening quote"));
        // Scan for `"` followed by `hashes` hash marks.
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    text.push(self.bump().expect("closing hash"));
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().expect("opening quote")); // `'`
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal.
                text.push(self.bump().expect("backslash"));
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, text, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // Could be `'x'` or a lifetime; scan the ident run.
                let mut ident = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        ident.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                text.push_str(&ident);
                if self.peek(0) == Some('\'') {
                    text.push(self.bump().expect("closing quote"));
                    self.push(TokKind::Char, text, line);
                } else {
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            Some(_) => {
                // `'('` and friends: a one-symbol char literal.
                text.push(self.bump().expect("char"));
                if self.peek(0) == Some('\'') {
                    text.push(self.bump().expect("closing quote"));
                }
                self.push(TokKind::Char, text, line);
            }
            None => self.push(TokKind::Punct, text, line),
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' {
                // `1.5` continues the number; `1..n` does not.
                if self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn punct(&mut self, line: u32) {
        const TWO: [&str; 4] = ["::", "->", "=>", ".."];
        let c = self.bump().expect("punct char");
        if let Some(d) = self.peek(0) {
            let pair: String = [c, d].iter().collect();
            if TWO.contains(&pair.as_str()) {
                self.bump();
                self.push(TokKind::Punct, pair, line);
                return;
            }
        }
        self.push(TokKind::Punct, c.to_string(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_literals_and_puncts() {
        let toks = kinds("let x = foo(1.5, \"hi\");");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
        assert_eq!(toks[2], (TokKind::Punct, "=".into()));
        assert_eq!(toks[3], (TokKind::Ident, "foo".into()));
        assert_eq!(toks[5], (TokKind::Num, "1.5".into()));
        assert_eq!(toks[7], (TokKind::Str, "\"hi\"".into()));
    }

    #[test]
    fn code_words_inside_strings_and_comments_are_not_idents() {
        let toks = lex("// thread_rng in prose\nlet s = \"Instant::now\";");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still outer */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert!(toks[0].text.contains("inner"));
        assert!(toks[1].is_ident("x"));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let toks = lex(r####"let s = r#"a "quoted" b"#; y"####);
        assert_eq!(toks[3].kind, TokKind::Str);
        assert!(toks.last().expect("tokens").is_ident("y"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokKind::Char, "'x'".into())));
    }

    #[test]
    fn multi_char_puncts() {
        let toks = kinds("std::mem -> x => 0..n");
        assert!(toks.contains(&(TokKind::Punct, "::".into())));
        assert!(toks.contains(&(TokKind::Punct, "->".into())));
        assert!(toks.contains(&(TokKind::Punct, "=>".into())));
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let toks = lex("a\n\"two\nline\"\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // the string starts on line 2
        assert_eq!(toks[2].line, 4); // `b` after the embedded newline
    }
}
