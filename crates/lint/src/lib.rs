//! `riskpipe-lint` — the workspace determinism & safety pass.
//!
//! Every artifact this engine produces is contractually bit-identical
//! across engines, thread counts, and live/rebuild paths (the pinned
//! goldens in `tests/golden_metrics.rs`, `tests/sweep_plan.rs`,
//! `tests/drilldown.rs`). The goldens catch a nondeterminism bug *after
//! the fact*; this pass catches the patterns that cause them *at the
//! diff*. It tokenizes every `.rs` file in `crates/`, `src/`,
//! `examples/` and `tests/` with a hand-rolled lexer (no external
//! dependencies — the workspace builds offline) and enforces the rule
//! catalogue [`RULES`]:
//!
//! * **D1** — no iteration over `HashMap`/`HashSet` in
//!   fold/merge/sink/rollup code (use `BTreeMap` or a sorted drain);
//! * **D2** — no `sort_by`/`max_by`/`min_by` comparators built on
//!   `partial_cmp` (use `f64::total_cmp`);
//! * **D3** — no `Instant::now`/`SystemTime::now` outside designated
//!   timing modules (timings flow through stats/counter structs only);
//! * **D4** — no entropy-seeded RNG construction (seeds are explicit);
//! * **S1** — every `unsafe` site carries a `// SAFETY:` audit comment;
//! * **S2** — narrowing `as` casts in codec/decode paths need a checked
//!   conversion or an annotation (graduated from warn to deny once the
//!   durable-format work landed and the workspace was clean);
//! * **C1** — no blocking primitive (`lock`, condvar `wait`, channel
//!   `recv`, `join`, `park`, nested `.scope`) *reachable* from code that
//!   executes on pool workers — checked over a workspace call graph,
//!   with the full root→site chain in every finding;
//! * **C2** — no raw filesystem writes (`fs::write`, `File::create`,
//!   truncating `OpenOptions`) in persistence paths outside
//!   `riskpipe_tables::durable`;
//! * **W1** — (warn) no `unwrap`/`expect`/`panic!` in non-test library
//!   code of the serving-path crates, ratcheted by the CI baseline.
//!
//! The engine is two-pass: pass 1 lexes and summarises every file in
//! parallel (definitions, call sites, aliases, blocking sites, task
//! closures); pass 2 links the summaries into a call graph and runs
//! reachability from the pool-task roots (see [`crate::graph`]).
//!
//! Suppression is per-site and auditable:
//!
//! ```text
//! // lint: allow(D1) — each key occurs once per partial; entries are
//! // sorted before they can reach any output.
//! ```
//!
//! A suppression must name the rule and carry a non-empty reason after
//! a dash; a malformed suppression is itself a deny-level finding
//! (rule `SUP`), and an unused one a warn-level finding — so the audit
//! trail can never silently rot.
//!
//! The lint crate eats its own dog food: its sources use `BTreeMap`
//! throughout, bind no wall clocks, and are part of the workspace scan
//! run by the tier-1 `workspace_clean` test.

mod analysis;
pub mod baseline;
mod cache;
pub mod graph;
mod lexer;
mod rules;
pub mod summary;

pub use analysis::{FileModel, HashKind, Scope, Suppression};
pub use baseline::{Baseline, Regression};
pub use lexer::{lex, Tok, TokKind};
pub use rules::RawFinding;
pub use summary::{FileSummary, FnNode, RootKind};

use std::fmt;
use std::path::{Path, PathBuf};

/// The rule catalogue identifiers. `Sup` is the engine's own rule:
/// findings about the suppression comments themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    D1,
    D2,
    D3,
    D4,
    S1,
    S2,
    C1,
    C2,
    L1,
    L2,
    L3,
    W1,
    Sup,
}

impl RuleId {
    pub const ALL: [RuleId; 13] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::S1,
        RuleId::S2,
        RuleId::C1,
        RuleId::C2,
        RuleId::L1,
        RuleId::L2,
        RuleId::L3,
        RuleId::W1,
        RuleId::Sup,
    ];

    pub fn code(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::S1 => "S1",
            RuleId::S2 => "S2",
            RuleId::C1 => "C1",
            RuleId::C2 => "C2",
            RuleId::L1 => "L1",
            RuleId::L2 => "L2",
            RuleId::L3 => "L3",
            RuleId::W1 => "W1",
            RuleId::Sup => "SUP",
        }
    }

    pub fn from_code(code: &str) -> Option<RuleId> {
        let code = code.to_ascii_uppercase();
        RuleId::ALL.into_iter().find(|r| r.code() == code)
    }

    /// Default severity. New rules enter the catalogue at `Warn` and
    /// graduate to `Deny` once the workspace is clean (S2 graduated
    /// with the durable-format work; C1/C2 entered at deny because the
    /// workspace was audited to zero in the same change). W1 stays at
    /// warn, ratcheted by the CI `--baseline` job.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::W1 | RuleId::L3 => Severity::Warn,
            _ => Severity::Deny,
        }
    }

    /// One-line summary for `--rules` listings.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1 => "no HashMap/HashSet iteration in fold/merge/sink/rollup code",
            RuleId::D2 => "no sort_by/max_by/min_by comparators built on partial_cmp",
            RuleId::D3 => "no Instant::now/SystemTime::now outside designated timing modules",
            RuleId::D4 => "no entropy-seeded RNG construction (seeds must be explicit)",
            RuleId::S1 => "every unsafe site carries a // SAFETY: audit comment",
            RuleId::S2 => "narrowing `as` casts in codec/decode paths need a checked conversion",
            RuleId::C1 => "no blocking primitive reachable from pool-task roots (call-graph rule)",
            RuleId::C2 => "no raw fs writes in persistence paths outside riskpipe_tables::durable",
            RuleId::L1 => "no cycle in the workspace lock-order graph (call-graph rule)",
            RuleId::L2 => "no guard held across a spawn/par_*/scope boundary or blocking site",
            RuleId::L3 => "no guard held across a call into another crate (baseline-ratcheted)",
            RuleId::W1 => {
                "no unwrap/expect/panic! in serving-path library code (baseline-ratcheted)"
            }
            RuleId::Sup => "suppressions must name a known rule and carry a reason, and be used",
        }
    }

    /// Full `--explain` text.
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "D1 — hash-container iteration in merge-sensitive code (deny)\n\
                 \n\
                 WHY   std::collections::HashMap/HashSet iterate in an order that is\n\
                 randomized per process (SipHash keys differ per run). When a fold,\n\
                 merge, sink, or rollup visits entries in that order, any non-\n\
                 commutative step — floating-point accumulation, output emission,\n\
                 first-wins conflict resolution — produces run-dependent artifacts,\n\
                 which breaks the engine's bit-identical contract (and makes sharded\n\
                 MapReduce merges untrustworthy).\n\
                 \n\
                 FIRES on `for .. in <hash>` and `<hash>.iter()/drain()/keys()/...`\n\
                 when an enclosing fn/closure/file name looks like fold/merge/sink/\n\
                 rollup code, or the loop body calls merge/fold/absorb/reduce.\n\
                 \n\
                 FIX   Use BTreeMap/BTreeSet, collect::<BTreeMap<_,_>>(), or the\n\
                 sorted-drain idiom the rule recognises:\n\
                 \n\
                 \tlet mut v: Vec<_> = map.into_iter().collect();\n\
                 \tv.sort_unstable_by_key(|e| e.0);\n\
                 \n\
                 Suppress a provably order-independent site with\n\
                 `// lint: allow(D1) — <why order cannot leak>`."
            }
            RuleId::D2 => {
                "D2 — partial_cmp-based comparators (deny)\n\
                 \n\
                 WHY   `partial_cmp` on floats returns None for NaN, so comparators\n\
                 built on it either panic (unwrap) or fall back to an arbitrary\n\
                 ordering — and the sort order of equal-or-NaN keys then depends on\n\
                 input arrangement and sort algorithm. A NaN that reaches a sort key\n\
                 must order deterministically, not by accident.\n\
                 \n\
                 FIRES on sort_by/sort_unstable_by/max_by/min_by whose comparator\n\
                 mentions partial_cmp.\n\
                 \n\
                 FIX   Use `f64::total_cmp` (total order, NaN sorted high/low by\n\
                 sign bit) or an integer/Ord key. Tie-break float keys with a\n\
                 stable secondary key when equal values must order reproducibly."
            }
            RuleId::D3 => {
                "D3 — wall-clock reads outside designated timing modules (deny)\n\
                 \n\
                 WHY   Instant::now/SystemTime::now readings differ every run. They\n\
                 are fine as *measurements* (stats, counters, benchmark reports) but\n\
                 poison determinism the moment one flows into a numeric result, a\n\
                 seed, a cache key, or control flow near the numeric path.\n\
                 \n\
                 FIRES on Instant::now/SystemTime::now in any file outside the\n\
                 designated timing modules (default: crates/bench/ — the benchmark\n\
                 and perf-gate harness). Inline #[cfg(test)] modules are exempt.\n\
                 \n\
                 FIX   Route the timing through the existing stats/counter structs\n\
                 (StageTiming, ExecStats, Stage1CacheStats...) in a designated\n\
                 module, or suppress with a reason documenting exactly where the\n\
                 reading flows and why it cannot reach numeric output."
            }
            RuleId::D4 => {
                "D4 — entropy-seeded RNG construction (deny)\n\
                 \n\
                 WHY   Every random stream in the pipeline must be replayable: the\n\
                 paper's workloads (and the goldens) depend on simulations being\n\
                 bit-identical given a scenario seed. thread_rng/from_entropy/OsRng\n\
                 draw from process entropy, so two runs can never agree.\n\
                 \n\
                 FIRES on thread_rng / from_entropy / OsRng / getrandom tokens.\n\
                 \n\
                 FIX   Construct RNGs from explicit caller-provided seeds (the\n\
                 riskpipe_types::dist generators all take u64 seeds) and derive\n\
                 per-task streams by mixing stable identifiers into the seed."
            }
            RuleId::S1 => {
                "S1 — unsafe without a SAFETY audit (deny)\n\
                 \n\
                 WHY   Every unsafe block/fn/impl in the workspace encodes an\n\
                 invariant the compiler cannot check (disjoint slot ownership in the\n\
                 pool's scoped spawns, the simulated-GPU launch contract, lifetime\n\
                 erasure in work-stealing). An unwritten invariant is one refactor\n\
                 away from being violated silently; the audit comment is the\n\
                 reviewable contract.\n\
                 \n\
                 FIRES on any `unsafe` token without a comment containing `SAFETY`\n\
                 within the preceding six lines (trailing same-line comments count).\n\
                 This rule applies in test code too.\n\
                 \n\
                 FIX   Write `// SAFETY: <the invariant and why it holds here>`\n\
                 immediately above the unsafe site."
            }
            RuleId::S2 => {
                "S2 — narrowing casts in codec/decode paths (deny)\n\
                 \n\
                 WHY   `x as u32` silently truncates. In codec/decode paths a\n\
                 truncated length, offset, or id corrupts persisted artifacts in\n\
                 ways the checksums of a future frame format may not even catch\n\
                 (the truncation happens before encoding). The rule entered the\n\
                 catalogue at warn and graduated to deny when the durable-format\n\
                 work in the ROADMAP landed.\n\
                 \n\
                 FIRES on `as u8/u16/u32/i8/i16/i32/f32` inside functions or files\n\
                 whose name marks them as codec/encode/decode/compress/frame code.\n\
                 \n\
                 FIX   Use TryFrom/try_into with an error path, assert the bound\n\
                 first, or suppress with a reason proving the value fits\n\
                 (`// lint: allow(S2) — shard count is capped at 4096 above`)."
            }
            RuleId::C1 => {
                "C1 — blocking primitives reachable from pool-task roots (deny)\n\
                 \n\
                 WHY   The pool has a fixed worker count and tasks spawn tasks. A\n\
                 worker that parks on a lock, condvar, channel, or join that only\n\
                 *other queued tasks* can release is a deadlock: the releasing task\n\
                 may be queued behind the parked worker. The engine's whole design\n\
                 (inline task-stealing in nested scopes, the never-parking stage-1\n\
                 cache, redundant racer builds) exists to uphold this invariant.\n\
                 \n\
                 FIRES via a workspace call graph: pass 1 summarises every file\n\
                 (definitions, call sites, `use` aliases, closures attached to\n\
                 their spawning expression); pass 2 runs reachability from the\n\
                 pool-task roots — `Scope::spawn` closures, `par_*` helper\n\
                 closures, and the worker-executed fns `accept`/`accept_shared`/\n\
                 `build_stage1_output_on` — to Mutex `lock`, RwLock `read`/`write`,\n\
                 condvar `wait*`, channel `recv*`, argless `join`, `thread::park`,\n\
                 and nested `.scope(..)` sites. Every finding prints the full call\n\
                 chain root → … → blocking site. Linking is name-based and\n\
                 deliberately over-approximate: a false edge costs one audited\n\
                 suppression, a missed edge costs the invariant.\n\
                 \n\
                 FIX   Restructure to atomics/message passing, move the blocking\n\
                 to the coordinator thread, or suppress at the blocking site with\n\
                 a written proof the wait is bounded and cannot form a cycle\n\
                 (e.g. `// lint: allow(C1) — wake-gate only: 200µs bounded wait,\n\
                 holder never blocks`). The suppression silences every chain\n\
                 through that site — the site is sound or it is not."
            }
            RuleId::C2 => {
                "C2 — raw filesystem writes in persistence paths (deny)\n\
                 \n\
                 WHY   Durable artifacts are crash-consistent only because every\n\
                 byte lands via `riskpipe_tables::durable::write_atomic` (tmp file\n\
                 + sync_all + rename + parent fsync) or the sharded inflight-then-\n\
                 rename protocol, with the manifest written last. One bare\n\
                 `fs::write` in a persistence path reintroduces torn frames that\n\
                 the crash-recovery tests cannot see until a real crash does.\n\
                 \n\
                 FIRES on `fs::write`, `File::create`, and `OpenOptions`\n\
                 `.truncate(true)` in non-test code whose file stem or enclosing\n\
                 fn name marks it as persistence code (persist/store/shard/\n\
                 manifest/snapshot/checkpoint/save/spill), outside the durable\n\
                 module itself.\n\
                 \n\
                 FIX   Route the bytes through `durable::write_atomic`, or\n\
                 suppress with a written crash-consistency argument (e.g. the\n\
                 shard writer streams to an `.inflight` name and renames at seal,\n\
                 so a torn inflight file is unreferenced garbage by construction)."
            }
            RuleId::L1 => {
                "L1 — cycle in the workspace lock-order graph (deny)\n\
                 \n\
                 WHY   Two threads that acquire the same two locks in opposite\n\
                 orders can deadlock: each holds the lock the other wants. The\n\
                 22 hand-written C1 suppressions permit specific blocking sites;\n\
                 this rule proves the *order* of the acquisitions they permit is\n\
                 globally consistent — the moral equivalent of lockdep, but at\n\
                 the diff instead of at runtime.\n\
                 \n\
                 FIRES via lock-flow analysis: pass 1 attaches each acquisition\n\
                 to the binding it locks (`self.index.lock()` acquires lock\n\
                 `index`) and tracks guard lifetimes (binding of the returned\n\
                 guard, scope end, explicit `drop(..)`); every lock acquired\n\
                 while another guard is held — directly or through a call\n\
                 chain — becomes an edge `held -> acquired` of a workspace\n\
                 lock-order graph. A cycle in that graph is a potential\n\
                 deadlock; the finding carries every chain that closes it\n\
                 (holder site -> ... -> nested acquisition, one chain per\n\
                 edge). Lock identity is the receiver binding name —\n\
                 deliberately over-approximate, like the call graph: merged\n\
                 same-name locks can only add edges, never hide one.\n\
                 \n\
                 FIX   Pick one global order (document it at the lock\n\
                 declarations) and restructure the minority site: narrow the\n\
                 first guard's scope with a block or `drop(..)` before taking\n\
                 the second lock, or copy the needed data out. Suppress at the\n\
                 nested acquisition the finding anchors on only with a written\n\
                 proof the two chains can never run concurrently. The exported\n\
                 manifest (`--emit-lock-graph`) is what the runtime\n\
                 lockwitness asserts against, so the order you prove here is\n\
                 re-checked on every lockwitness-enabled test run."
            }
            RuleId::L2 => {
                "L2 — guard held across a spawn/par_*/scope boundary or a\n\
                 C1-class blocking site (deny)\n\
                 \n\
                 WHY   The pool inline-steals: a thread inside `.scope(..)`\n\
                 (and any worker between tasks) executes *other queued tasks*.\n\
                 A guard held across such a boundary is held while arbitrary\n\
                 stolen work runs — if that work wants the same lock, the\n\
                 thread deadlocks on itself; a guard held across a condvar\n\
                 wait, channel receive, or join extends the hold for an\n\
                 unbounded park. This is the self-deadlock shape the session's\n\
                 leader-gate suppressions argue about by hand; L2 checks it\n\
                 mechanically.\n\
                 \n\
                 FIRES when a tracked guard is live across a `Scope::spawn` /\n\
                 `par_*` call, a nested `.scope(..)`, or a wait/recv/join/park\n\
                 site — in the same fn, or through a call chain to a fn that\n\
                 transitively reaches one. A condvar wait that names the\n\
                 guard's binding in its arguments is exempt (the wait releases\n\
                 that mutex while parked); any *other* guard held across it\n\
                 still fires.\n\
                 \n\
                 FIX   End the guard first (block scope or `drop(..)`), copy\n\
                 the data out, or move the spawn/wait outside the critical\n\
                 section. Suppress only with a written proof the held lock is\n\
                 never touched by work reachable from the boundary."
            }
            RuleId::L3 => {
                "L3 — guard held across a call into another crate (warn)\n\
                 \n\
                 WHY   A cross-crate call made while holding a lock makes the\n\
                 lock order depend on a callee the holder's crate does not\n\
                 control — today's leaf call is tomorrow's callback that takes\n\
                 another lock, and the order edge it creates is invisible at\n\
                 the call site. Order-opaque holds are how lock hierarchies\n\
                 rot; the rule keeps them enumerable and ratcheted.\n\
                 \n\
                 FIRES when a tracked guard is live across a call whose every\n\
                 resolved definition lives in a different crate (same-crate\n\
                 candidates win — Rust resolution prefers local items).\n\
                 Calls into designated lock-leaf crates (default: riskpipe-obs,\n\
                 whose registry locks never call back out) are exempt, the\n\
                 same shape as D3's timing modules. Warn severity, ratcheted\n\
                 by the CI `--baseline` job like W1.\n\
                 \n\
                 FIX   Narrow the guard (copy data out, drop before calling),\n\
                 or keep the call and pay for it in the baseline; promote a\n\
                 genuinely leaf-like callee crate into `lock_leaf_crates` only\n\
                 with an audit that its internal locks never call out."
            }
            RuleId::W1 => {
                "W1 — unwrap/expect/panic! in serving-path library code (warn)\n\
                 \n\
                 WHY   A panic inside a pool task aborts the whole pipeline run\n\
                 and poisons shared mutexes; the serving path should surface\n\
                 typed errors instead. The rule is warn-severity — existing debt\n\
                 is tolerated — but the nightly CI job runs with `--baseline`\n\
                 against a committed snapshot, so the count per (rule, file) can\n\
                 only go down.\n\
                 \n\
                 FIRES on `.unwrap(`, `.expect(`, and `panic!` in non-test code\n\
                 under the serving-path crates (core, exec, tables, metrics,\n\
                 warehouse, analytics, mapreduce).\n\
                 \n\
                 FIX   Return a Result, use unwrap_or/_default, or keep the call\n\
                 and pay for it in the baseline (new code should not add any)."
            }
            RuleId::Sup => {
                "SUP — suppression hygiene (deny for malformed, warn for unused)\n\
                 \n\
                 WHY   Suppressions are the audit trail that keeps the pass honest.\n\
                 One that names no known rule or gives no reason is unreviewable;\n\
                 one that no longer suppresses anything is stale documentation.\n\
                 \n\
                 SYNTAX  // lint: allow(D1) — reason\n\
                 \t// lint: allow(D3, S1) - reason   (plain hyphen also accepted)\n\
                 The comment covers its own line and the next code line.\n\
                 \n\
                 FIRES (deny) on allow() naming an unknown rule or missing the\n\
                 reason; (warn) on a suppression that matched no finding."
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Finding severity. `Deny` findings fail the build; `Warn` findings
/// are reported (and fail only under `--deny-warnings`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Deny,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One frame of a C1 call-chain trace: a function definition (or the
/// final blocking site) on the path from a pool-task root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFrame {
    pub path: String,
    pub line: u32,
    /// Display name: the fn, the task closure, or the blocking
    /// primitive for the final frame.
    pub name: String,
}

/// One reportable finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: RuleId,
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub line: u32,
    pub message: String,
    /// Call-chain trace from root to blocking site (C1/L2/L3; empty
    /// for the per-file rules).
    pub trace: Vec<TraceFrame>,
    /// The chains closing a lock-order cycle (L1 only): one chain per
    /// edge, holder site → … → nested acquisition. JSON schema v3
    /// reports these under `chains`.
    pub chains: Vec<Vec<TraceFrame>>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.path,
            self.line,
            self.rule,
            self.severity.as_str(),
            self.message
        )?;
        for (i, frame) in self.trace.iter().enumerate() {
            let head = if i == 0 { "chain:" } else { "   ->" };
            write!(
                f,
                "\n    {head} {}:{} {}",
                frame.path, frame.line, frame.name
            )?;
        }
        for (c, chain) in self.chains.iter().enumerate() {
            for (i, frame) in chain.iter().enumerate() {
                if i == 0 {
                    write!(f, "\n    chain {}:", c + 1)?;
                } else {
                    write!(f, "\n       ->")?;
                }
                write!(f, " {}:{} {}", frame.path, frame.line, frame.name)?;
            }
        }
        Ok(())
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path substrings designating timing modules (D3 allowlist).
    pub timing_modules: Vec<String>,
    /// Directory names skipped during the walk. `fixtures` is excluded
    /// because lint fixture trees are intentionally violating inputs.
    pub exclude_dirs: Vec<String>,
    /// Path prefixes of the serving-path crates (W1 scope).
    pub serving_crates: Vec<String>,
    /// Path substrings of the sanctioned durable-write modules (C2
    /// exempts them — they *are* the atomic-write protocol).
    pub durable_modules: Vec<String>,
    /// Function names whose bodies execute on pool workers (C1 roots,
    /// in addition to spawned/`par_*` closures).
    pub root_fns: Vec<String>,
    /// Path prefixes of crates audited as lock *leaves*: their internal
    /// locks never call back out of the crate, so a guard held across a
    /// call into them creates no opaque order edge (L3 exempts them —
    /// the telemetry registry is the canonical case).
    pub lock_leaf_crates: Vec<String>,
    /// Pass-1 worker threads. 0 = one per available core (capped).
    pub jobs: usize,
    /// Directory for the incremental pass-1 summary cache (one file
    /// per (config, path, contents) fingerprint; atomic writes).
    /// `None` disables caching.
    pub summary_cache: Option<PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            timing_modules: vec![
                "crates/bench/".to_string(),
                // The telemetry subsystem is the one library home for
                // wall clocks: span timings are diagnostic-only and
                // never feed loss numerics (enforced by its own docs
                // and the registry's integers-only discipline).
                "crates/obs/".to_string(),
            ],
            exclude_dirs: vec![
                "target".to_string(),
                "vendor".to_string(),
                "fixtures".to_string(),
                ".git".to_string(),
            ],
            serving_crates: vec![
                "crates/core/src/".to_string(),
                "crates/exec/src/".to_string(),
                "crates/tables/src/".to_string(),
                "crates/metrics/src/".to_string(),
                "crates/warehouse/src/".to_string(),
                "crates/analytics/src/".to_string(),
                "crates/mapreduce/src/".to_string(),
                "crates/obs/src/".to_string(),
            ],
            durable_modules: vec!["crates/tables/src/durable.rs".to_string()],
            root_fns: vec![
                "accept".to_string(),
                "accept_shared".to_string(),
                "build_stage1_output_on".to_string(),
            ],
            lock_leaf_crates: vec!["crates/obs/".to_string()],
            jobs: 0,
            summary_cache: None,
        }
    }
}

/// The roots (relative to the workspace root) a full workspace pass
/// scans.
pub const WORKSPACE_SCAN_ROOTS: [&str; 4] = ["crates", "src", "examples", "tests"];

/// Lint one file's source text. Returns the post-suppression findings
/// (including any `SUP` findings about the suppressions themselves).
/// The call-graph pass runs file-locally here, so single-file C1
/// chains still fire; cross-file chains need [`lint_sources`].
pub fn lint_source(path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let report = lint_sources(&[(path.to_string(), source.to_string())], cfg);
    report.findings
}

/// Pass-1 product for one file: everything the cross-file pass and the
/// suppression pass need — deliberately *not* the full [`FileModel`],
/// so a summary-cache hit can skip re-lexing entirely.
struct FileUnit {
    path: String,
    suppressions: Vec<Suppression>,
    raw: Vec<RawFinding>,
    summary: summary::FileSummary,
}

fn build_unit(path: &str, source: &str, cfg: &Config) -> FileUnit {
    let model = FileModel::build(path, lex(source));
    let raw = rules::run_all(&model, cfg);
    let summary = summary::summarize(&model, cfg);
    FileUnit {
        path: model.path.clone(),
        suppressions: model.suppressions,
        raw,
        summary,
    }
}

/// Build one unit, consulting the summary cache when configured. A
/// corrupt or stale cache entry is a miss, never an error.
fn build_unit_cached(path: &str, source: &str, cfg: &Config, stats: &CacheStats) -> FileUnit {
    let Some(dir) = &cfg.summary_cache else {
        return build_unit(path, source, cfg);
    };
    let key = cache::entry_key(path, source, cfg);
    if let Some(unit) = cache::lookup(dir, key) {
        stats
            .hits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        return unit;
    }
    stats
        .misses
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let unit = build_unit(path, source, cfg);
    // Best-effort: a failed cache write degrades to a cold run.
    let _ = cache::write_entry(dir, key, &unit);
    unit
}

/// Hit/miss counters for one run's summary-cache traffic.
#[derive(Debug, Default)]
struct CacheStats {
    hits: std::sync::atomic::AtomicUsize,
    misses: std::sync::atomic::AtomicUsize,
}

/// Pass 1 over all files, fanned out across threads. Work items are
/// claimed from a shared counter; results are stitched back in input
/// order, so the output is bit-identical to a sequential pass.
fn pass1(files: &[(String, String)], cfg: &Config, stats: &CacheStats) -> Vec<FileUnit> {
    let jobs = if cfg.jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        cfg.jobs
    }
    .min(files.len().max(1));
    if jobs <= 1 || files.len() < 4 {
        return files
            .iter()
            .map(|(p, s)| build_unit_cached(p, s, cfg, stats))
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<FileUnit>> = Vec::with_capacity(files.len());
    slots.resize_with(files.len(), || None);
    std::thread::scope(|workers| {
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let next = &next;
            handles.push(workers.spawn(move || {
                let mut mine: Vec<(usize, FileUnit)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some((p, s)) = files.get(i) else { break };
                    mine.push((i, build_unit_cached(p, s, cfg, stats)));
                }
                mine
            }));
        }
        for h in handles {
            // A worker panic means a rule panicked on real input —
            // propagate rather than report a partial scan as clean.
            for (i, unit) in h.join().expect("lint pass-1 worker panicked") {
                slots[i] = Some(unit);
            }
        }
    });
    slots
        .into_iter()
        .map(|u| u.expect("every pass-1 slot filled"))
        .collect()
}

/// Lint a set of already-read sources as one workspace: per-file rules
/// plus the cross-file call-graph passes (C1 reachability and the
/// L1/L2/L3 lock-flow analysis), then per-file suppression processing
/// over the combined findings.
pub fn lint_sources(files: &[(String, String)], cfg: &Config) -> Report {
    let stats = CacheStats::default();
    let units = pass1(files, cfg, &stats);
    let summaries: Vec<summary::FileSummary> = units.iter().map(|u| u.summary.clone()).collect();
    let mut graph_findings = graph::check(&summaries);
    let (lock_findings, lock_graph) = graph::lock_analysis(&summaries, cfg);
    for (path, mut extra) in lock_findings {
        graph_findings.entry(path).or_default().append(&mut extra);
    }

    let mut report = Report {
        findings: Vec::new(),
        files_scanned: units.len(),
        lock_graph,
        cache_hits: stats.hits.load(std::sync::atomic::Ordering::Relaxed),
        cache_misses: stats.misses.load(std::sync::atomic::Ordering::Relaxed),
    };
    for unit in units {
        let mut raw = unit.raw;
        if let Some(mut extra) = graph_findings.remove(&unit.path) {
            raw.append(&mut extra);
        }
        raw.sort_by_key(|a| (a.line, a.rule));
        report
            .findings
            .extend(apply_suppressions(&unit.path, &unit.suppressions, raw));
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Apply the file's suppressions to its raw findings and append the
/// `SUP` hygiene findings.
fn apply_suppressions(
    path: &str,
    suppressions: &[Suppression],
    raw: Vec<RawFinding>,
) -> Vec<Finding> {
    let mut used = vec![false; suppressions.len()];
    let mut findings: Vec<Finding> = Vec::new();

    'finding: for f in raw {
        for (si, sup) in suppressions.iter().enumerate() {
            let names_rule = sup.rules.iter().any(|r| r == f.rule.code());
            if names_rule && sup.has_reason && sup.covers.contains(&f.line) {
                used[si] = true;
                continue 'finding;
            }
        }
        findings.push(Finding {
            rule: f.rule,
            severity: f.rule.severity(),
            path: path.to_string(),
            line: f.line,
            message: f.message,
            trace: f.trace,
            chains: f.chains,
        });
    }

    // Suppression hygiene.
    for (si, sup) in suppressions.iter().enumerate() {
        for r in &sup.rules {
            if RuleId::from_code(r).is_none() {
                findings.push(Finding {
                    rule: RuleId::Sup,
                    severity: Severity::Deny,
                    path: path.to_string(),
                    line: sup.line,
                    message: format!(
                        "suppression names unknown rule `{r}` — known rules: \
                         D1 D2 D3 D4 S1 S2 C1 C2 L1 L2 L3 W1"
                    ),
                    trace: Vec::new(),
                    chains: Vec::new(),
                });
            }
        }
        if !sup.has_reason {
            findings.push(Finding {
                rule: RuleId::Sup,
                severity: Severity::Deny,
                path: path.to_string(),
                line: sup.line,
                message: "suppression carries no reason — write \
                          `// lint: allow(<rule>) — <why this site is sound>`"
                    .to_string(),
                trace: Vec::new(),
                chains: Vec::new(),
            });
        } else if !used[si] && sup.rules.iter().all(|r| RuleId::from_code(r).is_some()) {
            findings.push(Finding {
                rule: RuleId::Sup,
                severity: Severity::Warn,
                path: path.to_string(),
                line: sup.line,
                message: format!(
                    "unused suppression for {}: no finding matched — delete it \
                     or move it next to the site it covers",
                    sup.rules.join(", ")
                ),
                trace: Vec::new(),
                chains: Vec::new(),
            });
        }
    }

    findings.sort_by_key(|a| (a.line, a.rule));
    findings
}

/// A full run's results.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// The workspace lock-order graph the L1/L2/L3 pass derived —
    /// exported by `--emit-lock-graph` as DOT plus the runtime witness
    /// manifest.
    pub lock_graph: graph::LockGraph,
    /// Summary-cache hits this run (0 when caching is disabled).
    pub cache_hits: usize,
    /// Summary-cache misses this run.
    pub cache_misses: usize,
}

impl Report {
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "riskpipe-lint: {} file(s) scanned, {} deny, {} warn\n",
            self.files_scanned,
            self.deny_count(),
            self.warn_count()
        ));
        out
    }

    /// Machine-readable report (stable JSON, hand-rolled — no deps).
    /// Schema v3: findings carry a `trace` array (the C1 call chain)
    /// when non-empty, and a `chains` array-of-arrays (the root→site
    /// chains closing an L1 cycle, one per cycle edge) when non-empty.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 3,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"counts\": {{\"deny\": {}, \"warn\": {}}},\n",
            self.deny_count(),
            self.warn_count()
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\"",
                f.rule,
                f.severity.as_str(),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message)
            ));
            if !f.trace.is_empty() {
                out.push_str(", \"trace\": [");
                for (j, frame) in f.trace.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "{{\"path\": \"{}\", \"line\": {}, \"name\": \"{}\"}}",
                        json_escape(&frame.path),
                        frame.line,
                        json_escape(&frame.name)
                    ));
                }
                out.push(']');
            }
            if !f.chains.is_empty() {
                out.push_str(", \"chains\": [");
                for (ci, chain) in f.chains.iter().enumerate() {
                    if ci > 0 {
                        out.push_str(", ");
                    }
                    out.push('[');
                    for (j, frame) in chain.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!(
                            "{{\"path\": \"{}\", \"line\": {}, \"name\": \"{}\"}}",
                            json_escape(&frame.path),
                            frame.line,
                            json_escape(&frame.name)
                        ));
                    }
                    out.push(']');
                }
                out.push(']');
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Collect the `.rs` files a scan of `paths` (relative to `root`)
/// covers, in sorted order — the pass itself must be deterministic.
pub fn collect_rs_files(
    root: &Path,
    paths: &[PathBuf],
    cfg: &Config,
) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for p in paths {
        let abs = if p.is_absolute() {
            p.clone()
        } else {
            root.join(p)
        };
        if abs.is_file() {
            out.push(abs);
        } else if abs.is_dir() {
            walk_dir(&abs, cfg, &mut out)?;
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk_dir(dir: &Path, cfg: &Config, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if cfg.exclude_dirs.iter().any(|d| d == &name) {
                continue;
            }
            walk_dir(&path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint `paths` (files or directories, relative to `root`) as one
/// workspace: every collected file feeds the shared call graph.
pub fn lint_paths(root: &Path, paths: &[PathBuf], cfg: &Config) -> std::io::Result<Report> {
    let files = collect_rs_files(root, paths, cfg)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(file)?));
    }
    Ok(lint_sources(&sources, cfg))
}

/// Lint the whole workspace under `root` (the standard scan roots).
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let paths: Vec<PathBuf> = WORKSPACE_SCAN_ROOTS.iter().map(PathBuf::from).collect();
    lint_paths(root, &paths, cfg)
}

/// Find the workspace root: walk up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_with_reason_silences_a_finding() {
        let src = "fn f() {\n\
                   // lint: allow(D4) — demo stream, not a simulation input\n\
                   let r = thread_rng();\n}";
        let findings = lint_source("crates/x/src/a.rs", src, &Config::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn suppression_without_reason_is_deny_and_does_not_suppress() {
        let src = "fn f() {\n// lint: allow(D4)\nlet r = thread_rng();\n}";
        let findings = lint_source("crates/x/src/a.rs", src, &Config::default());
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.rule == RuleId::D4));
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::Sup && f.severity == Severity::Deny));
    }

    #[test]
    fn unknown_rule_in_suppression_is_deny() {
        let src = "fn f() {\n// lint: allow(D9) — whatever\nlet x = 1;\n}";
        let findings = lint_source("crates/x/src/a.rs", src, &Config::default());
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::Sup && f.severity == Severity::Deny));
    }

    #[test]
    fn unused_suppression_is_warn() {
        let src = "fn f() {\n// lint: allow(D4) — stale\nlet x = 1;\n}";
        let findings = lint_source("crates/x/src/a.rs", src, &Config::default());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::Sup);
        assert_eq!(findings[0].severity, Severity::Warn);
    }

    #[test]
    fn wrong_rule_suppression_does_not_silence() {
        let src = "fn f() {\n\
                   // lint: allow(D3) — wrong rule named\n\
                   let r = thread_rng();\n}";
        let findings = lint_source("crates/x/src/a.rs", src, &Config::default());
        assert!(findings.iter().any(|f| f.rule == RuleId::D4));
    }

    #[test]
    fn json_escapes_and_counts() {
        let report = Report {
            findings: vec![Finding {
                rule: RuleId::D2,
                severity: Severity::Deny,
                path: "a\\b.rs".into(),
                line: 3,
                message: "say \"hi\"".into(),
                trace: Vec::new(),
                chains: Vec::new(),
            }],
            files_scanned: 1,
            ..Report::default()
        };
        let json = report.render_json();
        assert!(json.contains("\"version\": 3"));
        assert!(json.contains("\"rule\": \"D2\""));
        assert!(json.contains("a\\\\b.rs"));
        assert!(json.contains("say \\\"hi\\\""));
        assert!(json.contains("\"counts\": {\"deny\": 1, \"warn\": 0}"));
        // No trace → no trace key; no chains → no chains key.
        assert!(!json.contains("\"trace\""));
        assert!(!json.contains("\"chains\""));
    }

    #[test]
    fn json_v3_trace_field_and_text_chain() {
        let finding = Finding {
            rule: RuleId::C1,
            severity: Severity::Deny,
            path: "crates/x/src/b.rs".into(),
            line: 9,
            message: "blocking".into(),
            chains: Vec::new(),
            trace: vec![
                TraceFrame {
                    path: "crates/x/src/a.rs".into(),
                    line: 3,
                    name: "task closure in `drive`".into(),
                },
                TraceFrame {
                    path: "crates/x/src/b.rs".into(),
                    line: 9,
                    name: "`m.lock()` (Mutex acquisition)".into(),
                },
            ],
        };
        let text = finding.to_string();
        assert!(text.contains("chain: crates/x/src/a.rs:3 task closure"));
        assert!(text.contains("-> crates/x/src/b.rs:9"));
        let report = Report {
            findings: vec![finding],
            files_scanned: 2,
            ..Report::default()
        };
        let json = report.render_json();
        assert!(json.contains("\"trace\": [{\"path\": \"crates/x/src/a.rs\", \"line\": 3"));
    }

    #[test]
    fn json_v3_chains_field_and_text_rendering() {
        let frame = |p: &str, l: u32, n: &str| TraceFrame {
            path: p.into(),
            line: l,
            name: n.into(),
        };
        let finding = Finding {
            rule: RuleId::L1,
            severity: Severity::Deny,
            path: "crates/x/src/a.rs".into(),
            line: 4,
            message: "lock-order cycle".into(),
            trace: Vec::new(),
            chains: vec![
                vec![
                    frame("crates/x/src/a.rs", 2, "`a`"),
                    frame("crates/x/src/a.rs", 4, "`b.lock()`"),
                ],
                vec![
                    frame("crates/x/src/b.rs", 7, "`c`"),
                    frame("crates/x/src/b.rs", 9, "`a.lock()`"),
                ],
            ],
        };
        let text = finding.to_string();
        assert!(text.contains("chain 1: crates/x/src/a.rs:2"), "{text}");
        assert!(text.contains("chain 2: crates/x/src/b.rs:7"), "{text}");
        let report = Report {
            findings: vec![finding],
            files_scanned: 2,
            ..Report::default()
        };
        let json = report.render_json();
        assert!(
            json.contains("\"chains\": [[{\"path\": \"crates/x/src/a.rs\", \"line\": 2"),
            "{json}"
        );
        assert!(
            json.contains("[{\"path\": \"crates/x/src/b.rs\", \"line\": 7"),
            "{json}"
        );
    }

    #[test]
    fn rule_codes_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::from_code(r.code()), Some(r));
        }
        assert_eq!(RuleId::from_code("d1"), Some(RuleId::D1));
        assert_eq!(RuleId::from_code("Z9"), None);
    }
}
