//! Per-file token analysis shared by the rules.
//!
//! One pass over the token stream produces a [`FileModel`]: named
//! scopes (functions and named closures, with line ranges), inline
//! `#[cfg(test)] mod` regions, the set of identifiers bound to hash
//! containers, and the parsed suppression comments. The rules in
//! [`crate::rules`] then pattern-match against the model instead of
//! re-deriving structure.
//!
//! Everything here is heuristic — a lexer cannot do type inference —
//! and the heuristics deliberately favour *predictability* over
//! cleverness: a binding counts as a hash container iff its type
//! annotation or initialiser says `HashMap`/`HashSet` in this file.
//! What the heuristics miss, review still catches; what they hit is
//! machine-checked on every run.

use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;

/// Is this a test-only path (an integration-test tree)? Inline
/// `#[cfg(test)]` modules are tracked separately per file.
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

/// How an identifier relates to hash containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashKind {
    /// The binding *is* a `HashMap`/`HashSet`.
    Hash,
    /// The binding is a sequence of hash containers
    /// (e.g. `Vec<HashMap<..>>`); iterating it yields `Hash` items.
    SeqOfHash,
}

/// A named lexical scope (fn or named closure) with its line extent.
#[derive(Debug, Clone)]
pub struct Scope {
    pub name: String,
    pub start_line: u32,
    pub end_line: u32,
}

/// One `// lint: calls(NAME, ...) — reason` comment: an explicit call
/// edge from the enclosing function to each named function, declared
/// where the name-linker cannot see the call (hyper-generic method
/// names like `.run(..)` are stoplisted, trait objects erase the
/// callee, macros hide it). Hints only *add* edges — an unjustified
/// hint makes the analysis more conservative, never less — so unlike
/// suppressions they carry no audit rule; the reason text is still
/// required by convention for the reader.
#[derive(Debug, Clone)]
pub struct CallHint {
    /// Callee link names, as written.
    pub callees: Vec<String>,
    /// The line the hint binds to: the comment's own line when code
    /// shares it (trailing style), else the next line carrying code.
    pub line: u32,
}

/// One `// lint: allow(RULE, ...) — reason` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule codes named in the comment, upper-cased.
    pub rules: Vec<String>,
    /// The line of the comment itself.
    pub line: u32,
    /// Lines the suppression covers: its own line plus the next line
    /// that carries code.
    pub covers: Vec<u32>,
    /// Whether a non-empty reason followed the rule list.
    pub has_reason: bool,
}

/// The analysed file: tokens plus derived structure.
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub toks: Vec<Tok>,
    /// Indices into `toks` of non-comment tokens, in order.
    pub code: Vec<usize>,
    pub scopes: Vec<Scope>,
    /// Line ranges of inline `#[cfg(test)] mod` bodies.
    pub test_ranges: Vec<(u32, u32)>,
    /// Identifier → hash-container kind (file-global; good enough in
    /// practice, and a false positive is one suppression away).
    pub hash_idents: BTreeMap<String, HashKind>,
    pub suppressions: Vec<Suppression>,
    /// Explicit call-edge declarations (see [`CallHint`]).
    pub call_hints: Vec<CallHint>,
}

impl FileModel {
    pub fn build(path: &str, toks: Vec<Tok>) -> Self {
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokKind::Comment)
            .map(|(i, _)| i)
            .collect();
        let mut model = FileModel {
            path: path.to_string(),
            scopes: Vec::new(),
            test_ranges: Vec::new(),
            hash_idents: BTreeMap::new(),
            suppressions: Vec::new(),
            call_hints: Vec::new(),
            toks,
            code,
        };
        model.find_scopes_and_test_ranges();
        model.find_hash_bindings();
        model.find_suppressions();
        model
    }

    /// The file stem, lower-cased (`crates/warehouse/src/rollup.rs` →
    /// `rollup`).
    pub fn stem(&self) -> String {
        self.path
            .rsplit('/')
            .next()
            .unwrap_or(&self.path)
            .trim_end_matches(".rs")
            .to_ascii_lowercase()
    }

    /// Code token at code-position `ci` (not a raw token index).
    pub fn ct(&self, ci: usize) -> Option<&Tok> {
        self.code.get(ci).map(|&i| &self.toks[i])
    }

    /// Is `line` inside an inline `#[cfg(test)] mod` body?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// Names of every scope containing `line`, innermost last.
    pub fn scopes_at(&self, line: u32) -> Vec<&str> {
        self.scopes
            .iter()
            .filter(|s| line >= s.start_line && line <= s.end_line)
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Scopes: one pass tracking brace depth. A `fn NAME` or
    /// `let NAME = [move] |...|` seen at depth *d* names the next block
    /// opened at depth *d*. `#[cfg(test)]` followed by `mod` marks the
    /// next block as a test range.
    fn find_scopes_and_test_ranges(&mut self) {
        struct Frame {
            name: Option<String>,
            is_test: bool,
            start_line: u32,
        }
        let mut scopes: Vec<Scope> = Vec::new();
        let mut test_ranges: Vec<(u32, u32)> = Vec::new();
        let mut stack: Vec<Frame> = Vec::new();
        let mut pending_name: Option<String> = None;
        let mut pending_test = false;
        let mut cfg_test_attr = false;

        let n = self.code.len();
        let mut ci = 0usize;
        while ci < n {
            let t = self.ct(ci).expect("in range").clone();
            match (t.kind, t.text.as_str()) {
                // `#[cfg(test)]` — look at the attribute tokens. Also
                // matches the conjunction form `#[cfg(all(test, ...))]`
                // used by feature-gated test modules.
                (TokKind::Punct, "#")
                    if {
                        let attr = self.code_slice_text(ci + 1, ci + 9);
                        attr.starts_with("[cfg(test)")
                            || attr.starts_with("[cfg(all(test,")
                            || attr.starts_with("[cfg(all(test)")
                    } =>
                {
                    cfg_test_attr = true;
                }
                (TokKind::Ident, "mod") if cfg_test_attr => {
                    pending_test = true;
                    cfg_test_attr = false;
                }
                (TokKind::Ident, "fn") => {
                    if let Some(name) = self.ct(ci + 1) {
                        if name.kind == TokKind::Ident {
                            pending_name = Some(name.text.to_ascii_lowercase());
                        }
                    }
                }
                (TokKind::Ident, "let") => {
                    // `let [mut] NAME = [move] |` names a closure.
                    let mut j = ci + 1;
                    if self.ct(j).is_some_and(|t| t.is_ident("mut")) {
                        j += 1;
                    }
                    let name = match self.ct(j) {
                        Some(t) if t.kind == TokKind::Ident => t.text.to_ascii_lowercase(),
                        _ => {
                            ci += 1;
                            continue;
                        }
                    };
                    if self.ct(j + 1).is_some_and(|t| t.is_punct("=")) {
                        let mut k = j + 2;
                        if self.ct(k).is_some_and(|t| t.is_ident("move")) {
                            k += 1;
                        }
                        if self.ct(k).is_some_and(|t| t.is_punct("|")) {
                            pending_name = Some(name);
                        }
                    }
                }
                (TokKind::Punct, ";") => {
                    // A signature without a body (trait method) or a
                    // closure that never opened a block.
                    pending_name = None;
                    pending_test = false;
                }
                (TokKind::Punct, "{") => {
                    stack.push(Frame {
                        name: pending_name.take(),
                        is_test: pending_test,
                        start_line: t.line,
                    });
                    pending_test = false;
                }
                (TokKind::Punct, "}") => {
                    if let Some(frame) = stack.pop() {
                        if let Some(name) = frame.name {
                            scopes.push(Scope {
                                name,
                                start_line: frame.start_line,
                                end_line: t.line,
                            });
                        }
                        if frame.is_test {
                            test_ranges.push((frame.start_line, t.line));
                        }
                    }
                }
                _ => {}
            }
            ci += 1;
        }
        // Pop order is innermost-first; present outermost-first.
        scopes.sort_by_key(|s| (s.start_line, std::cmp::Reverse(s.end_line)));
        self.scopes = scopes;
        self.test_ranges = test_ranges;
    }

    /// Concatenated text of code tokens `[from, to)` — for cheap
    /// attribute matching.
    fn code_slice_text(&self, from: usize, to: usize) -> String {
        (from..to)
            .filter_map(|ci| self.ct(ci))
            .map(|t| t.text.as_str())
            .collect()
    }

    /// Register identifiers bound to hash containers:
    /// * `NAME : <type containing HashMap/HashSet>` — lets, fn params,
    ///   struct fields alike;
    /// * `let [mut] NAME = [std::collections::]HashMap::...` —
    ///   inferred lets;
    /// * `for NAME in SEQ` where `SEQ` is a registered sequence of hash
    ///   containers — the loop variable is itself a hash container.
    fn find_hash_bindings(&mut self) {
        let mut idents: BTreeMap<String, HashKind> = BTreeMap::new();
        let n = self.code.len();
        for ci in 0..n {
            let t = self.ct(ci).expect("in range").clone();
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "let" => {
                    let mut j = ci + 1;
                    if self.ct(j).is_some_and(|t| t.is_ident("mut")) {
                        j += 1;
                    }
                    let Some(name) = self.ct(j).filter(|t| t.kind == TokKind::Ident) else {
                        continue;
                    };
                    let name = name.text.clone();
                    if self.ct(j + 1).is_some_and(|t| t.is_punct("=")) {
                        // `let x = HashMap::new()` (with or without a
                        // `std::collections::` path prefix).
                        let init = self.code_slice_text(j + 2, j + 8);
                        if init.starts_with("HashMap::")
                            || init.starts_with("HashSet::")
                            || init.starts_with("std::collections::HashMap")
                            || init.starts_with("std::collections::HashSet")
                        {
                            idents.insert(name, HashKind::Hash);
                        }
                    }
                    // `let x: Type = ...` falls through to the generic
                    // `NAME :` case below on a later iteration.
                }
                "for" => {
                    // `for NAME in SEQ` with SEQ a sequence-of-hash.
                    let Some(name) = self.ct(ci + 1).filter(|t| t.kind == TokKind::Ident) else {
                        continue;
                    };
                    let name = name.text.clone();
                    if !self.ct(ci + 2).is_some_and(|t| t.is_ident("in")) {
                        continue;
                    }
                    if let Some(seq) = self.ct(ci + 3) {
                        if seq.kind == TokKind::Ident
                            && idents.get(&seq.text) == Some(&HashKind::SeqOfHash)
                        {
                            idents.insert(name, HashKind::Hash);
                        }
                    }
                }
                _ => {
                    // `NAME : <type>` — scan the type region.
                    if !self.ct(ci + 1).is_some_and(|t| t.is_punct(":")) {
                        continue;
                    }
                    if let Some(kind) = self.hash_type_after(ci + 2) {
                        idents.insert(t.text, kind);
                    }
                }
            }
        }
        self.hash_idents = idents;
    }

    /// Inspect a type region starting at code index `start`: collect
    /// tokens until a depth-0 terminator and decide whether the type
    /// contains a hash container, and if so whether a sequence wraps it.
    fn hash_type_after(&self, start: usize) -> Option<HashKind> {
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut seq_seen = false;
        for ci in start..(start + 48).min(self.code.len()) {
            let t = self.ct(ci)?;
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "<") => angle += 1,
                (TokKind::Punct, ">") => {
                    angle -= 1;
                    if angle < 0 {
                        return None;
                    }
                }
                (TokKind::Punct, "(") | (TokKind::Punct, "[") => paren += 1,
                (TokKind::Punct, ")") | (TokKind::Punct, "]") => {
                    if paren == 0 {
                        return None; // end of the param list
                    }
                    paren -= 1;
                }
                (TokKind::Punct, ",") if angle == 0 && paren == 0 => return None,
                (TokKind::Punct, ";") | (TokKind::Punct, "=") | (TokKind::Punct, "{")
                    if angle == 0 && paren == 0 =>
                {
                    return None
                }
                (TokKind::Ident, "Vec") | (TokKind::Ident, "VecDeque") => seq_seen = true,
                (TokKind::Ident, "HashMap") | (TokKind::Ident, "HashSet") => {
                    return Some(if seq_seen {
                        HashKind::SeqOfHash
                    } else {
                        HashKind::Hash
                    });
                }
                _ => {}
            }
        }
        None
    }

    /// Parse `lint: allow(...)` and `lint: calls(...)` comments.
    /// Grammar (inside any `//` or `/* */` comment):
    ///
    /// ```text
    /// lint: allow(D1)            — reason text          (em dash)
    /// lint: allow(D3, S1) - reason text                 (hyphen)
    /// lint: calls(run_job) — reason text                (call edge)
    /// ```
    ///
    /// The suppression covers its own line and the next line carrying
    /// code, so it works both trailing (`code // lint: allow(..)`) and
    /// on the line above the finding. A `calls` hint binds the same
    /// way: to its own line when code shares it, else to the next line
    /// carrying code.
    fn find_suppressions(&mut self) {
        let mut found: Vec<Suppression> = Vec::new();
        let mut hints: Vec<CallHint> = Vec::new();
        for (i, t) in self.toks.iter().enumerate() {
            if t.kind != TokKind::Comment {
                continue;
            }
            // Doc comments never carry suppressions — they are prose
            // (and often *quote* the suppression syntax, as the crate
            // docs of riskpipe-lint itself do).
            if t.text.starts_with("///")
                || t.text.starts_with("//!")
                || t.text.starts_with("/**")
                || t.text.starts_with("/*!")
            {
                continue;
            }
            let Some(at) = t.text.find("lint:") else {
                continue;
            };
            let rest = t.text[at + "lint:".len()..].trim_start();
            let (is_hint, rest) = match rest.strip_prefix("allow") {
                Some(r) => (false, r),
                None => match rest.strip_prefix("calls") {
                    Some(r) => (true, r),
                    None => continue,
                },
            };
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix('(') else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            let names: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let rules: Vec<String> = names.iter().map(|r| r.to_ascii_uppercase()).collect();
            let tail = rest[close + 1..].trim_start();
            let has_reason = ["—", "–", "-"].iter().any(|dash| {
                tail.strip_prefix(dash)
                    .is_some_and(|reason| !reason.trim().is_empty())
            });
            // The next line with code after the comment line —
            // skipping attribute lines (`#[...]`, `#![...]`) so a
            // suppression written above a decorated item binds to the
            // item itself, not to the attribute that happens to sit
            // between them. (Doc comments are already skipped: they
            // lex as comments.)
            let code_after: Vec<&Tok> = self.toks[i + 1..]
                .iter()
                .filter(|t2| t2.kind != TokKind::Comment && t2.line > t.line)
                .collect();
            let mut next_code_line = None;
            let mut k = 0usize;
            while k < code_after.len() {
                let t2 = code_after[k];
                if t2.kind == TokKind::Punct && t2.text == "#" {
                    let mut j = k + 1;
                    if code_after
                        .get(j)
                        .is_some_and(|u| u.kind == TokKind::Punct && u.text == "!")
                    {
                        j += 1;
                    }
                    if code_after
                        .get(j)
                        .is_some_and(|u| u.kind == TokKind::Punct && u.text == "[")
                    {
                        // Skip the balanced `[...]` attribute body.
                        let mut depth = 0i32;
                        while j < code_after.len() {
                            let u = code_after[j];
                            if u.kind == TokKind::Punct {
                                match u.text.as_str() {
                                    "[" => depth += 1,
                                    "]" => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                            }
                            j += 1;
                        }
                        k = j + 1;
                        continue;
                    }
                }
                next_code_line = Some(t2.line);
                break;
            }
            if is_hint {
                // Trailing style binds to the comment's own line when
                // code shares it; otherwise to the next code line.
                let own_line_has_code = self.code.iter().any(|&j| self.toks[j].line == t.line);
                let line = if own_line_has_code {
                    t.line
                } else {
                    next_code_line.unwrap_or(t.line)
                };
                hints.push(CallHint {
                    callees: names,
                    line,
                });
                continue;
            }
            let mut covers = vec![t.line];
            covers.extend(next_code_line);
            found.push(Suppression {
                rules,
                line: t.line,
                covers,
                has_reason,
            });
        }
        self.suppressions = found;
        hints.sort_by_key(|h| h.line);
        self.call_hints = hints;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        FileModel::build("crates/x/src/demo.rs", lex(src))
    }

    #[test]
    fn scopes_cover_fn_bodies() {
        let m = model("fn outer() {\n    fn inner() {\n        1;\n    }\n}\n");
        assert_eq!(m.scopes_at(3), vec!["outer", "inner"]);
        assert_eq!(m.scopes_at(1), vec!["outer"]);
    }

    #[test]
    fn named_closures_become_scopes() {
        let m = model("fn f() {\n    let fold_chunk = |i: usize| {\n        i + 1\n    };\n}\n");
        assert!(m.scopes_at(3).contains(&"fold_chunk"));
    }

    #[test]
    fn cfg_test_mod_ranges() {
        let m = model("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\n");
        assert!(!m.in_test_code(1));
        assert!(m.in_test_code(4));
    }

    #[test]
    fn hash_bindings_from_annotations_and_initialisers() {
        let m = model(
            "fn f(acc: &mut HashMap<u64, Cell>) {\n\
             let inferred = HashMap::new();\n\
             let seq: Vec<HashMap<u32, f64>> = Vec::new();\n\
             for part in seq {\n    part;\n}\n\
             let plain: Vec<u32> = Vec::new();\n}",
        );
        assert_eq!(m.hash_idents.get("acc"), Some(&HashKind::Hash));
        assert_eq!(m.hash_idents.get("inferred"), Some(&HashKind::Hash));
        assert_eq!(m.hash_idents.get("seq"), Some(&HashKind::SeqOfHash));
        assert_eq!(m.hash_idents.get("part"), Some(&HashKind::Hash));
        assert_eq!(m.hash_idents.get("plain"), None);
    }

    #[test]
    fn suppression_parsing_with_and_without_reason() {
        let m = model(
            "fn f() {\n\
             // lint: allow(D1) — keys merged once per partial\n\
             let a = 1;\n\
             // lint: allow(D3, S1) -\n\
             let b = 2;\n}",
        );
        assert_eq!(m.suppressions.len(), 2);
        let s0 = &m.suppressions[0];
        assert_eq!(s0.rules, vec!["D1"]);
        assert!(s0.has_reason);
        assert!(s0.covers.contains(&3));
        let s1 = &m.suppressions[1];
        assert_eq!(s1.rules, vec!["D3", "S1"]);
        assert!(!s1.has_reason);
    }

    #[test]
    fn suppression_above_attributes_binds_to_the_item() {
        // The comment sits above two stacked attributes; it must cover
        // the decorated item line (4), not the attribute lines.
        let m = model(
            "// lint: allow(D4) — demo stream, not a simulation input\n\
             #[cfg(feature = \"demo\")]\n\
             #[inline]\n\
             fn f() { let r = thread_rng(); }\n",
        );
        assert_eq!(m.suppressions.len(), 1);
        assert!(
            m.suppressions[0].covers.contains(&4),
            "{:?}",
            m.suppressions[0]
        );
        assert!(!m.suppressions[0].covers.contains(&2));
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let m = model("fn f() {\n    let a = 1; // lint: allow(D4) — seeded upstream\n}\n");
        assert!(m.suppressions[0].covers.contains(&2));
    }
}
