//! Pass 1 of the workspace analysis: one [`FileSummary`] per file.
//!
//! The summary is everything the cross-file pass needs and nothing
//! more: function/method definitions, call sites by name, `use`-alias
//! pairs, blocking-primitive sites, and — crucially — closure bodies
//! attached to the expression that spawns them. A closure handed to
//! `Scope::spawn` or one of the `par_*` helpers *is* a pipeline task
//! body, so it becomes its own graph node and a reachability root; a
//! closure handed to `pool.scope(..)` runs inline on the calling
//! thread and stays part of the enclosing function.
//!
//! Like everything in this crate the extraction is heuristic (no type
//! inference), tuned so the graph *over*-approximates reachability:
//! a false edge costs one audited suppression, a missed edge costs an
//! invariant.

use crate::analysis::{is_test_path, FileModel};
use crate::lexer::TokKind;
use crate::Config;
use std::collections::{BTreeMap, BTreeSet};

/// Why a function node is a reachability root (code that executes on
/// pool workers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RootKind {
    /// Closure handed to `Scope::spawn` — a queued pipeline task body.
    SpawnClosure,
    /// Closure handed to a `par_*` data-parallel helper (the helper
    /// spawns it once per chunk).
    ParClosure(String),
    /// A function whose name marks it as worker-executed: sink
    /// delivery (`accept`/`accept_shared`) and stage-1 builds.
    RootFn,
}

impl RootKind {
    pub fn describe(&self) -> String {
        match self {
            RootKind::SpawnClosure => "spawned task closure".to_string(),
            RootKind::ParClosure(h) => format!("`{h}` task closure"),
            RootKind::RootFn => "worker-executed fn".to_string(),
        }
    }
}

/// One call site inside a function body (name-based; resolution
/// happens in the graph pass).
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub line: u32,
}

/// One blocking-primitive site inside a function body.
#[derive(Debug, Clone)]
pub struct BlockSite {
    pub line: u32,
    /// Human description, e.g. "`sleep_lock.lock()` (Mutex acquisition)".
    pub what: String,
}

/// A function, method, or pool-task closure with its calls and
/// blocking sites.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Link name — what call sites resolve against. Empty for
    /// closures: nothing calls them by name.
    pub name: String,
    /// Display name for traces, e.g. "`run_stream`" or
    /// "task closure in `run_stream`".
    pub display: String,
    pub line: u32,
    pub is_test: bool,
    pub root: Option<RootKind>,
    pub calls: Vec<CallSite>,
    pub blocking: Vec<BlockSite>,
}

/// Pass-1 product for one file.
#[derive(Debug, Clone, Default)]
pub struct FileSummary {
    pub path: String,
    pub fns: Vec<FnNode>,
    /// `use path::orig as alias;` → alias → orig (last segment only —
    /// the graph links by bare name).
    pub aliases: BTreeMap<String, String>,
}

/// Helpers whose closure argument executes on pool workers.
const PAR_HELPERS: &[&str] = &["par_for", "par_map_collect", "par_chunks_mut", "par_reduce"];

/// Condvar wait methods (all parking).
const WAIT_METHODS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_while",
    "wait_timeout",
    "wait_timeout_while",
];

/// Blocking channel receives (`try_recv` is non-blocking and exempt).
const RECV_METHODS: &[&str] = &["recv", "recv_timeout", "recv_deadline"];

/// Keywords and control-flow idents that look like calls but are not.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "let", "in", "as", "move", "mut", "ref",
    "pub", "use", "mod", "impl", "struct", "enum", "trait", "type", "where", "unsafe", "const",
    "static", "crate", "super", "else", "break", "continue", "dyn", "box", "await", "async",
    "yield", "true", "false", "Some", "None", "Ok", "Err",
];

/// Extract the pass-1 summary from an analysed file.
pub fn summarize(model: &FileModel, cfg: &Config) -> FileSummary {
    let file_test = is_test_path(&model.path);
    let rwlocks = rwlock_idents(model);
    let mut fns: Vec<FnNode> = Vec::new();

    enum Close {
        Brace,
        Paren,
    }
    struct Frame {
        close: Close,
        node: Option<usize>,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending_fn: Option<(String, u32)> = None;
    let mut square_depth = 0i32;

    let current_node =
        |stack: &[Frame]| -> Option<usize> { stack.iter().rev().find_map(|f| f.node) };

    let n = model.code.len();
    for ci in 0..n {
        let t = model.ct(ci).expect("in range").clone();
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "fn") => {
                if let Some(name) = model.ct(ci + 1).filter(|u| u.kind == TokKind::Ident) {
                    pending_fn = Some((name.text.clone(), name.line));
                }
            }
            (TokKind::Punct, "[") => square_depth += 1,
            (TokKind::Punct, "]") => square_depth -= 1,
            (TokKind::Punct, ";")
                if square_depth == 0
                    && stack.last().is_none_or(|f| matches!(f.close, Close::Brace)) =>
            {
                // A trait-method signature without a body.
                pending_fn = None;
            }
            (TokKind::Punct, "{") => {
                let node = pending_fn.take().map(|(name, line)| {
                    let is_test = file_test || model.in_test_code(line);
                    let root = (!is_test && cfg.root_fns.iter().any(|r| r == &name))
                        .then_some(RootKind::RootFn);
                    fns.push(FnNode {
                        display: format!("`{name}`"),
                        name,
                        line,
                        is_test,
                        root,
                        calls: Vec::new(),
                        blocking: Vec::new(),
                    });
                    fns.len() - 1
                });
                stack.push(Frame {
                    close: Close::Brace,
                    node,
                });
            }
            (TokKind::Punct, "}") => {
                while let Some(f) = stack.pop() {
                    if matches!(f.close, Close::Brace) {
                        break;
                    }
                }
            }
            (TokKind::Punct, "(") => {
                // Was this paren opened by a call? `NAME (` with NAME
                // not a keyword and not a definition (`fn NAME (`).
                let mut node = None;
                let prev_is_def = ci >= 2 && model.ct(ci - 2).is_some_and(|u| u.is_ident("fn"));
                if let Some(prev) = ci.checked_sub(1).and_then(|j| model.ct(j)) {
                    if prev.kind == TokKind::Ident
                        && !prev_is_def
                        && !NON_CALL_IDENTS.contains(&prev.text.as_str())
                    {
                        let callee = prev.text.clone();
                        let is_method =
                            ci >= 2 && model.ct(ci - 2).is_some_and(|u| u.is_punct("."));
                        if let Some(ni) = current_node(&stack) {
                            fns[ni].calls.push(CallSite {
                                name: callee.clone(),
                                line: prev.line,
                            });
                        }
                        // Does this call's argument run on pool workers?
                        let in_test = file_test || model.in_test_code(prev.line);
                        let root = if in_test {
                            None
                        } else if is_method
                            && callee == "spawn"
                            && !stmt_back_has(model, ci - 1, &["thread", "Builder"])
                        {
                            Some(RootKind::SpawnClosure)
                        } else if PAR_HELPERS.contains(&callee.as_str()) {
                            Some(RootKind::ParClosure(callee.clone()))
                        } else {
                            None
                        };
                        if let Some(root) = root {
                            let host = current_node(&stack)
                                .map(|ni| fns[ni].display.clone())
                                .unwrap_or_else(|| "top level".to_string());
                            fns.push(FnNode {
                                name: String::new(),
                                display: format!("task closure in {host}"),
                                line: prev.line,
                                is_test: false,
                                root: Some(root),
                                calls: Vec::new(),
                                blocking: Vec::new(),
                            });
                            node = Some(fns.len() - 1);
                        }
                    }
                }
                stack.push(Frame {
                    close: Close::Paren,
                    node,
                });
            }
            (TokKind::Punct, ")") => {
                while let Some(f) = stack.pop() {
                    if matches!(f.close, Close::Paren) {
                        break;
                    }
                }
            }
            (TokKind::Ident, _) => {
                if file_test || model.in_test_code(t.line) {
                    continue;
                }
                let Some(ni) = current_node(&stack) else {
                    continue;
                };
                if let Some(site) = blocking_site(model, ci, &rwlocks) {
                    fns[ni].blocking.push(site);
                }
            }
            _ => {}
        }
    }

    FileSummary {
        path: model.path.clone(),
        fns,
        aliases: use_aliases(model),
    }
}

/// Is the code-token at `ci` a blocking-primitive site?
fn blocking_site(model: &FileModel, ci: usize, rwlocks: &BTreeSet<String>) -> Option<BlockSite> {
    let t = model.ct(ci)?;
    let prev_dot = ci >= 1 && model.ct(ci - 1).is_some_and(|u| u.is_punct("."));
    let argless = model.ct(ci + 1).is_some_and(|u| u.is_punct("("))
        && model.ct(ci + 2).is_some_and(|u| u.is_punct(")"));
    let called = model.ct(ci + 1).is_some_and(|u| u.is_punct("("));
    let receiver = || -> String {
        match ci.checked_sub(2).and_then(|j| model.ct(j)) {
            Some(u) if u.kind == TokKind::Ident => u.text.clone(),
            _ => "_".to_string(),
        }
    };
    let what = match t.text.as_str() {
        "lock" if prev_dot && argless => {
            format!("`{}.lock()` (Mutex acquisition)", receiver())
        }
        "read" | "write" if prev_dot && argless && rwlocks.contains(&receiver()) => {
            format!("`{}.{}()` (RwLock acquisition)", receiver(), t.text)
        }
        m if prev_dot && called && WAIT_METHODS.contains(&m) => {
            format!("`.{m}(..)` (condvar wait)")
        }
        m if prev_dot && called && RECV_METHODS.contains(&m) => {
            format!("`.{m}()` (blocking channel receive)")
        }
        "join" if prev_dot && argless => {
            format!("`{}.join()` (thread join)", receiver())
        }
        "park"
            if ci >= 2
                && model.ct(ci - 1).is_some_and(|u| u.is_punct("::"))
                && model.ct(ci - 2).is_some_and(|u| u.is_ident("thread")) =>
        {
            "`thread::park()`".to_string()
        }
        "scope" if prev_dot && called => "`.scope(..)` (nested pool scope)".to_string(),
        _ => return None,
    };
    Some(BlockSite { line: t.line, what })
}

/// Does the statement containing code-token `ci` mention any of
/// `idents` before `ci`? Used to tell an OS-thread
/// `Builder::new()..spawn(..)` from a pool `scope.spawn(..)`.
fn stmt_back_has(model: &FileModel, ci: usize, idents: &[&str]) -> bool {
    let mut depth = 0i32;
    for j in (0..ci).rev() {
        let Some(t) = model.ct(j) else { break };
        if t.kind == TokKind::Ident && idents.contains(&t.text.as_str()) {
            return true;
        }
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    return false; // start of the enclosing argument list
                }
                depth -= 1;
            }
            "{" | "}" | ";" if depth == 0 => return false,
            _ => {}
        }
    }
    false
}

/// Identifiers bound to `RwLock` values in this file (annotation or
/// initialiser mentions `RwLock` in the binding statement).
fn rwlock_idents(model: &FileModel) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let n = model.code.len();
    for ci in 0..n {
        let Some(t) = model.ct(ci) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = match t.text.as_str() {
            "let" => {
                let mut j = ci + 1;
                if model.ct(j).is_some_and(|u| u.is_ident("mut")) {
                    j += 1;
                }
                match model.ct(j) {
                    Some(u) if u.kind == TokKind::Ident => u.text.clone(),
                    _ => continue,
                }
            }
            _ => {
                // `NAME : <type>` — fields and params.
                if !model.ct(ci + 1).is_some_and(|u| u.is_punct(":")) {
                    continue;
                }
                t.text.clone()
            }
        };
        // Scan the rest of the binding region for `RwLock`.
        for j in ci + 1..(ci + 32).min(n) {
            let Some(u) = model.ct(j) else { break };
            if u.kind == TokKind::Punct && (u.text == ";" || u.text == "{") {
                break;
            }
            if u.is_ident("RwLock") {
                out.insert(name);
                break;
            }
        }
    }
    out
}

/// Collect `A as B` pairs from `use` statements: alias → original.
fn use_aliases(model: &FileModel) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let n = model.code.len();
    let mut ci = 0usize;
    while ci < n {
        let Some(t) = model.ct(ci) else { break };
        if !t.is_ident("use") {
            ci += 1;
            continue;
        }
        // Scan to the terminating `;`, recording `IDENT as IDENT`.
        let mut j = ci + 1;
        while j < n {
            let Some(u) = model.ct(j) else { break };
            if u.is_punct(";") {
                break;
            }
            if u.is_ident("as") {
                let orig = model.ct(j - 1).filter(|p| p.kind == TokKind::Ident);
                let alias = model.ct(j + 1).filter(|p| p.kind == TokKind::Ident);
                if let (Some(orig), Some(alias)) = (orig, alias) {
                    out.insert(alias.text.clone(), orig.text.clone());
                }
            }
            j += 1;
        }
        ci = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FileModel;
    use crate::lexer::lex;

    fn summary(path: &str, src: &str) -> FileSummary {
        let model = FileModel::build(path, lex(src));
        summarize(&model, &Config::default())
    }

    #[test]
    fn spawn_closure_becomes_a_root_node() {
        let s = summary(
            "crates/x/src/a.rs",
            "fn drive(pool: &ThreadPool) {\n\
             pool.scope(|s| {\n    s.spawn(move || { work(); });\n});\n}",
        );
        let root = s
            .fns
            .iter()
            .find(|f| f.root == Some(RootKind::SpawnClosure))
            .expect("root node");
        assert!(root.display.contains("drive"));
        assert!(root.calls.iter().any(|c| c.name == "work"));
        // `drive` itself is not a root; its nested `.scope(` is a
        // blocking site attributed to `drive`.
        let drive = s.fns.iter().find(|f| f.name == "drive").unwrap();
        assert!(drive.root.is_none());
        assert!(drive.blocking.iter().any(|b| b.what.contains("scope")));
    }

    #[test]
    fn os_thread_spawn_is_not_a_root() {
        let s = summary(
            "crates/x/src/a.rs",
            "fn start() {\n\
             let h = std::thread::Builder::new().name(n).spawn(move || loop_fn()).unwrap();\n}",
        );
        assert!(s.fns.iter().all(|f| f.root.is_none()));
    }

    #[test]
    fn par_helper_closures_are_roots() {
        let s = summary(
            "crates/x/src/a.rs",
            "fn launch(pool: &ThreadPool, xs: &mut [u64]) {\n\
             par_for(pool, xs, 1, |chunk| { handle(chunk); });\n}",
        );
        let root = s
            .fns
            .iter()
            .find(|f| matches!(f.root, Some(RootKind::ParClosure(_))))
            .expect("par root");
        assert!(root.calls.iter().any(|c| c.name == "handle"));
    }

    #[test]
    fn named_root_fns_and_blocking_sites() {
        let s = summary(
            "crates/x/src/sink.rs",
            "fn accept(&mut self, r: Report) {\n    self.state.lock();\n}\n\
             fn other(rx: &Receiver<u32>) {\n    let v = rx.recv();\n}",
        );
        let accept = s.fns.iter().find(|f| f.name == "accept").unwrap();
        assert_eq!(accept.root, Some(RootKind::RootFn));
        assert!(accept.blocking.iter().any(|b| b.what.contains("lock")));
        let other = s.fns.iter().find(|f| f.name == "other").unwrap();
        assert!(other.root.is_none());
        assert!(other.blocking.iter().any(|b| b.what.contains("recv")));
    }

    #[test]
    fn argful_join_is_path_join_not_blocking() {
        let s = summary(
            "crates/x/src/a.rs",
            "fn f(dir: &Path, h: JoinHandle<()>) {\n\
             let p = dir.join(\"x.bin\");\n    h.join();\n}",
        );
        let f = &s.fns[0];
        assert_eq!(f.blocking.len(), 1);
        assert!(f.blocking[0].what.contains("h.join()"));
    }

    #[test]
    fn rwlock_read_write_only_on_registered_bindings() {
        let s = summary(
            "crates/x/src/a.rs",
            "fn f(gate: &RwLock<u32>, file: &mut File) {\n\
             let g = gate.read();\n    file.read();\n}",
        );
        let f = &s.fns[0];
        assert_eq!(f.blocking.len(), 1);
        assert!(f.blocking[0].what.contains("gate.read()"));
    }

    #[test]
    fn use_alias_pairs_are_collected() {
        let s = summary(
            "crates/x/src/a.rs",
            "use riskpipe_exec::par::{par_for as pfor, par_reduce};\nfn f() {}\n",
        );
        assert_eq!(s.aliases.get("pfor").map(String::as_str), Some("par_for"));
    }

    #[test]
    fn test_code_has_no_roots_or_blocking_sites() {
        let s = summary(
            "crates/x/src/a.rs",
            "#[cfg(test)]\nmod tests {\n\
             fn t(pool: &ThreadPool, m: &Mutex<u32>) {\n\
             pool.scope(|s| { s.spawn(move || { m.lock(); }); });\n}\n}",
        );
        assert!(s.fns.iter().all(|f| f.root.is_none()));
        assert!(s.fns.iter().all(|f| f.blocking.is_empty()));
    }
}
