//! Pass 1 of the workspace analysis: one [`FileSummary`] per file.
//!
//! The summary is everything the cross-file pass needs and nothing
//! more: function/method definitions, call sites by name, `use`-alias
//! pairs, blocking-primitive sites, and — crucially — closure bodies
//! attached to the expression that spawns them. A closure handed to
//! `Scope::spawn` or one of the `par_*` helpers *is* a pipeline task
//! body, so it becomes its own graph node and a reachability root; a
//! closure handed to `pool.scope(..)` runs inline on the calling
//! thread and stays part of the enclosing function.
//!
//! Like everything in this crate the extraction is heuristic (no type
//! inference), tuned so the graph *over*-approximates reachability:
//! a false edge costs one audited suppression, a missed edge costs an
//! invariant.

use crate::analysis::{is_test_path, FileModel};
use crate::lexer::TokKind;
use crate::Config;
use std::collections::{BTreeMap, BTreeSet};

/// Why a function node is a reachability root (code that executes on
/// pool workers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RootKind {
    /// Closure handed to `Scope::spawn` — a queued pipeline task body.
    SpawnClosure,
    /// Closure handed to a `par_*` data-parallel helper (the helper
    /// spawns it once per chunk).
    ParClosure(String),
    /// A function whose name marks it as worker-executed: sink
    /// delivery (`accept`/`accept_shared`) and stage-1 builds.
    RootFn,
}

impl RootKind {
    pub fn describe(&self) -> String {
        match self {
            RootKind::SpawnClosure => "spawned task closure".to_string(),
            RootKind::ParClosure(h) => format!("`{h}` task closure"),
            RootKind::RootFn => "worker-executed fn".to_string(),
        }
    }
}

/// One call site inside a function body (name-based; resolution
/// happens in the graph pass).
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub line: u32,
}

/// What kind of blocking primitive a [`BlockSite`] is. The lock-flow
/// pass cares about the distinction: `Mutex`/`RwLock` acquisitions are
/// lock-order *edges* (rule L1's domain), everything else is a
/// *boundary* a guard must not be held across (rule L2's domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    Mutex,
    RwLock,
    Wait,
    Recv,
    Join,
    Park,
    Scope,
    /// A `Scope::spawn`/`par_*` task-spawn site — never a C1 blocking
    /// site itself, but an L2 boundary when a guard is held across it.
    Spawn,
}

/// One blocking-primitive site inside a function body.
#[derive(Debug, Clone)]
pub struct BlockSite {
    pub line: u32,
    pub kind: BlockKind,
    /// Human description, e.g. "`sleep_lock.lock()` (Mutex acquisition)".
    pub what: String,
}

/// One lock acquisition, identified by the *binding* it locks (the
/// receiver of `.lock()`/`.read()`/`.write()` — `self.index.lock()`
/// acquires lock `index`). Name-based identity is deliberately
/// over-approximate, like the call graph: two distinct mutexes that
/// share a binding name merge into one lock-order node, which can only
/// add edges, never hide them.
#[derive(Debug, Clone)]
pub struct LockAcquire {
    pub lock: String,
    pub line: u32,
    pub what: String,
}

/// The lifetime of one guard inside one fn: the lock it holds plus
/// everything observed *while it is held* — nested acquisitions
/// (lock-order edges), calls (composed through the call graph), and
/// boundary crossings (spawns, condvar waits, channel receives, …).
///
/// A guard's span starts at the acquisition and ends at the enclosing
/// scope's `}`, at an explicit `drop(<binding>)`, or — for guards never
/// bound to a name — at the end of the statement. Shadowing does *not*
/// end a span (Rust drops the shadowed value at scope end, not at the
/// rebinding), and an `if let`-temporary guard conservatively stays
/// held through the body it gates.
#[derive(Debug, Clone)]
pub struct GuardSpan {
    /// Lock identity (receiver binding name).
    pub lock: String,
    /// Acquisition line.
    pub line: u32,
    pub what: String,
    /// Locks acquired while this guard was held (intra-fn order edges).
    pub acquires: Vec<LockAcquire>,
    /// Calls made while this guard was held (composed in pass 2).
    pub calls: Vec<CallSite>,
    /// Spawn/wait/recv/join/park/scope boundaries crossed while held.
    /// A condvar wait that names this guard's binding in its arguments
    /// is exempt — the wait releases the mutex while parked.
    pub crossings: Vec<BlockSite>,
}

/// A function, method, or pool-task closure with its calls and
/// blocking sites.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Link name — what call sites resolve against. Empty for
    /// closures: nothing calls them by name.
    pub name: String,
    /// Display name for traces, e.g. "`run_stream`" or
    /// "task closure in `run_stream`".
    pub display: String,
    pub line: u32,
    pub is_test: bool,
    pub root: Option<RootKind>,
    pub calls: Vec<CallSite>,
    pub blocking: Vec<BlockSite>,
    /// Every Mutex/RwLock acquisition in the body (held or not) — the
    /// raw material pass 2 composes into transitive lock reach.
    pub acquires: Vec<LockAcquire>,
    /// Guard lifetimes with the events observed while held.
    pub guards: Vec<GuardSpan>,
    /// `Scope::spawn`/`par_*` task-spawn sites in the body (L2
    /// boundary sources for the transitive hold-across-call check).
    pub spawns: Vec<BlockSite>,
}

/// Pass-1 product for one file.
#[derive(Debug, Clone, Default)]
pub struct FileSummary {
    pub path: String,
    pub fns: Vec<FnNode>,
    /// `use path::orig as alias;` → alias → orig (last segment only —
    /// the graph links by bare name).
    pub aliases: BTreeMap<String, String>,
}

/// Helpers whose closure argument executes on pool workers.
const PAR_HELPERS: &[&str] = &["par_for", "par_map_collect", "par_chunks_mut", "par_reduce"];

/// Condvar wait methods (all parking).
const WAIT_METHODS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_while",
    "wait_timeout",
    "wait_timeout_while",
];

/// Blocking channel receives (`try_recv` is non-blocking and exempt).
const RECV_METHODS: &[&str] = &["recv", "recv_timeout", "recv_deadline"];

/// Keywords and control-flow idents that look like calls but are not.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "let", "in", "as", "move", "mut", "ref",
    "pub", "use", "mod", "impl", "struct", "enum", "trait", "type", "where", "unsafe", "const",
    "static", "crate", "super", "else", "break", "continue", "dyn", "box", "await", "async",
    "yield", "true", "false", "Some", "None", "Ok", "Err",
];

/// A guard whose span is still open while the token walk is inside it.
struct ActiveGuard {
    /// Owning [`FnNode`] index — events in nested *root* closures
    /// (which run on other threads) never attribute to this guard.
    node: usize,
    /// The `let` binding holding the guard; `None` for a temporary
    /// guard that dies at the end of its statement.
    binding: Option<String>,
    /// `stack.len()` at acquisition (temporaries end at the first `;`
    /// at or below this depth).
    stack_depth: usize,
    /// Number of open braces at acquisition (bound guards end when the
    /// enclosing block closes).
    brace_count: usize,
    span: GuardSpan,
}

fn finish_guard(fns: &mut [FnNode], g: ActiveGuard) {
    // Event-free spans carry no lock-flow signal; drop them to keep
    // summaries (and the summary cache) lean.
    if !(g.span.acquires.is_empty() && g.span.calls.is_empty() && g.span.crossings.is_empty()) {
        fns[g.node].guards.push(g.span);
    }
}

/// Extract the pass-1 summary from an analysed file.
pub fn summarize(model: &FileModel, cfg: &Config) -> FileSummary {
    let file_test = is_test_path(&model.path);
    let rwlocks = rwlock_idents(model);
    let mut fns: Vec<FnNode> = Vec::new();

    enum Close {
        Brace,
        Paren,
    }
    struct Frame {
        close: Close,
        node: Option<usize>,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut active: Vec<ActiveGuard> = Vec::new();
    let mut pending_fn: Option<(String, u32)> = None;
    let mut square_depth = 0i32;

    let current_node =
        |stack: &[Frame]| -> Option<usize> { stack.iter().rev().find_map(|f| f.node) };
    let brace_count = |stack: &[Frame]| -> usize {
        stack
            .iter()
            .filter(|f| matches!(f.close, Close::Brace))
            .count()
    };

    let n = model.code.len();
    let mut hint_idx = 0usize;
    for ci in 0..n {
        let t = model.ct(ci).expect("in range").clone();
        // `lint: calls(NAME)` hints: declared call edges the
        // name-linker cannot see. Injected as ordinary calls on the
        // enclosing function (and any guard held there), attributed at
        // the hint's bound line.
        while hint_idx < model.call_hints.len() && t.line >= model.call_hints[hint_idx].line {
            let hint = &model.call_hints[hint_idx];
            hint_idx += 1;
            let Some(ni) = current_node(&stack) else {
                continue;
            };
            for callee in &hint.callees {
                let site = CallSite {
                    name: callee.clone(),
                    line: hint.line,
                };
                fns[ni].calls.push(site.clone());
                for g in active.iter_mut().filter(|g| g.node == ni) {
                    g.span.calls.push(site.clone());
                }
            }
        }
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "fn") => {
                if let Some(name) = model.ct(ci + 1).filter(|u| u.kind == TokKind::Ident) {
                    pending_fn = Some((name.text.clone(), name.line));
                }
            }
            (TokKind::Punct, "[") => square_depth += 1,
            (TokKind::Punct, "]") => square_depth -= 1,
            (TokKind::Punct, ";")
                if square_depth == 0
                    && stack.last().is_none_or(|f| matches!(f.close, Close::Brace)) =>
            {
                // A trait-method signature without a body.
                pending_fn = None;
                // Statement end: temporary guards die here (a bound
                // guard lives to its scope's `}` or an explicit drop).
                let depth = stack.len();
                let (done, kept): (Vec<_>, Vec<_>) = active
                    .drain(..)
                    .partition(|g| g.binding.is_none() && depth <= g.stack_depth);
                active = kept;
                for g in done {
                    finish_guard(&mut fns, g);
                }
            }
            (TokKind::Punct, "{") => {
                let node = pending_fn.take().map(|(name, line)| {
                    let is_test = file_test || model.in_test_code(line);
                    let root = (!is_test && cfg.root_fns.iter().any(|r| r == &name))
                        .then_some(RootKind::RootFn);
                    fns.push(FnNode {
                        display: format!("`{name}`"),
                        name,
                        line,
                        is_test,
                        root,
                        calls: Vec::new(),
                        blocking: Vec::new(),
                        acquires: Vec::new(),
                        guards: Vec::new(),
                        spawns: Vec::new(),
                    });
                    fns.len() - 1
                });
                stack.push(Frame {
                    close: Close::Brace,
                    node,
                });
            }
            (TokKind::Punct, "}") => {
                while let Some(f) = stack.pop() {
                    if matches!(f.close, Close::Brace) {
                        break;
                    }
                }
                // Scope end: guards bound inside the closed block die.
                let braces = brace_count(&stack);
                let (done, kept): (Vec<_>, Vec<_>) =
                    active.drain(..).partition(|g| g.brace_count > braces);
                active = kept;
                for g in done {
                    finish_guard(&mut fns, g);
                }
            }
            (TokKind::Punct, "(") => {
                // Was this paren opened by a call? `NAME (` with NAME
                // not a keyword and not a definition (`fn NAME (`).
                let mut node = None;
                let prev_is_def = ci >= 2 && model.ct(ci - 2).is_some_and(|u| u.is_ident("fn"));
                if let Some(prev) = ci.checked_sub(1).and_then(|j| model.ct(j)) {
                    if prev.kind == TokKind::Ident
                        && !prev_is_def
                        && !NON_CALL_IDENTS.contains(&prev.text.as_str())
                    {
                        let callee = prev.text.clone();
                        let is_method =
                            ci >= 2 && model.ct(ci - 2).is_some_and(|u| u.is_punct("."));
                        let host = current_node(&stack);
                        if let Some(ni) = host {
                            fns[ni].calls.push(CallSite {
                                name: callee.clone(),
                                line: prev.line,
                            });
                            for g in active.iter_mut().filter(|g| g.node == ni) {
                                g.span.calls.push(CallSite {
                                    name: callee.clone(),
                                    line: prev.line,
                                });
                            }
                        }
                        // Does this call's argument run on pool workers?
                        let in_test = file_test || model.in_test_code(prev.line);
                        let root = if in_test {
                            None
                        } else if is_method
                            && callee == "spawn"
                            && !stmt_back_has(model, ci - 1, &["thread", "Builder"])
                        {
                            Some(RootKind::SpawnClosure)
                        } else if PAR_HELPERS.contains(&callee.as_str()) {
                            Some(RootKind::ParClosure(callee.clone()))
                        } else {
                            None
                        };
                        if let Some(root) = root {
                            let spawn_site = BlockSite {
                                line: prev.line,
                                kind: BlockKind::Spawn,
                                what: match &root {
                                    RootKind::ParClosure(h) => {
                                        format!("`{h}(..)` (parallel task spawn)")
                                    }
                                    _ => "`.spawn(..)` (task spawn)".to_string(),
                                },
                            };
                            if let Some(ni) = host {
                                fns[ni].spawns.push(spawn_site.clone());
                                for g in active.iter_mut().filter(|g| g.node == ni) {
                                    g.span.crossings.push(spawn_site.clone());
                                }
                            }
                            let host_name = host
                                .map(|ni| fns[ni].display.clone())
                                .unwrap_or_else(|| "top level".to_string());
                            fns.push(FnNode {
                                name: String::new(),
                                display: format!("task closure in {host_name}"),
                                line: prev.line,
                                is_test: false,
                                root: Some(root),
                                calls: Vec::new(),
                                blocking: Vec::new(),
                                acquires: Vec::new(),
                                guards: Vec::new(),
                                spawns: Vec::new(),
                            });
                            node = Some(fns.len() - 1);
                        }
                    }
                }
                stack.push(Frame {
                    close: Close::Paren,
                    node,
                });
            }
            (TokKind::Punct, ")") => {
                while let Some(f) = stack.pop() {
                    if matches!(f.close, Close::Paren) {
                        break;
                    }
                }
            }
            (TokKind::Ident, _) => {
                if file_test || model.in_test_code(t.line) {
                    continue;
                }
                let Some(ni) = current_node(&stack) else {
                    continue;
                };
                // `drop(<binding>)` ends the named guard's span early.
                if t.text == "drop"
                    && model.ct(ci + 1).is_some_and(|u| u.is_punct("("))
                    && model.ct(ci + 3).is_some_and(|u| u.is_punct(")"))
                {
                    if let Some(victim) = model.ct(ci + 2).filter(|u| u.kind == TokKind::Ident) {
                        let name = victim.text.clone();
                        let (done, kept): (Vec<_>, Vec<_>) = active.drain(..).partition(|g| {
                            g.node == ni && g.binding.as_deref() == Some(name.as_str())
                        });
                        active = kept;
                        for g in done {
                            finish_guard(&mut fns, g);
                        }
                    }
                }
                if let Some(site) = blocking_site(model, ci, &rwlocks) {
                    match site.kind {
                        BlockKind::Mutex | BlockKind::RwLock => {
                            let lock = receiver_name(model, ci);
                            let acq = LockAcquire {
                                lock: lock.clone(),
                                line: site.line,
                                what: site.what.clone(),
                            };
                            for g in active.iter_mut().filter(|g| g.node == ni) {
                                g.span.acquires.push(acq.clone());
                            }
                            fns[ni].acquires.push(acq);
                            let binding = guard_binding(model, ci);
                            // `let _ = x.lock();` drops the guard
                            // immediately — no span at all.
                            if binding.as_deref() != Some("_") {
                                active.push(ActiveGuard {
                                    node: ni,
                                    binding,
                                    stack_depth: stack.len(),
                                    brace_count: brace_count(&stack),
                                    span: GuardSpan {
                                        lock,
                                        line: site.line,
                                        what: site.what.clone(),
                                        acquires: Vec::new(),
                                        calls: Vec::new(),
                                        crossings: Vec::new(),
                                    },
                                });
                            }
                        }
                        BlockKind::Wait => {
                            // A condvar wait *releases* the mutex whose
                            // guard it is passed — only guards not named
                            // in the argument list stay held across it.
                            for g in active.iter_mut().filter(|g| g.node == ni) {
                                let released = g
                                    .binding
                                    .as_deref()
                                    .is_some_and(|b| call_args_mention(model, ci, b));
                                if !released {
                                    g.span.crossings.push(site.clone());
                                }
                            }
                        }
                        _ => {
                            for g in active.iter_mut().filter(|g| g.node == ni) {
                                g.span.crossings.push(site.clone());
                            }
                        }
                    }
                    fns[ni].blocking.push(site);
                }
            }
            _ => {}
        }
    }
    for g in active.drain(..) {
        finish_guard(&mut fns, g);
    }

    FileSummary {
        path: model.path.clone(),
        fns,
        aliases: use_aliases(model),
    }
}

/// Is the code-token at `ci` a blocking-primitive site?
fn blocking_site(model: &FileModel, ci: usize, rwlocks: &BTreeSet<String>) -> Option<BlockSite> {
    let t = model.ct(ci)?;
    let prev_dot = ci >= 1 && model.ct(ci - 1).is_some_and(|u| u.is_punct("."));
    let argless = model.ct(ci + 1).is_some_and(|u| u.is_punct("("))
        && model.ct(ci + 2).is_some_and(|u| u.is_punct(")"));
    let called = model.ct(ci + 1).is_some_and(|u| u.is_punct("("));
    let receiver = || receiver_name(model, ci);
    let (kind, what) = match t.text.as_str() {
        "lock" if prev_dot && argless => (
            BlockKind::Mutex,
            format!("`{}.lock()` (Mutex acquisition)", receiver()),
        ),
        "read" | "write" if prev_dot && argless && rwlocks.contains(&receiver()) => (
            BlockKind::RwLock,
            format!("`{}.{}()` (RwLock acquisition)", receiver(), t.text),
        ),
        m if prev_dot && called && WAIT_METHODS.contains(&m) => {
            (BlockKind::Wait, format!("`.{m}(..)` (condvar wait)"))
        }
        m if prev_dot && called && RECV_METHODS.contains(&m) => (
            BlockKind::Recv,
            format!("`.{m}()` (blocking channel receive)"),
        ),
        "join" if prev_dot && argless => (
            BlockKind::Join,
            format!("`{}.join()` (thread join)", receiver()),
        ),
        "park"
            if ci >= 2
                && model.ct(ci - 1).is_some_and(|u| u.is_punct("::"))
                && model.ct(ci - 2).is_some_and(|u| u.is_ident("thread")) =>
        {
            (BlockKind::Park, "`thread::park()`".to_string())
        }
        "scope" if prev_dot && called => (
            BlockKind::Scope,
            "`.scope(..)` (nested pool scope)".to_string(),
        ),
        _ => return None,
    };
    Some(BlockSite {
        line: t.line,
        kind,
        what,
    })
}

/// The receiver binding of a method call at `ci` — the identifier two
/// code tokens back (`index . lock`), or `_` when there is none. This
/// is the lock-identity heuristic: locks are named by the binding they
/// are reached through.
fn receiver_name(model: &FileModel, ci: usize) -> String {
    match ci.checked_sub(2).and_then(|j| model.ct(j)) {
        Some(u) if u.kind == TokKind::Ident => u.text.clone(),
        _ => "_".to_string(),
    }
}

/// If the acquisition at `ci` is the *entire* initialiser of a `let`
/// (`let [mut] NAME = <receiver chain>.lock();`), the guard is bound
/// to NAME and lives to scope end. Anything else — a deref, a method
/// chained after the lock call, an `if let` scrutinee — is a
/// temporary whose guard dies at the end of the statement.
fn guard_binding(model: &FileModel, ci: usize) -> Option<String> {
    if !model.ct(ci + 3).is_some_and(|u| u.is_punct(";")) {
        return None;
    }
    // Walk back over the receiver chain (idents, `.`, `::`) to `=`.
    let mut j = ci.checked_sub(1)?;
    loop {
        let t = model.ct(j)?;
        let chainy =
            (t.kind == TokKind::Ident && !t.is_ident("let")) || t.is_punct(".") || t.is_punct("::");
        if !chainy {
            break;
        }
        j = j.checked_sub(1)?;
    }
    if !model.ct(j).is_some_and(|u| u.is_punct("=")) {
        return None;
    }
    let name = model
        .ct(j.checked_sub(1)?)
        .filter(|u| u.kind == TokKind::Ident && !u.is_ident("mut"))?
        .text
        .clone();
    let mut k = j.checked_sub(2)?;
    if model.ct(k).is_some_and(|u| u.is_ident("mut")) {
        k = k.checked_sub(1)?;
    }
    if !model.ct(k).is_some_and(|u| u.is_ident("let")) {
        return None;
    }
    Some(name)
}

/// Does the argument list of the call whose method name sits at `ci`
/// mention `ident`? Used to recognise `cv.wait(&mut guard)` releasing
/// `guard` while parked.
fn call_args_mention(model: &FileModel, ci: usize, ident: &str) -> bool {
    if !model.ct(ci + 1).is_some_and(|u| u.is_punct("(")) {
        return false;
    }
    let mut depth = 0i32;
    let mut j = ci + 1;
    while let Some(t) = model.ct(j) {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(") => depth += 1,
            (TokKind::Punct, ")") => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            (TokKind::Ident, s) if s == ident => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Does the statement containing code-token `ci` mention any of
/// `idents` before `ci`? Used to tell an OS-thread
/// `Builder::new()..spawn(..)` from a pool `scope.spawn(..)`.
fn stmt_back_has(model: &FileModel, ci: usize, idents: &[&str]) -> bool {
    let mut depth = 0i32;
    for j in (0..ci).rev() {
        let Some(t) = model.ct(j) else { break };
        if t.kind == TokKind::Ident && idents.contains(&t.text.as_str()) {
            return true;
        }
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    return false; // start of the enclosing argument list
                }
                depth -= 1;
            }
            "{" | "}" | ";" if depth == 0 => return false,
            _ => {}
        }
    }
    false
}

/// Identifiers bound to `RwLock` values in this file (annotation or
/// initialiser mentions `RwLock` in the binding statement).
fn rwlock_idents(model: &FileModel) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let n = model.code.len();
    for ci in 0..n {
        let Some(t) = model.ct(ci) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = match t.text.as_str() {
            "let" => {
                let mut j = ci + 1;
                if model.ct(j).is_some_and(|u| u.is_ident("mut")) {
                    j += 1;
                }
                match model.ct(j) {
                    Some(u) if u.kind == TokKind::Ident => u.text.clone(),
                    _ => continue,
                }
            }
            _ => {
                // `NAME : <type>` — fields and params.
                if !model.ct(ci + 1).is_some_and(|u| u.is_punct(":")) {
                    continue;
                }
                t.text.clone()
            }
        };
        // Scan the rest of the binding region for `RwLock`.
        for j in ci + 1..(ci + 32).min(n) {
            let Some(u) = model.ct(j) else { break };
            if u.kind == TokKind::Punct && (u.text == ";" || u.text == "{") {
                break;
            }
            if u.is_ident("RwLock") {
                out.insert(name);
                break;
            }
        }
    }
    out
}

/// Collect `A as B` pairs from `use` statements: alias → original.
fn use_aliases(model: &FileModel) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let n = model.code.len();
    let mut ci = 0usize;
    while ci < n {
        let Some(t) = model.ct(ci) else { break };
        if !t.is_ident("use") {
            ci += 1;
            continue;
        }
        // Scan to the terminating `;`, recording `IDENT as IDENT`.
        let mut j = ci + 1;
        while j < n {
            let Some(u) = model.ct(j) else { break };
            if u.is_punct(";") {
                break;
            }
            if u.is_ident("as") {
                let orig = model.ct(j - 1).filter(|p| p.kind == TokKind::Ident);
                let alias = model.ct(j + 1).filter(|p| p.kind == TokKind::Ident);
                if let (Some(orig), Some(alias)) = (orig, alias) {
                    out.insert(alias.text.clone(), orig.text.clone());
                }
            }
            j += 1;
        }
        ci = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FileModel;
    use crate::lexer::lex;

    fn summary(path: &str, src: &str) -> FileSummary {
        let model = FileModel::build(path, lex(src));
        summarize(&model, &Config::default())
    }

    #[test]
    fn spawn_closure_becomes_a_root_node() {
        let s = summary(
            "crates/x/src/a.rs",
            "fn drive(pool: &ThreadPool) {\n\
             pool.scope(|s| {\n    s.spawn(move || { work(); });\n});\n}",
        );
        let root = s
            .fns
            .iter()
            .find(|f| f.root == Some(RootKind::SpawnClosure))
            .expect("root node");
        assert!(root.display.contains("drive"));
        assert!(root.calls.iter().any(|c| c.name == "work"));
        // `drive` itself is not a root; its nested `.scope(` is a
        // blocking site attributed to `drive`.
        let drive = s.fns.iter().find(|f| f.name == "drive").unwrap();
        assert!(drive.root.is_none());
        assert!(drive.blocking.iter().any(|b| b.what.contains("scope")));
    }

    #[test]
    fn os_thread_spawn_is_not_a_root() {
        let s = summary(
            "crates/x/src/a.rs",
            "fn start() {\n\
             let h = std::thread::Builder::new().name(n).spawn(move || loop_fn()).unwrap();\n}",
        );
        assert!(s.fns.iter().all(|f| f.root.is_none()));
    }

    #[test]
    fn par_helper_closures_are_roots() {
        let s = summary(
            "crates/x/src/a.rs",
            "fn launch(pool: &ThreadPool, xs: &mut [u64]) {\n\
             par_for(pool, xs, 1, |chunk| { handle(chunk); });\n}",
        );
        let root = s
            .fns
            .iter()
            .find(|f| matches!(f.root, Some(RootKind::ParClosure(_))))
            .expect("par root");
        assert!(root.calls.iter().any(|c| c.name == "handle"));
    }

    #[test]
    fn named_root_fns_and_blocking_sites() {
        let s = summary(
            "crates/x/src/sink.rs",
            "fn accept(&mut self, r: Report) {\n    self.state.lock();\n}\n\
             fn other(rx: &Receiver<u32>) {\n    let v = rx.recv();\n}",
        );
        let accept = s.fns.iter().find(|f| f.name == "accept").unwrap();
        assert_eq!(accept.root, Some(RootKind::RootFn));
        assert!(accept.blocking.iter().any(|b| b.what.contains("lock")));
        let other = s.fns.iter().find(|f| f.name == "other").unwrap();
        assert!(other.root.is_none());
        assert!(other.blocking.iter().any(|b| b.what.contains("recv")));
    }

    #[test]
    fn argful_join_is_path_join_not_blocking() {
        let s = summary(
            "crates/x/src/a.rs",
            "fn f(dir: &Path, h: JoinHandle<()>) {\n\
             let p = dir.join(\"x.bin\");\n    h.join();\n}",
        );
        let f = &s.fns[0];
        assert_eq!(f.blocking.len(), 1);
        assert!(f.blocking[0].what.contains("h.join()"));
    }

    #[test]
    fn rwlock_read_write_only_on_registered_bindings() {
        let s = summary(
            "crates/x/src/a.rs",
            "fn f(gate: &RwLock<u32>, file: &mut File) {\n\
             let g = gate.read();\n    file.read();\n}",
        );
        let f = &s.fns[0];
        assert_eq!(f.blocking.len(), 1);
        assert!(f.blocking[0].what.contains("gate.read()"));
    }

    #[test]
    fn use_alias_pairs_are_collected() {
        let s = summary(
            "crates/x/src/a.rs",
            "use riskpipe_exec::par::{par_for as pfor, par_reduce};\nfn f() {}\n",
        );
        assert_eq!(s.aliases.get("pfor").map(String::as_str), Some("par_for"));
    }

    #[test]
    fn test_code_has_no_roots_or_blocking_sites() {
        let s = summary(
            "crates/x/src/a.rs",
            "#[cfg(test)]\nmod tests {\n\
             fn t(pool: &ThreadPool, m: &Mutex<u32>) {\n\
             pool.scope(|s| { s.spawn(move || { m.lock(); }); });\n}\n}",
        );
        assert!(s.fns.iter().all(|f| f.root.is_none()));
        assert!(s.fns.iter().all(|f| f.blocking.is_empty()));
    }

    // ---- guard lifetimes -------------------------------------------
    //
    // The L1/L2/L3 rules are only as good as the guard spans pass 1
    // extracts, so the span boundary cases get their own battery:
    // early `drop`, shadowing, nested scopes, statement temporaries,
    // `if let` temporaries, and the condvar-wait release exemption.

    fn fn_node<'a>(s: &'a FileSummary, name: &str) -> &'a FnNode {
        s.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn `{name}`"))
    }

    fn span_calls(g: &GuardSpan, callee: &str) -> bool {
        g.calls.iter().any(|c| c.name == callee)
    }

    #[test]
    fn explicit_drop_ends_the_guard_span() {
        let s = summary(
            "crates/app/src/a.rs",
            "fn f(st: &S) {\n\
                 let g = st.alpha.lock();\n\
                 before_drop(st);\n\
                 drop(g);\n\
                 after_drop(st);\n\
             }\n",
        );
        let f = fn_node(&s, "f");
        assert_eq!(f.guards.len(), 1);
        let g = &f.guards[0];
        assert_eq!(g.lock, "alpha");
        assert!(span_calls(g, "before_drop"));
        assert!(!span_calls(g, "after_drop"));
        // The fn itself still records both calls — only the guard
        // attribution stops at the drop.
        assert!(f.calls.iter().any(|c| c.name == "after_drop"));
    }

    #[test]
    fn shadowing_rebind_keeps_the_first_span_open() {
        // Rust drops a shadowed guard at scope end, not at the
        // rebinding `let` — both spans must stay open to the `}` and
        // the second acquisition must register as an alpha → beta edge.
        let s = summary(
            "crates/app/src/a.rs",
            "fn f(st: &S) {\n\
                 let g = st.alpha.lock();\n\
                 let g = st.beta.lock();\n\
                 poke(st);\n\
             }\n",
        );
        let f = fn_node(&s, "f");
        assert_eq!(f.guards.len(), 2);
        let alpha = f.guards.iter().find(|g| g.lock == "alpha").unwrap();
        let beta = f.guards.iter().find(|g| g.lock == "beta").unwrap();
        assert!(alpha.acquires.iter().any(|a| a.lock == "beta"));
        assert!(span_calls(alpha, "poke"));
        assert!(span_calls(beta, "poke"));
    }

    #[test]
    fn nested_scope_closes_the_inner_guard_at_its_brace() {
        let s = summary(
            "crates/app/src/a.rs",
            "fn f(st: &S) {\n\
                 let outer = st.alpha.lock();\n\
                 {\n\
                     let inner = st.beta.lock();\n\
                     in_scope(st);\n\
                 }\n\
                 out_scope(st);\n\
             }\n",
        );
        let f = fn_node(&s, "f");
        let alpha = f.guards.iter().find(|g| g.lock == "alpha").unwrap();
        let beta = f.guards.iter().find(|g| g.lock == "beta").unwrap();
        // The outer guard sees everything, including the nested
        // acquisition; the inner guard dies at the block's `}`.
        assert!(alpha.acquires.iter().any(|a| a.lock == "beta"));
        assert!(span_calls(alpha, "in_scope") && span_calls(alpha, "out_scope"));
        assert!(span_calls(beta, "in_scope"));
        assert!(!span_calls(beta, "out_scope"));
    }

    #[test]
    fn statement_temporary_guard_dies_at_the_semicolon() {
        // `st.alpha.lock().len()` never binds the guard — it is gone
        // at the end of the statement, so the next call is unheld.
        let s = summary(
            "crates/app/src/a.rs",
            "fn f(st: &S) {\n\
                 let n = st.alpha.lock().len();\n\
                 later_call(st, n);\n\
             }\n",
        );
        let f = fn_node(&s, "f");
        assert!(f
            .guards
            .iter()
            .filter(|g| g.lock == "alpha")
            .all(|g| !span_calls(g, "later_call")));
    }

    #[test]
    fn if_let_temporary_guard_covers_the_gated_body() {
        // The guard temporary in an `if let` scrutinee lives through
        // the body it gates — calls there happen under the lock.
        let s = summary(
            "crates/app/src/a.rs",
            "fn f(st: &S) {\n\
                 if let Some(v) = st.alpha.lock().front() {\n\
                     body_call(st, v);\n\
                 }\n\
             }\n",
        );
        let f = fn_node(&s, "f");
        assert!(f
            .guards
            .iter()
            .any(|g| g.lock == "alpha" && span_calls(g, "body_call")));
    }

    #[test]
    fn underscore_binding_drops_the_guard_immediately() {
        let s = summary(
            "crates/app/src/a.rs",
            "fn f(st: &S) {\n\
                 let _ = st.alpha.lock();\n\
                 later_call(st);\n\
             }\n",
        );
        let f = fn_node(&s, "f");
        assert!(f.guards.is_empty());
        // The acquisition itself is still on record for the lock graph.
        assert!(f.acquires.iter().any(|a| a.lock == "alpha"));
    }

    #[test]
    fn condvar_wait_naming_the_guard_is_exempt_from_crossings() {
        // `cv.wait(&mut g)` releases `g`'s mutex while parked, so the
        // wait is not a held-across-boundary crossing for that guard —
        // but a wait that does NOT name the binding still is.
        let s = summary(
            "crates/app/src/a.rs",
            "fn f(st: &S) {\n\
                 let mut g = st.alpha.lock();\n\
                 st.cv.wait(&mut g);\n\
                 poke(st);\n\
             }\n",
        );
        let f = fn_node(&s, "f");
        let alpha = f.guards.iter().find(|g| g.lock == "alpha").unwrap();
        assert!(alpha.crossings.is_empty(), "{:?}", alpha.crossings);

        let s = summary(
            "crates/app/src/a.rs",
            "fn f(st: &S, other: &mut Thing) {\n\
                 let g = st.alpha.lock();\n\
                 st.cv.wait(other);\n\
                 poke(st);\n\
             }\n",
        );
        let alpha = fn_node(&s, "f")
            .guards
            .iter()
            .find(|g| g.lock == "alpha")
            .unwrap();
        assert!(alpha.crossings.iter().any(|c| c.what.contains("wait")));
    }

    #[test]
    fn blocking_recv_under_a_guard_is_a_crossing() {
        let s = summary(
            "crates/app/src/a.rs",
            "fn f(st: &S, rx: &Receiver) {\n\
                 let g = st.alpha.lock();\n\
                 let v = rx.recv();\n\
                 poke(st, v);\n\
             }\n",
        );
        let alpha = fn_node(&s, "f")
            .guards
            .iter()
            .find(|g| g.lock == "alpha")
            .unwrap();
        assert!(alpha.crossings.iter().any(|c| c.what.contains("recv")));
    }

    #[test]
    fn calls_hint_injects_edges_into_fn_and_held_guard() {
        // `lint: calls(NAME)` declares an edge the name-linker cannot
        // see; it lands on the enclosing fn and any guard held there.
        let s = summary(
            "crates/app/src/a.rs",
            "fn f(st: &S) {\n\
                 let g = st.alpha.lock();\n\
                 // lint: calls(run_job) — `.run(..)` is too generic to link\n\
                 st.job.run(st);\n\
             }\n",
        );
        let f = fn_node(&s, "f");
        assert!(f.calls.iter().any(|c| c.name == "run_job"));
        let alpha = f.guards.iter().find(|g| g.lock == "alpha").unwrap();
        assert!(span_calls(alpha, "run_job"));
    }
}
