//! Convergence diagnostics: how a metric estimate stabilises as trials
//! accumulate — the quantitative backing for the paper's "the more
//! simulation trials you can run the better you can manage your
//! aggregate risk".

use crate::measures::{tvar_sorted, var_sorted};

/// One row of a convergence study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceRow {
    /// Number of leading trials used.
    pub trials: usize,
    /// Metric estimate from those trials.
    pub estimate: f64,
    /// Relative deviation from the full-sample estimate.
    pub rel_error: f64,
}

/// A metric evaluated over growing prefixes of the trial sequence.
#[derive(Debug, Clone)]
pub struct ConvergenceStudy {
    rows: Vec<ConvergenceRow>,
    full_estimate: f64,
}

/// Which metric a study tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Sample mean.
    Mean,
    /// Value-at-Risk at the given per-mille level (e.g. 990 = 99.0%).
    VarPermille(u32),
    /// Tail VaR at the given per-mille level.
    TvarPermille(u32),
}

impl Metric {
    fn evaluate(&self, prefix: &[f64]) -> f64 {
        match self {
            Metric::Mean => prefix.iter().sum::<f64>() / prefix.len() as f64,
            Metric::VarPermille(pm) => {
                let mut s = prefix.to_vec();
                s.sort_unstable_by(f64::total_cmp);
                var_sorted(&s, *pm as f64 / 1000.0)
            }
            Metric::TvarPermille(pm) => {
                let mut s = prefix.to_vec();
                s.sort_unstable_by(f64::total_cmp);
                tvar_sorted(&s, *pm as f64 / 1000.0)
            }
        }
    }
}

impl ConvergenceStudy {
    /// Evaluate `metric` at each prefix size in `checkpoints` (sizes
    /// beyond the sample are ignored) plus the full sample.
    pub fn run(losses: &[f64], metric: Metric, checkpoints: &[usize]) -> Self {
        assert!(!losses.is_empty());
        let full_estimate = metric.evaluate(losses);
        let mut rows = Vec::new();
        for &n in checkpoints {
            if n == 0 || n > losses.len() {
                continue;
            }
            let estimate = metric.evaluate(&losses[..n]);
            let rel_error = if full_estimate != 0.0 {
                ((estimate - full_estimate) / full_estimate).abs()
            } else {
                estimate.abs()
            };
            rows.push(ConvergenceRow {
                trials: n,
                estimate,
                rel_error,
            });
        }
        Self {
            rows,
            full_estimate,
        }
    }

    /// The study rows, in checkpoint order.
    pub fn rows(&self) -> &[ConvergenceRow] {
        &self.rows
    }

    /// The full-sample estimate the rows are compared against.
    pub fn full_estimate(&self) -> f64 {
        self.full_estimate
    }

    /// Smallest checkpoint whose estimate is within `tol` relative error
    /// of the full-sample value (and stays within at all later
    /// checkpoints).
    pub fn converged_at(&self, tol: f64) -> Option<usize> {
        let mut candidate = None;
        for row in &self.rows {
            if row.rel_error <= tol {
                candidate.get_or_insert(row.trials);
            } else {
                candidate = None;
            }
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_types::dist::{Distribution, LogNormal};
    use riskpipe_types::rng::Pcg64;

    fn lognormal_sample(n: usize) -> Vec<f64> {
        let d = LogNormal::from_mean_cv(1000.0, 1.0);
        let mut rng = Pcg64::new(31);
        d.sample_n(&mut rng, n)
    }

    #[test]
    fn mean_converges_with_trials() {
        let losses = lognormal_sample(100_000);
        let study = ConvergenceStudy::run(&losses, Metric::Mean, &[100, 1_000, 10_000, 100_000]);
        let rows = study.rows();
        assert_eq!(rows.len(), 4);
        // Last checkpoint is the full sample: zero error by definition.
        assert!(rows[3].rel_error < 1e-12);
        // Error at 10k is smaller than at 100 (statistically certain at
        // these sizes for a CV=1 lognormal).
        assert!(rows[2].rel_error < rows[0].rel_error);
    }

    #[test]
    fn tvar_needs_more_trials_than_mean() {
        let losses = lognormal_sample(100_000);
        let mean_study = ConvergenceStudy::run(&losses, Metric::Mean, &[1_000]);
        let tvar_study = ConvergenceStudy::run(&losses, Metric::TvarPermille(990), &[1_000]);
        // Tail metrics are noisier at equal sample size.
        assert!(
            tvar_study.rows()[0].rel_error >= mean_study.rows()[0].rel_error * 0.5,
            "tvar err {} vs mean err {}",
            tvar_study.rows()[0].rel_error,
            mean_study.rows()[0].rel_error
        );
    }

    #[test]
    fn converged_at_finds_stable_prefix() {
        let losses = lognormal_sample(50_000);
        let study = ConvergenceStudy::run(&losses, Metric::Mean, &[10, 100, 1_000, 10_000, 50_000]);
        let at = study.converged_at(0.05);
        assert!(at.is_some());
        assert!(at.unwrap() <= 50_000);
    }

    #[test]
    fn out_of_range_checkpoints_ignored() {
        let losses = vec![1.0, 2.0, 3.0];
        let study = ConvergenceStudy::run(&losses, Metric::Mean, &[0, 2, 5]);
        assert_eq!(study.rows().len(), 1);
        assert_eq!(study.rows()[0].trials, 2);
    }

    #[test]
    fn var_metric_evaluates() {
        let losses: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let study = ConvergenceStudy::run(&losses, Metric::VarPermille(500), &[1000]);
        assert!((study.full_estimate() - 499.5).abs() < 1.0);
    }
}
