//! A mergeable streaming quantile sketch for pooled sweep analytics.
//!
//! [`QuantileSketch`] summarises an unbounded loss stream in
//! `O(k · log(n/k))` memory so a scenario sweep can compute pooled
//! AEP/OEP curve points, VaR and TVaR over *all* trials of *all*
//! scenarios without ever retaining a per-scenario YLT. It is the
//! multi-level compactor scheme of KLL/Manku-Rajagopalan sketches with
//! one deliberate twist: compaction is **deterministic** (alternating
//! parity instead of a random coin), so a given push/merge sequence
//! always yields bit-identical state. Combined with
//! `RiskSession::run_stream`'s input-order delivery, pooled sweep
//! analytics are reproducible bit-for-bit on any thread count — the
//! same golden-metrics contract the per-scenario path pins.
//!
//! # Exact and sketched paths
//!
//! Until the first compaction (at most [`QuantileSketch::k`] values,
//! and merges of uncompacted sketches stay uncompacted while they fit)
//! every value is retained, [`QuantileSketch::is_exact`] is true, and
//! [`QuantileSketch::quantile`] / [`QuantileSketch::tail_mean`] are
//! *bit-identical* to
//! [`quantile_sorted`](riskpipe_types::stats::quantile_sorted) /
//! [`tail_mean_sorted`](riskpipe_types::stats::tail_mean_sorted) over
//! the full sample. With the default `k` of 4096 a sweep of, say, 8
//! scenarios × 500 trials never leaves the exact path.
//!
//! # Error bound (sketched path)
//!
//! Each compaction at level `i` (items of weight `2^i`) sorts `2m`
//! items and keeps alternate ones, perturbing the rank of any query by
//! at most `2^i`. The sketch tracks the sum of those worst-case
//! perturbations exactly and reports it — plus the resolution of the
//! coarsest retained weight, since an interpolated estimate can sit
//! anywhere inside one item's weight span — via
//! [`QuantileSketch::rank_error_bound`]: the loss returned for
//! quantile `q` is guaranteed to have true rank within
//! `rank_error_bound() · count()` of `q · (count() - 1)`. The bound is
//! a conservative no-cancellation sum, `O(log(n/k)/k · n)` ranks in
//! the geometric level structure; alternating parity makes consecutive
//! compactions' biases oppose, so observed error is typically several
//! times smaller (the property suite checks both).
//!
//! Non-finite values order by [`f64::total_cmp`] exactly as the batch
//! helpers do: `-inf` first, `NaN` last — so a poisoned stream
//! surfaces as `NaN`/`inf` top quantiles rather than silently vanishing.

use riskpipe_types::KahanSum;

/// A deterministic, mergeable streaming quantile sketch (see the
/// module docs for the scheme and error bounds).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    /// Per-level buffer capacity (compaction threshold).
    k: usize,
    /// Total values folded in (pushes plus merged counts). Weight is
    /// conserved exactly, so this is also the total weight of all
    /// retained items.
    count: u64,
    /// `levels[i]` holds items of weight `2^i`, unsorted between
    /// compactions.
    levels: Vec<Vec<f64>>,
    /// Compactions performed so far — drives the parity alternation.
    compactions: u64,
    /// Exact running sum of per-compaction worst-case rank
    /// perturbations (`2^level` each).
    err_ranks: u128,
    /// Exact extrema under `total_cmp` (survive compaction).
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(Self::DEFAULT_K)
    }
}

impl QuantileSketch {
    /// Default per-level capacity: exact up to 4096 pooled losses,
    /// ~32 KiB per level beyond that.
    pub const DEFAULT_K: usize = 4096;

    /// A sketch with per-level capacity `k` (values are exact until
    /// `k` is exceeded).
    ///
    /// # Panics
    /// Panics if `k < 8` or `k` is odd (compaction halves a buffer).
    pub fn new(k: usize) -> Self {
        assert!(
            k >= 8 && k.is_multiple_of(2),
            "sketch capacity must be even and >= 8"
        );
        Self {
            k,
            count: 0,
            levels: vec![Vec::new()],
            compactions: 0,
            err_ranks: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The per-level capacity this sketch was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total values folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the sketch still retains every value (no compaction has
    /// happened here or in anything merged in): quantiles are exact.
    pub fn is_exact(&self) -> bool {
        self.compactions == 0 && self.err_ranks == 0
    }

    /// Smallest value folded in (`+inf` when empty). Exact even on the
    /// sketched path.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest value folded in under `total_cmp` (`-inf` when empty;
    /// `NaN` if any `NaN` was folded in).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Guaranteed worst-case rank error of [`QuantileSketch::quantile`]
    /// as a fraction of [`QuantileSketch::count`]: 0 on the exact path.
    /// The bound is the tracked sum of per-compaction perturbations
    /// plus the resolution of the coarsest retained weight (an
    /// interpolated estimate can sit anywhere inside one item's weight
    /// span); see the module docs for the analysis.
    pub fn rank_error_bound(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let resolution = self
            .levels
            .iter()
            .enumerate()
            .rev()
            .find(|(_, items)| !items.is_empty())
            .map(|(level, _)| (1u128 << level) - 1)
            .unwrap_or(0);
        (self.err_ranks + resolution) as f64 / self.count as f64
    }

    /// Retained items across all levels (the memory footprint is this
    /// many `f64`s plus per-level `Vec` headers).
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Fold one value in.
    pub fn push(&mut self, x: f64) {
        if self.count == 0 || x.total_cmp(&self.min).is_lt() {
            self.min = x;
        }
        if self.count == 0 || x.total_cmp(&self.max).is_gt() {
            self.max = x;
        }
        self.count += 1;
        self.levels[0].push(x);
        self.compact_overfull();
    }

    /// Fold a whole slice in (a report's loss column).
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Fold a whole **pre-sorted** (ascending by [`f64::total_cmp`])
    /// column in as one weighted bulk merge: the column lands in the
    /// level-0 buffer in a single append and compaction runs once at
    /// the end instead of every `k` pushes — one big sort over an
    /// almost-sorted buffer rather than `n/k` small ones.
    ///
    /// While no compaction triggers (the level-0 buffer stays within
    /// `k`), the resulting state is **identical** to pushing the same
    /// values one by one, so the exact path keeps its bit-for-bit
    /// contract. Past `k` the compaction *schedule* differs from the
    /// per-value path (fewer, larger compactions), which yields an
    /// equally valid sketch with an equal-or-smaller tracked error
    /// bound — but not bit-identical state to per-value pushes; pick
    /// one fold style per pooled stream (as riskpipe-core's
    /// `SweepSummary` does) and determinism across thread counts is
    /// preserved.
    ///
    /// # Panics
    /// Panics (debug only) if `sorted` is not ascending.
    pub fn merge_sorted(&mut self, sorted: &[f64]) {
        debug_assert!(
            sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            "merge_sorted input must be ascending by total_cmp"
        );
        let Some((&first, &last)) = sorted.first().zip(sorted.last()) else {
            return;
        };
        if self.count == 0 || first.total_cmp(&self.min).is_lt() {
            self.min = first;
        }
        if self.count == 0 || last.total_cmp(&self.max).is_gt() {
            self.max = last;
        }
        self.count += sorted.len() as u64;
        self.levels[0].extend_from_slice(sorted);
        self.compact_overfull();
    }

    /// Fold another sketch in. Deterministic: the result is a pure
    /// function of the two operand states (so a fixed merge order —
    /// e.g. input order across a sweep's partitions — gives
    /// bit-identical results everywhere). Merging exact sketches whose
    /// union still fits in a level stays exact.
    ///
    /// # Panics
    /// Panics if the capacities differ (sketches must agree on `k` to
    /// share a compaction schedule).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(self.k, other.k, "cannot merge sketches of different k");
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min.total_cmp(&self.min).is_lt() {
            self.min = other.min;
        }
        if self.count == 0 || other.max.total_cmp(&self.max).is_gt() {
            self.max = other.max;
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (level, items) in other.levels.iter().enumerate() {
            self.levels[level].extend_from_slice(items);
        }
        self.count += other.count;
        self.compactions += other.compactions;
        self.err_ranks += other.err_ranks;
        self.compact_overfull();
    }

    /// Compact every level over capacity, cascading upward. A level
    /// holding exactly `k` items is NOT compacted — that keeps the
    /// documented contract that up to (and including) `k` values stay
    /// exact.
    fn compact_overfull(&mut self) {
        let mut level = 0;
        while level < self.levels.len() {
            if self.levels[level].len() > self.k {
                self.compact(level);
            }
            level += 1;
        }
    }

    /// Sort level `level` and promote alternate items (parity flips per
    /// compaction) to `level + 1` at doubled weight. An odd buffer
    /// holds its largest item back so weight is conserved exactly.
    fn compact(&mut self, level: usize) {
        if self.levels.len() == level + 1 {
            self.levels.push(Vec::new());
        }
        let mut buf = std::mem::take(&mut self.levels[level]);
        buf.sort_unstable_by(f64::total_cmp);
        let even_len = buf.len() & !1;
        let start = (self.compactions % 2) as usize;
        for i in (start..even_len).step_by(2) {
            self.levels[level + 1].push(buf[i]);
        }
        if buf.len() > even_len {
            self.levels[level].push(buf[even_len]);
        }
        self.compactions += 1;
        self.err_ranks += 1u128 << level;
    }

    /// All retained items with their weights, sorted ascending by
    /// `total_cmp`.
    fn weighted_sorted(&self) -> Vec<(f64, u64)> {
        let mut items: Vec<(f64, u64)> = Vec::with_capacity(self.retained());
        for (level, values) in self.levels.iter().enumerate() {
            let w = 1u64 << level;
            items.extend(values.iter().map(|&v| (v, w)));
        }
        items.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        debug_assert_eq!(items.iter().map(|&(_, w)| w).sum::<u64>(), self.count);
        items
    }

    /// The value at 0-based rank `rank` of the weight-expanded sorted
    /// multiset.
    fn value_at(items: &[(f64, u64)], rank: u64) -> f64 {
        let mut cum = 0u64;
        for &(v, w) in items {
            cum += w;
            if rank < cum {
                return v;
            }
        }
        items.last().expect("rank query on empty sketch").0
    }

    /// One quantile against an already-gathered sorted item list.
    fn quantile_on(&self, items: &[(f64, u64)], q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
        if self.count == 1 {
            return items[0].0;
        }
        let h = q * (self.count - 1) as f64;
        let lo = h.floor() as u64;
        let hi = h.ceil() as u64;
        let vlo = Self::value_at(items, lo);
        if lo == hi {
            vlo
        } else {
            let w = h - lo as f64;
            let vhi = Self::value_at(items, hi);
            vlo * (1.0 - w) + vhi * w
        }
    }

    /// Linear-interpolated quantile (R type-7), matching
    /// [`quantile_sorted`](riskpipe_types::stats::quantile_sorted) on
    /// the weight-expanded multiset — bit-identical to it on the exact
    /// path.
    ///
    /// # Panics
    /// Panics on an empty sketch or `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "quantile of empty sketch");
        self.quantile_on(&self.weighted_sorted(), q)
    }

    /// Many quantiles in one pass: gathers and sorts the retained
    /// items once instead of once per level, bit-identical to calling
    /// [`QuantileSketch::quantile`] per element. Use this for curve
    /// sampling (an EP table asks for ~8 quantiles).
    ///
    /// # Panics
    /// Panics on an empty sketch or any `q` outside `[0, 1]`.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<f64> {
        assert!(self.count > 0, "quantile of empty sketch");
        let items = self.weighted_sorted();
        qs.iter().map(|&q| self.quantile_on(&items, q)).collect()
    }

    /// Mean of the weight-expanded values at or above the `q`-quantile
    /// — the discrete tail-conditional expectation used by TVaR,
    /// matching
    /// [`tail_mean_sorted`](riskpipe_types::stats::tail_mean_sorted)
    /// (bit-identical on the exact path, same Kahan accumulation
    /// order).
    ///
    /// # Panics
    /// Panics on an empty sketch or `q` outside `[0, 1]`.
    pub fn tail_mean(&self, q: f64) -> f64 {
        assert!(self.count > 0, "tail mean of empty sketch");
        assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
        let n = self.count;
        let start = ((q * n as f64).ceil() as u64).min(n - 1);
        self.rank_band_mean(start, n)
            .expect("tail band [min(ceil(q n), n-1), n) is never empty")
    }

    /// Mean of the weight-expanded values *between* two quantile
    /// levels — the band-conditional expectation behind per-return-
    /// period-band tail metrics (`tail_mean_between(q, 1.0)` equals
    /// [`QuantileSketch::tail_mean`]`(q)` bit for bit, same Kahan
    /// accumulation order, exact on the exact path).
    ///
    /// The band covers 0-based ranks `[min(⌈q_lo·n⌉, n−1), ⌈q_hi·n⌉)`
    /// of the weight-expanded sorted multiset, with `q_hi ≥ 1`
    /// extending through the final rank — the same rank convention as
    /// `tail_mean`, so adjacent bands partition a tail exactly.
    /// Returns `None` when the band resolves to no ranks (e.g. two
    /// levels mapping to the same rank at this `n`).
    ///
    /// # Panics
    /// Panics on an empty sketch, either level outside `[0, 1]` (a
    /// `q_hi` above 1 is clamped, not rejected, so callers can pass
    /// open-ended bands), or `q_lo > q_hi`.
    pub fn tail_mean_between(&self, q_lo: f64, q_hi: f64) -> Option<f64> {
        assert!(self.count > 0, "tail mean of empty sketch");
        assert!(
            (0.0..=1.0).contains(&q_lo),
            "quantile level {q_lo} outside [0,1]"
        );
        assert!(q_lo <= q_hi, "band levels inverted: {q_lo} > {q_hi}");
        let n = self.count;
        let lo = ((q_lo * n as f64).ceil() as u64).min(n - 1);
        let hi = if q_hi >= 1.0 {
            n
        } else {
            ((q_hi * n as f64).ceil() as u64).min(n)
        };
        self.rank_band_mean(lo, hi)
    }

    /// Mean of expanded ranks `[lo, hi)`; `None` when the band is
    /// empty. Expanded entries accumulate ascending one at a time so
    /// the exact path reproduces `tail_mean_sorted`'s bits.
    fn rank_band_mean(&self, lo: u64, hi: u64) -> Option<f64> {
        if lo >= hi {
            return None;
        }
        let items = self.weighted_sorted();
        let mut sum = KahanSum::new();
        let mut band_count = 0u64;
        let mut cum = 0u64;
        for &(v, w) in &items {
            let end = cum + w;
            if end > lo && cum < hi {
                let take = end.min(hi) - lo.max(cum);
                for _ in 0..take {
                    sum.add(v);
                }
                band_count += take;
            }
            cum = end;
        }
        (band_count > 0).then(|| sum.total() / band_count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_types::stats::{quantile_sorted, sort_f64, tail_mean_sorted};

    fn exact_reference(xs: &[f64]) -> Vec<f64> {
        let mut sorted = xs.to_vec();
        sort_f64(&mut sorted);
        sorted
    }

    #[test]
    fn exact_path_matches_sorted_helpers_bitwise() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 7919) % 1009) as f64 * 0.37)
            .collect();
        let mut sk = QuantileSketch::new(2048);
        sk.extend(&xs);
        assert!(sk.is_exact());
        assert_eq!(sk.count(), 1000);
        assert_eq!(sk.rank_error_bound(), 0.0);
        let sorted = exact_reference(&xs);
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.997, 1.0] {
            assert_eq!(
                sk.quantile(q).to_bits(),
                quantile_sorted(&sorted, q).to_bits()
            );
            assert_eq!(
                sk.tail_mean(q).to_bits(),
                tail_mean_sorted(&sorted, q).to_bits()
            );
        }
        assert_eq!(sk.min(), sorted[0]);
        assert_eq!(sk.max(), sorted[sorted.len() - 1]);
    }

    #[test]
    fn sketched_path_stays_within_reported_bound() {
        let n = 60_000usize;
        let xs: Vec<f64> = (0..n)
            .map(|i| (((i * 104729) % 99991) as f64).powf(1.4))
            .collect();
        let mut sk = QuantileSketch::new(256);
        sk.extend(&xs);
        assert!(!sk.is_exact());
        assert!(sk.retained() < 8 * 256, "retained {} items", sk.retained());
        let sorted = exact_reference(&xs);
        let bound_ranks = sk.rank_error_bound() * n as f64;
        assert!(bound_ranks > 0.0);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = sk.quantile(q);
            // True rank of the estimate vs the requested rank.
            let rank = sorted.partition_point(|&v| v < est) as f64;
            let want = q * (n - 1) as f64;
            assert!(
                (rank - want).abs() <= bound_ranks + 1.0,
                "q={q}: rank {rank} vs {want} (bound {bound_ranks})"
            );
            // Empirically the alternating parity does far better than
            // the no-cancellation bound; pin a 2%-of-n tripwire.
            assert!(
                (rank - want).abs() <= 0.02 * n as f64,
                "q={q}: rank {rank} vs {want}"
            );
        }
    }

    #[test]
    fn merge_is_deterministic_and_conserves_weight() {
        let xs: Vec<f64> = (0..5000).map(|i| ((i * 31) % 977) as f64).collect();
        let build = |chunk: usize| {
            let mut whole = QuantileSketch::new(64);
            for part in xs.chunks(chunk) {
                let mut sk = QuantileSketch::new(64);
                sk.extend(part);
                whole.merge(&sk);
            }
            whole
        };
        let a = build(97);
        let b = build(97);
        assert_eq!(a.count(), xs.len() as u64);
        // Same chunking: bit-identical state.
        for q in [0.0, 0.3, 0.77, 1.0] {
            assert_eq!(a.quantile(q).to_bits(), b.quantile(q).to_bits());
        }
        // Different chunking: same count/extrema, quantiles within the
        // summed bounds of both.
        let c = build(333);
        assert_eq!(c.count(), a.count());
        assert_eq!(c.min(), a.min());
        assert_eq!(c.max(), a.max());
        let sorted = exact_reference(&xs);
        for sk in [&a, &c] {
            let bound = sk.rank_error_bound() * xs.len() as f64 + 1.0;
            for q in [0.25, 0.5, 0.9] {
                let rank = sorted.partition_point(|&v| v < sk.quantile(q)) as f64;
                assert!((rank - q * (xs.len() - 1) as f64).abs() <= bound);
            }
        }
    }

    #[test]
    fn merging_exact_sketches_stays_exact_regardless_of_split() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 13) % 271) as f64 - 35.0).collect();
        let sorted = exact_reference(&xs);
        for chunk in [1, 7, 100, 500] {
            let mut whole = QuantileSketch::new(1024);
            for part in xs.chunks(chunk) {
                let mut sk = QuantileSketch::new(1024);
                sk.extend(part);
                whole.merge(&sk);
            }
            assert!(whole.is_exact(), "chunk={chunk}");
            for q in [0.0, 0.5, 0.95, 1.0] {
                assert_eq!(
                    whole.quantile(q).to_bits(),
                    quantile_sorted(&sorted, q).to_bits(),
                    "chunk={chunk} q={q}"
                );
            }
        }
    }

    #[test]
    fn merge_sorted_matches_pushes_on_exact_path() {
        // Below the compaction threshold the bulk fold must be
        // bit-identical in *state* to per-value pushes: same retained
        // buffer, same count, same extrema.
        let mut xs: Vec<f64> = (0..700).map(|i| ((i * 37) % 211) as f64 * 0.5).collect();
        sort_f64(&mut xs);
        let mut pushed = QuantileSketch::new(1024);
        pushed.extend(&xs);
        let mut folded = QuantileSketch::new(1024);
        folded.merge_sorted(&xs);
        assert!(folded.is_exact());
        assert_eq!(folded.count(), pushed.count());
        assert_eq!(folded.min(), pushed.min());
        assert_eq!(folded.max(), pushed.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(folded.quantile(q).to_bits(), pushed.quantile(q).to_bits());
            assert_eq!(folded.tail_mean(q).to_bits(), pushed.tail_mean(q).to_bits());
        }
    }

    #[test]
    fn merge_sorted_past_k_stays_within_bound_with_fewer_compactions() {
        let n = 50_000usize;
        let mut xs: Vec<f64> = (0..n)
            .map(|i| (((i * 104729) % 99991) as f64).powf(1.2))
            .collect();
        sort_f64(&mut xs);
        let mut pushed = QuantileSketch::new(256);
        pushed.extend(&xs);
        let mut folded = QuantileSketch::new(256);
        // Fold in report-sized sorted chunks, the sweep-sink shape.
        for part in xs.chunks(10_000) {
            folded.merge_sorted(part);
        }
        assert_eq!(folded.count(), n as u64);
        assert!(!folded.is_exact());
        // The bulk fold compacts less often, so its tracked bound must
        // not be worse than the per-value path's.
        assert!(folded.rank_error_bound() <= pushed.rank_error_bound());
        let bound_ranks = folded.rank_error_bound() * n as f64 + 1.0;
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = folded.quantile(q);
            let rank = xs.partition_point(|&v| v < est) as f64;
            assert!(
                (rank - q * (n - 1) as f64).abs() <= bound_ranks,
                "q={q}: rank {rank}"
            );
        }
    }

    #[test]
    fn merge_sorted_empty_and_nonfinite_edges() {
        let mut sk = QuantileSketch::new(8);
        sk.merge_sorted(&[]);
        assert_eq!(sk.count(), 0);
        let mut poisoned = vec![f64::NEG_INFINITY, 1.0, 2.0, f64::NAN];
        sort_f64(&mut poisoned);
        sk.merge_sorted(&poisoned);
        assert_eq!(sk.min(), f64::NEG_INFINITY);
        assert!(sk.max().is_nan());
    }

    #[test]
    fn tail_mean_between_matches_exact_band_mean_bitwise() {
        use riskpipe_types::KahanSum;
        let xs: Vec<f64> = (0..900)
            .map(|i| ((i * 7919) % 1009) as f64 * 0.37)
            .collect();
        let mut sk = QuantileSketch::new(1024);
        sk.extend(&xs);
        assert!(sk.is_exact());
        let sorted = exact_reference(&xs);
        let n = sorted.len() as f64;
        for (q_lo, q_hi) in [(0.0, 0.5), (0.5, 0.9), (0.9, 0.99), (0.99, 1.0)] {
            // Reference: the same rank convention over the sorted
            // sample, Kahan-accumulated ascending.
            let lo = ((q_lo * n).ceil() as usize).min(sorted.len() - 1);
            let hi = if q_hi >= 1.0 {
                sorted.len()
            } else {
                ((q_hi * n).ceil() as usize).min(sorted.len())
            };
            let band = &sorted[lo..hi];
            let k: KahanSum = band.iter().copied().collect();
            let want = k.total() / band.len() as f64;
            assert_eq!(
                sk.tail_mean_between(q_lo, q_hi).unwrap().to_bits(),
                want.to_bits(),
                "band [{q_lo}, {q_hi})"
            );
        }
        // The open-ended band is tail_mean, bit for bit.
        for q in [0.0, 0.5, 0.95, 0.99] {
            assert_eq!(
                sk.tail_mean_between(q, 1.0).unwrap().to_bits(),
                sk.tail_mean(q).to_bits()
            );
        }
    }

    #[test]
    fn tail_mean_between_partitions_the_tail() {
        // Adjacent bands cover disjoint ranks: their count-weighted
        // means recombine to the whole tail mean.
        let xs: Vec<f64> = (0..500).map(|i| ((i * 31) % 977) as f64).collect();
        let mut sk = QuantileSketch::new(1024);
        sk.extend(&xs);
        let n = xs.len() as f64;
        let (a, b, c) = (0.9, 0.96, 1.0);
        let ranks = |q_lo: f64, q_hi: f64| {
            let lo = ((q_lo * n).ceil() as u64).min(xs.len() as u64 - 1);
            let hi = if q_hi >= 1.0 {
                xs.len() as u64
            } else {
                ((q_hi * n).ceil() as u64).min(xs.len() as u64)
            };
            (hi - lo) as f64
        };
        let (w1, w2) = (ranks(a, b), ranks(b, c));
        let recombined = (sk.tail_mean_between(a, b).unwrap() * w1
            + sk.tail_mean_between(b, c).unwrap() * w2)
            / (w1 + w2);
        assert!((recombined - sk.tail_mean(a)).abs() < 1e-9 * recombined.abs().max(1.0));
    }

    #[test]
    fn tail_mean_between_empty_band_is_none() {
        let mut sk = QuantileSketch::new(8);
        sk.extend(&[1.0, 2.0, 3.0, 4.0]);
        // Both levels land on the same rank at n = 4.
        assert_eq!(sk.tail_mean_between(0.5, 0.5), None);
        // Degenerate zero-width band below the clamp row.
        assert_eq!(sk.tail_mean_between(0.1, 0.1), None);
        // A non-empty sliver still answers.
        assert!(sk.tail_mean_between(0.5, 0.75).is_some());
    }

    #[test]
    #[should_panic]
    fn tail_mean_between_inverted_band_panics() {
        let mut sk = QuantileSketch::new(8);
        sk.push(1.0);
        sk.tail_mean_between(0.9, 0.1);
    }

    #[test]
    fn non_finite_values_order_like_total_cmp() {
        let mut sk = QuantileSketch::new(16);
        sk.extend(&[1.0, f64::NAN, 3.0, f64::NEG_INFINITY, 2.0]);
        assert_eq!(sk.min(), f64::NEG_INFINITY);
        assert!(sk.max().is_nan());
        assert!(sk.quantile(1.0).is_nan());
        assert_eq!(sk.quantile(0.0), f64::NEG_INFINITY);
        assert!(sk.tail_mean(0.9).is_nan());
    }

    #[test]
    fn exact_at_exactly_k_compacts_at_k_plus_one() {
        // Boundary regression: a pooled sample of exactly k values must
        // stay on the exact path (the docs promise "up to k").
        let mut sk = QuantileSketch::new(8);
        for i in 0..8 {
            sk.push(i as f64);
        }
        assert!(sk.is_exact());
        assert_eq!(sk.quantile(0.5), 3.5);
        sk.push(8.0);
        assert!(!sk.is_exact());
        assert_eq!(sk.count(), 9);
    }

    #[test]
    fn single_value_and_empty_edges() {
        let mut sk = QuantileSketch::new(8);
        sk.push(42.0);
        assert_eq!(sk.quantile(0.0), 42.0);
        assert_eq!(sk.quantile(1.0), 42.0);
        assert_eq!(sk.tail_mean(0.5), 42.0);
        let empty = QuantileSketch::default();
        assert_eq!(empty.count(), 0);
        assert!(empty.is_exact());
    }

    #[test]
    #[should_panic]
    fn empty_quantile_panics() {
        QuantileSketch::default().quantile(0.5);
    }

    #[test]
    #[should_panic]
    fn mismatched_k_merge_panics() {
        let mut a = QuantileSketch::new(8);
        a.merge(&QuantileSketch::new(16));
    }

    #[test]
    #[should_panic]
    fn odd_capacity_rejected() {
        QuantileSketch::new(9);
    }
}
