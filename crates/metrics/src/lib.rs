//! # riskpipe-metrics
//!
//! Portfolio risk metrics computed from Year-Loss Tables — the numbers
//! the paper says reinsurers derive from the YLT "for both internal risk
//! management and reporting to regulators and rating agencies":
//!
//! * **EP curves** ([`EpCurve`]): aggregate (AEP) and occurrence (OEP)
//!   exceedance-probability curves;
//! * **PML** ([`EpCurve::pml`]): probable maximum loss at a return
//!   period (the `1 − 1/T` quantile);
//! * **VaR / TVaR** ([`var`], [`tvar`], [`RiskMeasures`]): quantile and
//!   tail-conditional-expectation risk measures, with order-statistic
//!   and bootstrap confidence intervals;
//! * **convergence diagnostics** ([`ConvergenceStudy`]): how metric
//!   estimates stabilise with trial count — the justification for the
//!   paper's "the more simulation trials you can run, the better";
//! * **streaming quantile sketch** ([`QuantileSketch`]): a mergeable,
//!   deterministic fixed-memory summary so sweeps pool EP/VaR/TVaR
//!   across thousands of scenarios without retaining any per-scenario
//!   YLT (exact small-n path, bounded-error sketched path).

#![warn(missing_docs)]

mod bootstrap;
pub mod convergence;
mod ep;
mod measures;
mod sketch;

pub use bootstrap::{bootstrap_ci, BootstrapConfig};
pub use convergence::{ConvergenceRow, ConvergenceStudy, Metric};
pub use ep::{
    standard_points_from, standard_points_from_batch, EpCurve, EpKind, EpPoint,
    STANDARD_RETURN_PERIODS,
};
pub use measures::{tvar, tvar_sorted, var, var_sorted, RiskMeasures};
pub use sketch::QuantileSketch;
