//! Exceedance-probability curves and probable maximum loss.
//!
//! An EP curve maps a loss threshold to the annual probability of
//! exceeding it. The **AEP** curve uses each trial's aggregate annual
//! loss; the **OEP** curve uses each trial's maximum single-occurrence
//! loss. PML at return period `T` is the loss with exceedance
//! probability `1/T` — the `1 − 1/T` quantile of the relevant empirical
//! distribution.

use riskpipe_tables::Ylt;
use riskpipe_types::stats::quantile_sorted;

/// The standard reporting return periods (years) EP tables are sampled
/// at.
pub const STANDARD_RETURN_PERIODS: [f64; 8] = [2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0];

/// Sample [`EpPoint`]s at every standard return period `trials` can
/// resolve, pulling losses from any quantile function — an exact
/// sorted sample ([`EpCurve::standard_points`]) or a streaming sketch
/// pooled across a sweep
/// ([`QuantileSketch::quantile`](crate::QuantileSketch::quantile)).
pub fn standard_points_from(trials: u64, mut loss_at_q: impl FnMut(f64) -> f64) -> Vec<EpPoint> {
    standard_points_from_batch(trials, |qs| qs.iter().map(|&q| loss_at_q(q)).collect())
}

/// Batched variant of [`standard_points_from`]: the source receives
/// every quantile level in one call, for sources where a batch query
/// amortises setup — a sketch's
/// [`quantiles`](crate::QuantileSketch::quantiles) gathers and sorts
/// its retained items once instead of once per point. Not called at
/// all when `trials` resolves no standard return period.
pub fn standard_points_from_batch(
    trials: u64,
    batch_loss_at_q: impl FnOnce(&[f64]) -> Vec<f64>,
) -> Vec<EpPoint> {
    let rps: Vec<f64> = STANDARD_RETURN_PERIODS
        .iter()
        .copied()
        .filter(|&rp| rp <= trials as f64)
        .collect();
    if rps.is_empty() {
        return Vec::new();
    }
    let qs: Vec<f64> = rps.iter().map(|&rp| 1.0 - 1.0 / rp).collect();
    let losses = batch_loss_at_q(&qs);
    assert_eq!(
        losses.len(),
        qs.len(),
        "batch source must answer every level"
    );
    rps.into_iter()
        .zip(losses)
        .map(|(rp, loss)| EpPoint {
            return_period: rp,
            probability: 1.0 / rp,
            loss,
        })
        .collect()
}

/// Which loss perspective a curve is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpKind {
    /// Aggregate exceedance probability (annual aggregate losses).
    Aep,
    /// Occurrence exceedance probability (maximum occurrence losses).
    Oep,
}

/// One point of an EP curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpPoint {
    /// Return period in years.
    pub return_period: f64,
    /// Exceedance probability (= 1 / return period).
    pub probability: f64,
    /// Loss at that return period.
    pub loss: f64,
}

/// An empirical exceedance-probability curve.
#[derive(Debug, Clone)]
pub struct EpCurve {
    kind: EpKind,
    /// Losses sorted ascending.
    sorted: Vec<f64>,
}

impl EpCurve {
    /// Build the aggregate (AEP) curve from a YLT.
    pub fn aggregate(ylt: &Ylt) -> Self {
        Self {
            kind: EpKind::Aep,
            sorted: ylt.sorted_agg_losses(),
        }
    }

    /// Build the occurrence (OEP) curve from a YLT.
    pub fn occurrence(ylt: &Ylt) -> Self {
        Self {
            kind: EpKind::Oep,
            sorted: ylt.sorted_max_occ_losses(),
        }
    }

    /// Build from a raw loss sample (sorted internally).
    pub fn from_losses(kind: EpKind, mut losses: Vec<f64>) -> Self {
        assert!(!losses.is_empty(), "EP curve needs at least one loss");
        losses.sort_unstable_by(f64::total_cmp);
        Self::from_sorted(kind, losses)
    }

    /// Build from an already-sorted (ascending, `total_cmp` order) loss
    /// sample without re-sorting — the report path sorts each YLT
    /// column once and shares the buffer between [`EpCurve`] and
    /// [`RiskMeasures`](crate::RiskMeasures).
    pub fn from_sorted(kind: EpKind, sorted: Vec<f64>) -> Self {
        assert!(!sorted.is_empty(), "EP curve needs at least one loss");
        debug_assert!(
            sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            "losses must be sorted ascending"
        );
        Self { kind, sorted }
    }

    /// The curve's perspective.
    pub fn kind(&self) -> EpKind {
        self.kind
    }

    /// Number of trials behind the curve.
    pub fn trials(&self) -> usize {
        self.sorted.len()
    }

    /// Empirical probability that the annual loss exceeds `threshold`.
    pub fn prob_exceed(&self, threshold: f64) -> f64 {
        // Count losses strictly greater via binary search on the sorted
        // slice (partition_point gives the first index > threshold).
        let idx = self.sorted.partition_point(|&l| l <= threshold);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// Loss at a return period: the `1 − 1/T` quantile. `T` must exceed
    /// 1 year and should not exceed the trial count (beyond it, the
    /// empirical quantile saturates at the sample maximum).
    pub fn loss_at_return_period(&self, years: f64) -> f64 {
        assert!(years > 1.0, "return period must exceed 1 year");
        let q = 1.0 - 1.0 / years;
        quantile_sorted(&self.sorted, q)
    }

    /// Probable maximum loss at a return period — the industry name for
    /// [`EpCurve::loss_at_return_period`].
    pub fn pml(&self, years: f64) -> f64 {
        self.loss_at_return_period(years)
    }

    /// The curve sampled at standard reporting return periods
    /// (those not exceeding the trial count).
    pub fn standard_points(&self) -> Vec<EpPoint> {
        standard_points_from(self.sorted.len() as u64, |q| {
            quantile_sorted(&self.sorted, q)
        })
    }

    /// The full curve as `n` evenly spaced quantile points (for
    /// plotting / figure regeneration).
    pub fn sample_points(&self, n: usize) -> Vec<EpPoint> {
        assert!(n >= 2);
        (1..=n)
            .map(|i| {
                let q = i as f64 / (n + 1) as f64;
                let rp = 1.0 / (1.0 - q);
                EpPoint {
                    return_period: rp,
                    probability: 1.0 - q,
                    loss: quantile_sorted(&self.sorted, q),
                }
            })
            .collect()
    }

    /// The sorted losses backing the curve.
    pub fn sorted_losses(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_types::TrialId;

    fn ylt_linear(n: usize) -> Ylt {
        // Trial t has aggregate loss t and max-occurrence loss t/2.
        let mut y = Ylt::zeroed(n);
        for t in 0..n {
            y.set_trial(TrialId::new(t as u32), t as f64, t as f64 / 2.0, 1);
        }
        y
    }

    #[test]
    fn prob_exceed_on_known_sample() {
        let curve = EpCurve::from_losses(EpKind::Aep, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(curve.prob_exceed(0.0), 1.0);
        assert_eq!(curve.prob_exceed(1.0), 0.75);
        assert_eq!(curve.prob_exceed(2.5), 0.5);
        assert_eq!(curve.prob_exceed(4.0), 0.0);
    }

    #[test]
    fn pml_is_the_right_quantile() {
        // Uniform losses 0..999: the 100-year PML is the 0.99 quantile.
        let curve = EpCurve::aggregate(&ylt_linear(1000));
        let pml100 = curve.pml(100.0);
        assert!((pml100 - 0.99 * 999.0).abs() < 1.0, "pml={pml100}");
        let pml10 = curve.pml(10.0);
        assert!((pml10 - 0.9 * 999.0).abs() < 1.0);
        assert!(pml100 > pml10);
    }

    #[test]
    fn occurrence_curve_uses_max_losses() {
        let ylt = ylt_linear(100);
        let aep = EpCurve::aggregate(&ylt);
        let oep = EpCurve::occurrence(&ylt);
        assert_eq!(oep.kind(), EpKind::Oep);
        // Max-occurrence losses are half the aggregate in this fixture.
        assert!((oep.pml(50.0) - aep.pml(50.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn standard_points_respect_trial_count() {
        let small = EpCurve::aggregate(&ylt_linear(30));
        let rps: Vec<f64> = small
            .standard_points()
            .iter()
            .map(|p| p.return_period)
            .collect();
        assert_eq!(rps, vec![2.0, 5.0, 10.0, 25.0]);
        let big = EpCurve::aggregate(&ylt_linear(1000));
        assert_eq!(big.standard_points().len(), 8);
    }

    #[test]
    fn sample_points_are_monotone() {
        let curve = EpCurve::aggregate(&ylt_linear(500));
        let pts = curve.sample_points(50);
        assert_eq!(pts.len(), 50);
        for w in pts.windows(2) {
            assert!(w[1].loss >= w[0].loss);
            assert!(w[1].return_period > w[0].return_period);
            assert!(w[1].probability < w[0].probability);
        }
    }

    #[test]
    #[should_panic]
    fn return_period_below_one_year_panics() {
        EpCurve::aggregate(&ylt_linear(10)).pml(1.0);
    }

    #[test]
    #[should_panic]
    fn empty_losses_panic() {
        EpCurve::from_losses(EpKind::Aep, vec![]);
    }

    #[test]
    fn from_sorted_matches_from_losses() {
        let losses: Vec<f64> = (0..200).map(|i| ((i * 37) % 97) as f64).collect();
        let a = EpCurve::from_losses(EpKind::Aep, losses.clone());
        let b = EpCurve::from_sorted(EpKind::Aep, a.sorted_losses().to_vec());
        assert_eq!(a.pml(50.0).to_bits(), b.pml(50.0).to_bits());
        assert_eq!(a.standard_points(), b.standard_points());
    }

    #[test]
    fn standard_points_from_any_quantile_source() {
        let curve = EpCurve::aggregate(&ylt_linear(300));
        let via_helper = standard_points_from(300, |q| quantile_sorted(curve.sorted_losses(), q));
        assert_eq!(via_helper, curve.standard_points());
        let rps: Vec<f64> = via_helper.iter().map(|p| p.return_period).collect();
        assert_eq!(rps, vec![2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0]);
    }
}
