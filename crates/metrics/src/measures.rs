//! VaR and TVaR: quantile and tail-conditional risk measures.

use riskpipe_tables::Ylt;
use riskpipe_types::stats::{quantile_sorted, tail_mean_sorted};

/// Value-at-Risk at level `alpha` (e.g. 0.99): the `alpha`-quantile of
/// the loss distribution. Input need not be sorted.
pub fn var(losses: &[f64], alpha: f64) -> f64 {
    let mut sorted = losses.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    var_sorted(&sorted, alpha)
}

/// [`var`] on an already-sorted ascending sample.
pub fn var_sorted(sorted: &[f64], alpha: f64) -> f64 {
    assert!((0.0..1.0).contains(&alpha), "alpha must be in [0,1)");
    quantile_sorted(sorted, alpha)
}

/// Tail Value-at-Risk at level `alpha`: the mean of losses at or above
/// the `alpha`-quantile (the discrete estimator). Input need not be
/// sorted.
pub fn tvar(losses: &[f64], alpha: f64) -> f64 {
    let mut sorted = losses.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    tvar_sorted(&sorted, alpha)
}

/// [`tvar`] on an already-sorted ascending sample.
pub fn tvar_sorted(sorted: &[f64], alpha: f64) -> f64 {
    assert!((0.0..1.0).contains(&alpha), "alpha must be in [0,1)");
    tail_mean_sorted(sorted, alpha)
}

/// The standard bundle of portfolio risk measures derived from a YLT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskMeasures {
    /// Mean annual loss (pure premium).
    pub mean: f64,
    /// Standard deviation of annual loss.
    pub sd: f64,
    /// 99% Value-at-Risk of annual aggregate loss.
    pub var99: f64,
    /// 99% Tail Value-at-Risk of annual aggregate loss.
    pub tvar99: f64,
    /// 99.6% VaR (the 250-year PML used by rating agencies).
    pub var996: f64,
    /// 100-year occurrence PML.
    pub oep_pml100: f64,
}

impl RiskMeasures {
    /// Compute the bundle from a YLT.
    pub fn from_ylt(ylt: &Ylt) -> Self {
        let agg = ylt.sorted_agg_losses();
        let occ = ylt.sorted_max_occ_losses();
        let stats: riskpipe_types::RunningStats = ylt.agg_losses().iter().copied().collect();
        Self::from_sorted(&agg, &occ, &stats)
    }

    /// Compute the bundle from already-sorted loss columns plus running
    /// moments over the *unsorted* aggregate column (Welford order
    /// matters for bit-stability). Lets the report path sort each YLT
    /// column exactly once and share the buffers with
    /// [`EpCurve::from_sorted`](crate::EpCurve::from_sorted) instead of
    /// every consumer re-sorting the same losses.
    pub fn from_sorted(
        agg_sorted: &[f64],
        occ_sorted: &[f64],
        agg_stats: &riskpipe_types::RunningStats,
    ) -> Self {
        Self {
            mean: agg_stats.mean(),
            sd: agg_stats.sd(),
            var99: var_sorted(agg_sorted, 0.99),
            tvar99: tvar_sorted(agg_sorted, 0.99),
            var996: var_sorted(agg_sorted, 0.996),
            oep_pml100: quantile_sorted(occ_sorted, 1.0 - 1.0 / 100.0),
        }
    }
}

impl std::fmt::Display for RiskMeasures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "mean annual loss : {:>16.2}", self.mean)?;
        writeln!(f, "sd annual loss   : {:>16.2}", self.sd)?;
        writeln!(f, "VaR 99%          : {:>16.2}", self.var99)?;
        writeln!(f, "TVaR 99%         : {:>16.2}", self.tvar99)?;
        writeln!(f, "VaR 99.6%        : {:>16.2}", self.var996)?;
        write!(f, "OEP PML 100y     : {:>16.2}", self.oep_pml100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_types::TrialId;

    #[test]
    fn var_on_uniform_grid() {
        let losses: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert!((var(&losses, 0.99) - 989.01).abs() < 0.02);
        assert!((var(&losses, 0.5) - 499.5).abs() < 0.01);
    }

    #[test]
    fn tvar_dominates_var() {
        let losses: Vec<f64> = (0..1000).map(|i| (i as f64).powf(1.3)).collect();
        for &a in &[0.9, 0.95, 0.99] {
            assert!(tvar(&losses, a) >= var(&losses, a), "alpha={a}");
        }
    }

    #[test]
    fn tvar_known_value() {
        let losses: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        // alpha = 0.8 → tail starts at index ceil(8) = 8 → mean(9, 10).
        assert_eq!(tvar(&losses, 0.8), 9.5);
        // alpha = 0 → whole-sample mean.
        assert_eq!(tvar(&losses, 0.0), 5.5);
    }

    #[test]
    fn tvar_is_coherent_under_mixing() {
        // Subadditivity on a discrete sample: TVaR(A+B) <= TVaR(A)+TVaR(B)
        // when both are computed trial-aligned.
        let a: Vec<f64> = (0..500).map(|i| ((i * 7919) % 500) as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| ((i * 104729) % 500) as f64).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert!(tvar(&sum, 0.95) <= tvar(&a, 0.95) + tvar(&b, 0.95) + 1e-9);
    }

    #[test]
    fn unsorted_input_handled() {
        let mut losses: Vec<f64> = (0..100).map(|i| i as f64).collect();
        losses.reverse();
        assert_eq!(var(&losses, 0.5), 49.5);
    }

    #[test]
    fn from_sorted_matches_from_ylt_bitwise() {
        let mut ylt = Ylt::zeroed(500);
        for t in 0..500 {
            ylt.set_trial(
                TrialId::new(t as u32),
                ((t * 31) % 499) as f64,
                (t % 97) as f64,
                1,
            );
        }
        let whole = RiskMeasures::from_ylt(&ylt);
        let agg = ylt.sorted_agg_losses();
        let occ = ylt.sorted_max_occ_losses();
        let stats: riskpipe_types::RunningStats = ylt.agg_losses().iter().copied().collect();
        let shared = RiskMeasures::from_sorted(&agg, &occ, &stats);
        for (a, b) in [
            (whole.mean, shared.mean),
            (whole.sd, shared.sd),
            (whole.var99, shared.var99),
            (whole.tvar99, shared.tvar99),
            (whole.var996, shared.var996),
            (whole.oep_pml100, shared.oep_pml100),
        ] {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn measures_from_ylt_are_consistent() {
        let mut ylt = Ylt::zeroed(1000);
        for t in 0..1000 {
            ylt.set_trial(TrialId::new(t as u32), t as f64, t as f64 * 0.6, 1);
        }
        let m = RiskMeasures::from_ylt(&ylt);
        assert!((m.mean - 499.5).abs() < 1e-9);
        assert!(m.tvar99 >= m.var99);
        assert!(m.var996 >= m.var99);
        assert!((m.oep_pml100 - 0.6 * m.var99 * (989.01f64 / 989.01)).abs() < 6.0);
        let text = m.to_string();
        assert!(text.contains("TVaR 99%"));
    }

    #[test]
    #[should_panic]
    fn alpha_one_rejected() {
        var(&[1.0, 2.0], 1.0);
    }
}
