//! Bootstrap confidence intervals for risk measures.
//!
//! Tail metrics from Monte-Carlo YLTs are themselves random; reporting
//! them without sampling error invites false precision. The
//! nonparametric bootstrap — resample trials with replacement, recompute
//! the metric — gives distribution-free intervals.

use riskpipe_types::rng::{Pcg64, Rng64};
use riskpipe_types::stats::quantile_sorted;

/// Bootstrap configuration.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// Number of bootstrap resamples.
    pub resamples: usize,
    /// Two-sided confidence level (e.g. 0.90).
    pub confidence: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            resamples: 200,
            confidence: 0.90,
            seed: 0xB007,
        }
    }
}

/// A bootstrap interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapInterval {
    /// The metric on the original sample.
    pub point: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
}

/// Bootstrap a statistic of a loss sample.
///
/// `statistic` receives a resampled loss vector (unsorted) and returns
/// the metric value.
pub fn bootstrap_ci(
    losses: &[f64],
    cfg: &BootstrapConfig,
    statistic: impl Fn(&[f64]) -> f64,
) -> BootstrapInterval {
    assert!(!losses.is_empty(), "bootstrap of empty sample");
    assert!(cfg.resamples >= 10, "need at least 10 resamples");
    assert!(
        (0.5..1.0).contains(&cfg.confidence),
        "confidence must be in [0.5, 1)"
    );
    let point = statistic(losses);
    let n = losses.len();
    let mut rng = Pcg64::new(cfg.seed);
    let mut estimates = Vec::with_capacity(cfg.resamples);
    let mut resample = vec![0.0f64; n];
    for _ in 0..cfg.resamples {
        for slot in resample.iter_mut() {
            *slot = losses[rng.next_below(n as u32) as usize];
        }
        estimates.push(statistic(&resample));
    }
    estimates.sort_unstable_by(f64::total_cmp);
    let tail = (1.0 - cfg.confidence) / 2.0;
    BootstrapInterval {
        point,
        lo: quantile_sorted(&estimates, tail),
        hi: quantile_sorted(&estimates, 1.0 - tail),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::tvar;

    fn sample() -> Vec<f64> {
        // Deterministic skewed sample.
        (0..2000).map(|i| ((i * 7919) % 2000) as f64).collect()
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let losses = sample();
        let ci = bootstrap_ci(&losses, &BootstrapConfig::default(), |xs| {
            xs.iter().sum::<f64>() / xs.len() as f64
        });
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(ci.hi > ci.lo);
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        let small: Vec<f64> = sample().into_iter().take(100).collect();
        let large = sample();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let ci_small = bootstrap_ci(&small, &BootstrapConfig::default(), mean);
        let ci_large = bootstrap_ci(&large, &BootstrapConfig::default(), mean);
        assert!(
            ci_large.hi - ci_large.lo < ci_small.hi - ci_small.lo,
            "large CI {} vs small CI {}",
            ci_large.hi - ci_large.lo,
            ci_small.hi - ci_small.lo
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let losses = sample();
        let cfg = BootstrapConfig::default();
        let f = |xs: &[f64]| tvar(xs, 0.95);
        let a = bootstrap_ci(&losses, &cfg, f);
        let b = bootstrap_ci(&losses, &cfg, f);
        assert_eq!(a, b);
    }

    #[test]
    fn tvar_interval_sits_in_tail() {
        let losses = sample();
        let ci = bootstrap_ci(&losses, &BootstrapConfig::default(), |xs| tvar(xs, 0.99));
        let mean = losses.iter().sum::<f64>() / losses.len() as f64;
        assert!(ci.lo > mean, "tail CI should exceed the mean");
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        bootstrap_ci(&[], &BootstrapConfig::default(), |_| 0.0);
    }
}
