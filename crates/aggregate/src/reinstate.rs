//! Reinstatement premiums: pricing the annual-aggregate structure of
//! an excess-of-loss layer.
//!
//! A catastrophe XL layer of width `L` usually carries `k` *paid
//! reinstatements*: the aggregate limit is `(k+1)·L`, and each time a
//! limit is consumed the cedant pays a premium pro rata to the amount
//! reinstated to restore cover. This is the financial structure the
//! aggregate-analysis literature (the paper's ref \[5\], Meyers et al.)
//! prices from exactly the per-layer trial recoveries our stage-2
//! engines already produce — so the module is a pure YLT consumer: no
//! engine changes, bit-identical engines stay bit-identical.
//!
//! Pricing identity: with base premium `P` and reinstatement rates
//! `c_i` (fraction of `P` per full limit reinstated), expected premium
//! income is `P · (1 + Σᵢ cᵢ·E[Aᵢ]/L)` where `Aᵢ` is the portion of
//! the `i`-th limit consumed. Setting income equal to the expected
//! recovery gives the market's standard base-premium formula.

use crate::terms::LayerTerms;
use riskpipe_tables::Ylt;
use riskpipe_types::{KahanSum, RiskError, RiskResult};

/// Reinstatement provisions of a layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ReinstatementTerms {
    /// Premium rate per reinstatement, as a fraction of the base
    /// premium per full limit reinstated (`1.0` = "at 100%", `0.0` =
    /// free). One entry per paid reinstatement; order is consumption
    /// order.
    pub premium_pcts: Vec<f64>,
}

impl ReinstatementTerms {
    /// `count` reinstatements, all at the same rate.
    pub fn flat(count: u32, pct: f64) -> Self {
        Self {
            premium_pcts: vec![pct; count as usize],
        }
    }

    /// `count` free reinstatements.
    pub fn free(count: u32) -> Self {
        Self::flat(count, 0.0)
    }

    /// Number of paid reinstatements.
    pub fn count(&self) -> u32 {
        self.premium_pcts.len() as u32
    }

    /// Validate the provisions.
    pub fn validate(&self) -> RiskResult<()> {
        if self
            .premium_pcts
            .iter()
            .any(|&p| !(0.0..=10.0).contains(&p))
        {
            return Err(RiskError::invalid(
                "reinstatement rates must be finite, non-negative and sane (≤ 1000%)",
            ));
        }
        Ok(())
    }

    /// The aggregate limit implied by `occ_limit` with these
    /// reinstatements: the original limit plus one refill per
    /// reinstatement.
    pub fn implied_agg_limit(&self, occ_limit: f64) -> f64 {
        occ_limit * (self.count() as f64 + 1.0)
    }

    /// Set a layer's aggregate limit consistently with these
    /// provisions.
    pub fn apply_to(&self, mut terms: LayerTerms) -> RiskResult<LayerTerms> {
        if !terms.occ_limit.is_finite() {
            return Err(RiskError::invalid(
                "reinstatements need a finite occurrence limit",
            ));
        }
        terms.agg_limit = self.implied_agg_limit(terms.occ_limit);
        terms.validate()?;
        Ok(terms)
    }

    /// The premium fraction (of the base premium) a single trial
    /// triggers, given the trial's 100%-share aggregate recovery and
    /// the occurrence limit: `Σᵢ cᵢ · clamp(R − (i−1)·L, 0, L) / L`.
    pub fn premium_fraction(&self, recovered_100: f64, occ_limit: f64) -> f64 {
        debug_assert!(occ_limit > 0.0 && occ_limit.is_finite());
        let mut frac = 0.0;
        for (i, &pct) in self.premium_pcts.iter().enumerate() {
            let lower = i as f64 * occ_limit;
            let consumed = (recovered_100 - lower).clamp(0.0, occ_limit);
            if consumed <= 0.0 {
                break; // limits consume in order
            }
            frac += pct * consumed / occ_limit;
        }
        frac
    }
}

/// The priced layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReinstatementPricing {
    /// Expected annual recovery (at the layer's share).
    pub expected_recovery: f64,
    /// Base (deposit) premium solving income = expected recovery.
    pub base_premium: f64,
    /// Expected reinstatement premium income.
    pub expected_reinstatement_premium: f64,
    /// Expected premium fraction `E[Σ cᵢ Aᵢ / L]`.
    pub expected_premium_fraction: f64,
    /// Base premium over occurrence limit — the market's quoted
    /// rate-on-line at the layer's share.
    pub rate_on_line: f64,
}

/// Price one layer's reinstatement structure from its per-layer YLT
/// (as produced by [`crate::run_per_layer`]).
///
/// The YLT's aggregate column is the share-scaled recovery; the
/// reinstatement mechanics operate at 100% of the layer, so the
/// premium fraction is computed on `agg_loss / share` and the
/// resulting premiums are quoted at the layer's share (consistent with
/// the recovery).
pub fn price_with_reinstatements(
    terms: &LayerTerms,
    reinstatements: &ReinstatementTerms,
    layer_ylt: &Ylt,
) -> RiskResult<ReinstatementPricing> {
    terms.validate()?;
    reinstatements.validate()?;
    if !terms.occ_limit.is_finite() {
        return Err(RiskError::invalid(
            "reinstatements need a finite occurrence limit",
        ));
    }
    if layer_ylt.trials() == 0 {
        return Err(RiskError::invalid("cannot price an empty YLT"));
    }
    let implied = reinstatements.implied_agg_limit(terms.occ_limit);
    if terms.agg_limit.is_finite() && terms.agg_limit > implied * (1.0 + 1e-9) {
        return Err(RiskError::invalid(format!(
            "aggregate limit {} exceeds the (count+1)·occ_limit = {} the reinstatements provide",
            terms.agg_limit, implied
        )));
    }

    let trials = layer_ylt.trials() as f64;
    let recovery_sum: KahanSum = layer_ylt.agg_losses().iter().copied().collect();
    let expected_recovery = recovery_sum.total() / trials;

    let frac_sum: KahanSum = layer_ylt
        .agg_losses()
        .iter()
        .map(|&r| reinstatements.premium_fraction(r / terms.share, terms.occ_limit))
        .collect();
    let expected_premium_fraction = frac_sum.total() / trials;

    let base_premium = expected_recovery / (1.0 + expected_premium_fraction);
    Ok(ReinstatementPricing {
        expected_recovery,
        base_premium,
        expected_reinstatement_premium: base_premium * expected_premium_fraction,
        expected_premium_fraction,
        rate_on_line: base_premium / (terms.occ_limit * terms.share),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_types::TrialId;

    fn ylt_of(recoveries: &[f64]) -> Ylt {
        let mut y = Ylt::zeroed(recoveries.len());
        for (t, &r) in recoveries.iter().enumerate() {
            y.set_trial(TrialId::new(t as u32), r, r, u32::from(r > 0.0));
        }
        y
    }

    fn xl(l: f64, k: u32) -> LayerTerms {
        LayerTerms {
            occ_retention: 0.0,
            occ_limit: l,
            agg_retention: 0.0,
            agg_limit: (k as f64 + 1.0) * l,
            share: 1.0,
        }
    }

    #[test]
    fn premium_fraction_consumes_limits_in_order() {
        let r = ReinstatementTerms::flat(2, 1.0); // two at 100%
        let l = 100.0;
        assert_eq!(r.premium_fraction(0.0, l), 0.0);
        assert_eq!(r.premium_fraction(50.0, l), 0.5); // half of 1st
        assert_eq!(r.premium_fraction(100.0, l), 1.0); // 1st full
        assert_eq!(r.premium_fraction(150.0, l), 1.5); // 1st + half 2nd
        assert_eq!(r.premium_fraction(200.0, l), 2.0); // both full
                                                       // The 3rd limit (the last cover) triggers nothing.
        assert_eq!(r.premium_fraction(300.0, l), 2.0);
        assert_eq!(r.premium_fraction(1e9, l), 2.0);
    }

    #[test]
    fn distinct_rates_apply_per_reinstatement() {
        let r = ReinstatementTerms {
            premium_pcts: vec![1.0, 0.5],
        };
        let l = 100.0;
        assert_eq!(r.premium_fraction(150.0, l), 1.0 + 0.25);
        assert_eq!(r.premium_fraction(200.0, l), 1.5);
    }

    #[test]
    fn hand_checked_pricing() {
        // L = 100, one reinstatement at 100%. Trials: 50 and 150.
        // fractions: 0.5 and 1.0 → E = 0.75; E[R] = 100.
        // base = 100 / 1.75; reinstatement premium = base × 0.75.
        let terms = xl(100.0, 1);
        let r = ReinstatementTerms::flat(1, 1.0);
        let p = price_with_reinstatements(&terms, &r, &ylt_of(&[50.0, 150.0])).unwrap();
        assert!((p.expected_recovery - 100.0).abs() < 1e-12);
        assert!((p.base_premium - 100.0 / 1.75).abs() < 1e-9);
        assert!((p.expected_reinstatement_premium - p.base_premium * 0.75).abs() < 1e-9);
        // Income balances the expected loss.
        let income = p.base_premium + p.expected_reinstatement_premium;
        assert!((income - p.expected_recovery).abs() < 1e-9);
        assert!((p.rate_on_line - p.base_premium / 100.0).abs() < 1e-15);
    }

    #[test]
    fn free_reinstatements_price_at_pure_premium() {
        let terms = xl(100.0, 2);
        let r = ReinstatementTerms::free(2);
        let p = price_with_reinstatements(&terms, &r, &ylt_of(&[80.0, 250.0])).unwrap();
        assert_eq!(p.expected_premium_fraction, 0.0);
        assert!((p.base_premium - p.expected_recovery).abs() < 1e-12);
        assert_eq!(p.expected_reinstatement_premium, 0.0);
    }

    #[test]
    fn paid_reinstatements_lower_the_deposit_premium() {
        let terms = xl(100.0, 1);
        let ylt = ylt_of(&[0.0, 40.0, 120.0, 200.0]);
        let free = price_with_reinstatements(&terms, &ReinstatementTerms::free(1), &ylt).unwrap();
        let cheap =
            price_with_reinstatements(&terms, &ReinstatementTerms::flat(1, 0.5), &ylt).unwrap();
        let full =
            price_with_reinstatements(&terms, &ReinstatementTerms::flat(1, 1.0), &ylt).unwrap();
        assert!(full.base_premium < cheap.base_premium);
        assert!(cheap.base_premium < free.base_premium);
        // All three collect the same expected total income.
        for p in [&free, &cheap, &full] {
            let income = p.base_premium + p.expected_reinstatement_premium;
            assert!((income - p.expected_recovery).abs() < 1e-9 * p.expected_recovery);
        }
    }

    #[test]
    fn share_is_handled_consistently() {
        // Same layer at 50% share: recoveries and premiums halve, the
        // premium fraction (a ratio) is unchanged.
        let full = xl(100.0, 1);
        let half = LayerTerms { share: 0.5, ..full };
        let r = ReinstatementTerms::flat(1, 1.0);
        let p_full = price_with_reinstatements(&full, &r, &ylt_of(&[50.0, 150.0])).unwrap();
        let p_half = price_with_reinstatements(&half, &r, &ylt_of(&[25.0, 75.0])).unwrap();
        assert!(
            (p_half.expected_premium_fraction - p_full.expected_premium_fraction).abs() < 1e-12
        );
        assert!((p_half.base_premium - p_full.base_premium / 2.0).abs() < 1e-9);
        assert!((p_half.rate_on_line - p_full.rate_on_line).abs() < 1e-12);
    }

    #[test]
    fn apply_to_sets_consistent_aggregate_limit() {
        let r = ReinstatementTerms::flat(3, 1.0);
        let t = r.apply_to(LayerTerms::xl(50.0, 200.0)).unwrap();
        assert_eq!(t.agg_limit, 800.0);
        // Infinite occurrence limit is meaningless with reinstatements.
        assert!(r.apply_to(LayerTerms::pass_through()).is_err());
    }

    #[test]
    fn validation_errors() {
        let terms = xl(100.0, 1);
        let ylt = ylt_of(&[10.0]);
        // Negative rate.
        let bad = ReinstatementTerms {
            premium_pcts: vec![-0.1],
        };
        assert!(price_with_reinstatements(&terms, &bad, &ylt).is_err());
        // Aggregate limit beyond what the reinstatements provide.
        let too_wide = LayerTerms {
            agg_limit: 500.0,
            ..xl(100.0, 1)
        };
        assert!(
            price_with_reinstatements(&too_wide, &ReinstatementTerms::flat(1, 1.0), &ylt).is_err()
        );
        // Empty YLT.
        assert!(
            price_with_reinstatements(&terms, &ReinstatementTerms::flat(1, 1.0), &ylt_of(&[]))
                .is_err()
        );
        // Infinite occurrence limit.
        assert!(price_with_reinstatements(
            &LayerTerms::pass_through(),
            &ReinstatementTerms::flat(1, 1.0),
            &ylt
        )
        .is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn premium_fraction_is_monotone_and_bounded(
                pcts in prop::collection::vec(0.0..2.0f64, 0..4),
                l in 1.0..1e6f64,
                a in 0.0..1e7f64,
                b in 0.0..1e7f64,
            ) {
                let r = ReinstatementTerms { premium_pcts: pcts.clone() };
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let fa = r.premium_fraction(lo, l);
                let fb = r.premium_fraction(hi, l);
                prop_assert!(fa <= fb + 1e-12, "monotonicity: {fa} > {fb}");
                let cap: f64 = pcts.iter().sum();
                prop_assert!(fb <= cap + 1e-12, "bound: {fb} > {cap}");
                prop_assert!(fa >= 0.0);
            }

            #[test]
            fn expected_income_always_balances_expected_recovery(
                recoveries in prop::collection::vec(0.0..1e6f64, 1..80),
                count in 0u32..4,
                pct in 0.0..2.0f64,
                share in 0.05..1.0f64,
            ) {
                let l = 250_000.0;
                let r = ReinstatementTerms::flat(count, pct);
                let terms = LayerTerms {
                    occ_retention: 0.0,
                    occ_limit: l,
                    agg_retention: 0.0,
                    agg_limit: r.implied_agg_limit(l),
                    share,
                };
                // Recoveries must respect the layer's aggregate cap.
                let capped: Vec<f64> = recoveries
                    .iter()
                    .map(|&x| x.min(terms.agg_limit) * share)
                    .collect();
                let p = price_with_reinstatements(&terms, &r, &ylt_of(&capped)).unwrap();
                let income = p.base_premium + p.expected_reinstatement_premium;
                prop_assert!(
                    (income - p.expected_recovery).abs() <= 1e-9 * p.expected_recovery.max(1.0),
                    "income {income} vs recovery {}",
                    p.expected_recovery
                );
                prop_assert!(p.base_premium <= p.expected_recovery + 1e-9);
            }
        }
    }

    #[test]
    fn zero_recovery_book_prices_to_zero() {
        let terms = xl(100.0, 2);
        let p = price_with_reinstatements(
            &terms,
            &ReinstatementTerms::flat(2, 1.0),
            &ylt_of(&[0.0, 0.0, 0.0]),
        )
        .unwrap();
        assert_eq!(p.base_premium, 0.0);
        assert_eq!(p.expected_reinstatement_premium, 0.0);
        assert_eq!(p.rate_on_line, 0.0);
    }
}
