//! The portfolio: the set of reinsurance layers aggregate analysis
//! prices together.

use crate::terms::LayerTerms;
use riskpipe_tables::Elt;
use riskpipe_types::{LayerId, RiskError, RiskResult};
use std::sync::Arc;

/// One reinsurance contract: terms plus the ELT quantifying its risk.
#[derive(Debug, Clone)]
pub struct Layer {
    /// Contract identifier.
    pub id: LayerId,
    /// Financial terms.
    pub terms: LayerTerms,
    /// The contract's event-loss table.
    pub elt: Arc<Elt>,
}

impl Layer {
    /// Create a validated layer.
    pub fn new(id: LayerId, terms: LayerTerms, elt: Arc<Elt>) -> RiskResult<Self> {
        terms.validate()?;
        if elt.is_empty() {
            return Err(RiskError::invalid(format!("layer {id} has an empty ELT")));
        }
        Ok(Self { id, terms, elt })
    }
}

/// A portfolio of layers.
#[derive(Debug, Clone, Default)]
pub struct Portfolio {
    layers: Vec<Layer>,
}

impl Portfolio {
    /// An empty portfolio.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a layer.
    pub fn push(&mut self, layer: Layer) {
        self.layers.push(layer);
    }

    /// Build from parallel term/ELT lists, assigning dense ids.
    pub fn from_parts(parts: Vec<(LayerTerms, Arc<Elt>)>) -> RiskResult<Self> {
        let mut p = Self::new();
        for (i, (terms, elt)) in parts.into_iter().enumerate() {
            p.push(Layer::new(LayerId::new(i as u32), terms, elt)?);
        }
        Ok(p)
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the portfolio has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total ELT rows across layers (a work-size diagnostic).
    pub fn total_elt_rows(&self) -> usize {
        self.layers.iter().map(|l| l.elt.len()).sum()
    }

    /// Heap footprint of all ELTs (shared ELTs counted once).
    pub fn elt_memory_bytes(&self) -> usize {
        // Deduplicate by Arc pointer identity.
        let mut seen: Vec<*const Elt> = Vec::new();
        let mut total = 0;
        for l in &self.layers {
            let p = Arc::as_ptr(&l.elt);
            if !seen.contains(&p) {
                seen.push(p);
                total += l.elt.memory_bytes();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_tables::elt::{EltBuilder, EltRecord};
    use riskpipe_types::EventId;

    fn elt() -> Arc<Elt> {
        let mut b = EltBuilder::new();
        b.push(EltRecord {
            event_id: EventId::new(1),
            mean_loss: 100.0,
            sigma_i: 10.0,
            sigma_c: 5.0,
            exposure: 1_000.0,
        })
        .unwrap();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn from_parts_assigns_dense_ids() {
        let p = Portfolio::from_parts(vec![
            (LayerTerms::pass_through(), elt()),
            (LayerTerms::xl(10.0, 100.0), elt()),
        ])
        .unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.layers()[0].id, LayerId::new(0));
        assert_eq!(p.layers()[1].id, LayerId::new(1));
        assert_eq!(p.total_elt_rows(), 2);
    }

    #[test]
    fn invalid_terms_rejected() {
        let r = Portfolio::from_parts(vec![(
            LayerTerms {
                share: 2.0,
                ..LayerTerms::pass_through()
            },
            elt(),
        )]);
        assert!(r.is_err());
    }

    #[test]
    fn empty_elt_rejected() {
        let empty = Arc::new(EltBuilder::new().build().unwrap());
        assert!(Layer::new(LayerId::new(0), LayerTerms::pass_through(), empty).is_err());
    }

    #[test]
    fn shared_elts_counted_once() {
        let shared = elt();
        let p = Portfolio::from_parts(vec![
            (LayerTerms::pass_through(), Arc::clone(&shared)),
            (LayerTerms::pass_through(), Arc::clone(&shared)),
            (LayerTerms::pass_through(), elt()),
        ])
        .unwrap();
        let one = shared.memory_bytes();
        assert_eq!(p.elt_memory_bytes(), 2 * one);
    }
}
