//! Marginal layer pricing: what writing one more contract does to the
//! portfolio's tail — the underwriting decision the paper's intro
//! motivates ("the more data you can analyse ... the better you can
//! manage your aggregate risk, reducing earnings volatility and
//! increasing profit").
//!
//! Because the YET is shared, standalone and marginal views are
//! computed on the *same* alternative years, so the diversification
//! credit is a real co-movement measurement, not sampling noise.

use crate::engine::{AggregateEngine, AggregateOptions, CpuParallelEngine};
use crate::portfolio::{Layer, Portfolio};
use riskpipe_exec::ThreadPool;
use riskpipe_tables::yet::YearEventTable;
use riskpipe_types::stats::tail_mean_sorted;
use riskpipe_types::{RiskResult, RunningStats};
use std::sync::Arc;

/// The marginal impact of adding one layer to a portfolio.
#[derive(Debug, Clone, Copy)]
pub struct MarginalImpact {
    /// The candidate's standalone mean annual loss (its pure premium).
    pub standalone_mean: f64,
    /// The candidate's standalone TVaR at the configured level.
    pub standalone_tvar: f64,
    /// Portfolio TVaR before the candidate.
    pub portfolio_tvar_before: f64,
    /// Portfolio TVaR with the candidate added.
    pub portfolio_tvar_after: f64,
    /// Marginal TVaR = after − before: the candidate's real capital
    /// consumption.
    pub marginal_tvar: f64,
    /// Diversification credit in `[0, 1]`:
    /// `1 − marginal / standalone` (0 = perfectly co-moving with the
    /// book, 1 = free diversification).
    pub diversification_credit: f64,
    /// Tail level used.
    pub alpha: f64,
}

impl MarginalImpact {
    /// A technical premium for the candidate that charges its marginal
    /// capital at `cost_of_capital` (e.g. 0.08).
    pub fn marginal_premium(&self, cost_of_capital: f64) -> f64 {
        self.standalone_mean + cost_of_capital * self.marginal_tvar.max(0.0)
    }
}

/// Compute the marginal impact of `candidate` on `portfolio` at tail
/// level `alpha`, on a shared YET.
pub fn marginal_impact(
    portfolio: &Portfolio,
    candidate: Layer,
    yet: &YearEventTable,
    opts: &AggregateOptions,
    alpha: f64,
    pool: Arc<ThreadPool>,
) -> RiskResult<MarginalImpact> {
    let engine = CpuParallelEngine::new(pool);

    // Standalone candidate.
    let mut solo = Portfolio::new();
    solo.push(candidate.clone());
    let solo_ylt = engine.run(&solo, yet, opts)?;
    let solo_stats: RunningStats = solo_ylt.agg_losses().iter().copied().collect();
    let solo_sorted = solo_ylt.sorted_agg_losses();
    let standalone_tvar = tail_mean_sorted(&solo_sorted, alpha);

    // Portfolio before.
    let before_ylt = engine.run(portfolio, yet, opts)?;
    let before_sorted = before_ylt.sorted_agg_losses();
    let tvar_before = tail_mean_sorted(&before_sorted, alpha);

    // Portfolio after: the tail of the trial-wise sum (the candidate
    // shares every alternative year with the book).
    let combined: Vec<f64> = before_ylt
        .agg_losses()
        .iter()
        .zip(solo_ylt.agg_losses())
        .map(|(a, b)| a + b)
        .collect();
    let mut combined_sorted = combined;
    combined_sorted.sort_unstable_by(f64::total_cmp);
    let tvar_after = tail_mean_sorted(&combined_sorted, alpha);

    let marginal = tvar_after - tvar_before;
    let credit = if standalone_tvar > 0.0 {
        (1.0 - marginal / standalone_tvar).clamp(0.0, 1.0)
    } else {
        0.0
    };
    Ok(MarginalImpact {
        standalone_mean: solo_stats.mean(),
        standalone_tvar,
        portfolio_tvar_before: tvar_before,
        portfolio_tvar_after: tvar_after,
        marginal_tvar: marginal,
        diversification_credit: credit,
        alpha,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::LayerTerms;
    use riskpipe_tables::elt::{Elt, EltBuilder, EltRecord};
    use riskpipe_tables::yet::{Occurrence, YetBuilder};
    use riskpipe_types::rng::{Rng64, SplitMix64};
    use riskpipe_types::{EventId, LayerId};

    /// Two disjoint event universes: book A on events 0..100, book B on
    /// events 100..200 (independent), plus a clone of A (comonotone).
    fn elt_over(range: std::ops::Range<u32>, seed: u64) -> Arc<Elt> {
        let mut rng = SplitMix64::new(seed);
        let mut b = EltBuilder::new();
        for e in range {
            let mean = 100.0 + rng.next_f64() * 1_000.0;
            b.push(EltRecord {
                event_id: EventId::new(e),
                mean_loss: mean,
                sigma_i: mean * 0.2,
                sigma_c: mean * 0.1,
                exposure: mean * 5.0,
            })
            .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    fn yet(trials: usize) -> YearEventTable {
        let mut rng = SplitMix64::new(777);
        let mut yb = YetBuilder::new();
        for _ in 0..trials {
            let n = (rng.next_u64() % 6) as usize;
            let mut occs: Vec<Occurrence> = (0..n)
                .map(|_| Occurrence {
                    event_id: EventId::new((rng.next_u64() % 200) as u32),
                    day: (rng.next_u64() % 365) as u16,
                    z: rng.next_f64_open(),
                })
                .collect();
            occs.sort_by_key(|o| o.day);
            yb.push_trial(&occs);
        }
        yb.build()
    }

    fn opts() -> AggregateOptions {
        AggregateOptions {
            secondary_uncertainty: false,
            ..AggregateOptions::default()
        }
    }

    #[test]
    fn independent_candidate_gets_more_credit_than_clone() {
        let book = elt_over(0..100, 1);
        let independent = elt_over(100..200, 2);
        let mut portfolio = Portfolio::new();
        portfolio.push(
            Layer::new(
                LayerId::new(0),
                LayerTerms::pass_through(),
                Arc::clone(&book),
            )
            .unwrap(),
        );
        let y = yet(4_000);
        let pool = Arc::new(ThreadPool::new(2));

        let indep = marginal_impact(
            &portfolio,
            Layer::new(LayerId::new(1), LayerTerms::pass_through(), independent).unwrap(),
            &y,
            &opts(),
            0.99,
            Arc::clone(&pool),
        )
        .unwrap();
        let clone = marginal_impact(
            &portfolio,
            Layer::new(LayerId::new(1), LayerTerms::pass_through(), book).unwrap(),
            &y,
            &opts(),
            0.99,
            pool,
        )
        .unwrap();

        // A clone of the book doubles its tail: zero-ish credit. An
        // independent book's tail does not align: positive credit.
        assert!(
            indep.diversification_credit > clone.diversification_credit + 0.05,
            "indep credit {} vs clone credit {}",
            indep.diversification_credit,
            clone.diversification_credit
        );
        assert!(clone.diversification_credit < 0.15);
    }

    #[test]
    fn marginal_tvar_bounded_by_standalone() {
        // TVaR subadditivity: marginal <= standalone.
        let book = elt_over(0..100, 3);
        let candidate = elt_over(50..150, 4);
        let mut portfolio = Portfolio::new();
        portfolio.push(Layer::new(LayerId::new(0), LayerTerms::pass_through(), book).unwrap());
        let impact = marginal_impact(
            &portfolio,
            Layer::new(LayerId::new(1), LayerTerms::pass_through(), candidate).unwrap(),
            &yet(3_000),
            &opts(),
            0.99,
            Arc::new(ThreadPool::new(2)),
        )
        .unwrap();
        assert!(impact.marginal_tvar <= impact.standalone_tvar + 1e-9);
        assert!(impact.portfolio_tvar_after >= impact.portfolio_tvar_before - 1e-9);
    }

    #[test]
    fn marginal_premium_loads_capital() {
        let book = elt_over(0..100, 5);
        let candidate = elt_over(100..200, 6);
        let mut portfolio = Portfolio::new();
        portfolio.push(Layer::new(LayerId::new(0), LayerTerms::pass_through(), book).unwrap());
        let impact = marginal_impact(
            &portfolio,
            Layer::new(LayerId::new(1), LayerTerms::pass_through(), candidate).unwrap(),
            &yet(2_000),
            &opts(),
            0.99,
            Arc::new(ThreadPool::new(2)),
        )
        .unwrap();
        let p = impact.marginal_premium(0.08);
        assert!(p >= impact.standalone_mean);
        assert!(p <= impact.standalone_mean + 0.08 * impact.standalone_tvar + 1e-9);
    }
}
