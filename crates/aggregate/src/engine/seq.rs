//! The sequential reference engine — the baseline of the paper's "15×
//! faster than the sequential counterpart" comparison.

use super::{
    build_secondary, check_inputs, compute_trial, AggregateEngine, AggregateOptions, NoMeter,
};
use crate::portfolio::Portfolio;
use riskpipe_tables::yet::YearEventTable;
use riskpipe_tables::Ylt;
use riskpipe_types::{RiskResult, TrialId};

/// Single-threaded aggregate analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialEngine;

impl AggregateEngine for SequentialEngine {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn run(
        &self,
        portfolio: &Portfolio,
        yet: &YearEventTable,
        opts: &AggregateOptions,
    ) -> RiskResult<Ylt> {
        check_inputs(portfolio, yet)?;
        let secondary = build_secondary(portfolio, opts);
        let trials = yet.trials();
        let mut ylt = Ylt::zeroed(trials);
        let mut scratch = vec![0.0f64; portfolio.len()];
        for t in 0..trials {
            let trial = TrialId::new(t as u32);
            let (events, _days, zs) = yet.trial_slices(trial);
            let (agg, max_occ, count) = compute_trial(
                portfolio,
                secondary.as_deref(),
                events,
                zs,
                &mut scratch,
                &NoMeter,
            );
            ylt.set_trial(trial, agg, max_occ, count);
        }
        Ok(ylt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::Layer;
    use crate::terms::LayerTerms;
    use riskpipe_tables::elt::{EltBuilder, EltRecord};
    use riskpipe_tables::yet::{Occurrence, YetBuilder};
    use riskpipe_types::{EventId, LayerId};
    use std::sync::Arc;

    /// Portfolio with hand-computable losses: event 1 → 100, event 2 →
    /// 250, no secondary uncertainty.
    fn fixture() -> (Portfolio, YearEventTable) {
        let mut b = EltBuilder::new();
        b.push(EltRecord {
            event_id: EventId::new(1),
            mean_loss: 100.0,
            sigma_i: 10.0,
            sigma_c: 5.0,
            exposure: 1_000.0,
        })
        .unwrap();
        b.push(EltRecord {
            event_id: EventId::new(2),
            mean_loss: 250.0,
            sigma_i: 20.0,
            sigma_c: 10.0,
            exposure: 2_000.0,
        })
        .unwrap();
        let elt = Arc::new(b.build().unwrap());
        let mut p = Portfolio::new();
        p.push(Layer::new(LayerId::new(0), LayerTerms::pass_through(), elt).unwrap());

        let occ = |e: u32, d: u16| Occurrence {
            event_id: EventId::new(e),
            day: d,
            z: 0.5,
        };
        let mut yb = YetBuilder::new();
        yb.push_trial(&[occ(1, 10), occ(2, 50)]); // trial 0: 100 + 250
        yb.push_trial(&[]); // trial 1: nothing
        yb.push_trial(&[occ(2, 5), occ(2, 6), occ(9, 7)]); // trial 2: 250+250, unknown event
        (p, yb.build())
    }

    fn opts_no_secondary() -> AggregateOptions {
        AggregateOptions {
            secondary_uncertainty: false,
            ..AggregateOptions::default()
        }
    }

    #[test]
    fn hand_computed_losses() {
        let (p, yet) = fixture();
        let ylt = SequentialEngine
            .run(&p, &yet, &opts_no_secondary())
            .unwrap();
        assert_eq!(ylt.trials(), 3);
        assert_eq!(ylt.agg_losses(), &[350.0, 0.0, 500.0]);
        assert_eq!(ylt.max_occ_losses(), &[250.0, 0.0, 250.0]);
        assert_eq!(ylt.occ_counts(), &[2, 0, 2]);
    }

    #[test]
    fn occurrence_terms_attach_and_cap() {
        let (mut p, yet) = fixture();
        // Replace terms: 150 xs; so event 1 (100) is below attachment,
        // event 2 (250) cedes 100.
        let elt = Arc::clone(&p.layers()[0].elt);
        p = Portfolio::new();
        p.push(Layer::new(LayerId::new(0), LayerTerms::xl(150.0, 1_000.0), elt).unwrap());
        let ylt = SequentialEngine
            .run(&p, &yet, &opts_no_secondary())
            .unwrap();
        assert_eq!(ylt.agg_losses(), &[100.0, 0.0, 200.0]);
        assert_eq!(ylt.occ_counts(), &[1, 0, 2]);
    }

    #[test]
    fn aggregate_terms_apply_after_occurrences() {
        let (mut p, yet) = fixture();
        let elt = Arc::clone(&p.layers()[0].elt);
        p = Portfolio::new();
        p.push(
            Layer::new(
                LayerId::new(0),
                LayerTerms {
                    occ_retention: 0.0,
                    occ_limit: f64::INFINITY,
                    agg_retention: 300.0,
                    agg_limit: 150.0,
                    share: 1.0,
                },
                elt,
            )
            .unwrap(),
        );
        let ylt = SequentialEngine
            .run(&p, &yet, &opts_no_secondary())
            .unwrap();
        // Trial 0: annual 350 → (350-300) = 50. Trial 2: 500 → 150 (cap).
        assert_eq!(ylt.agg_losses(), &[50.0, 0.0, 150.0]);
    }

    #[test]
    fn secondary_uncertainty_changes_losses_but_not_structure() {
        let (p, yet) = fixture();
        let det = SequentialEngine
            .run(&p, &yet, &opts_no_secondary())
            .unwrap();
        let stoch = SequentialEngine
            .run(&p, &yet, &AggregateOptions::default())
            .unwrap();
        assert_eq!(det.trials(), stoch.trials());
        // Same events hit, so the same trials are non-zero.
        for t in 0..det.trials() {
            assert_eq!(
                det.agg_losses()[t] > 0.0,
                stoch.agg_losses()[t] > 0.0,
                "trial {t}"
            );
        }
        // But the loss values differ (z=0.5 maps to the median, not the
        // mean, of the skewed beta).
        assert_ne!(det.agg_losses()[0], stoch.agg_losses()[0]);
    }

    #[test]
    fn empty_portfolio_rejected() {
        let (_, yet) = fixture();
        let p = Portfolio::new();
        assert!(SequentialEngine
            .run(&p, &yet, &AggregateOptions::default())
            .is_err());
    }

    #[test]
    fn multi_layer_portfolio_sums_shares() {
        let (p0, yet) = fixture();
        let elt = Arc::clone(&p0.layers()[0].elt);
        let mut p = Portfolio::new();
        p.push(
            Layer::new(
                LayerId::new(0),
                LayerTerms {
                    share: 0.25,
                    ..LayerTerms::pass_through()
                },
                Arc::clone(&elt),
            )
            .unwrap(),
        );
        p.push(
            Layer::new(
                LayerId::new(1),
                LayerTerms {
                    share: 0.75,
                    ..LayerTerms::pass_through()
                },
                elt,
            )
            .unwrap(),
        );
        let ylt = SequentialEngine
            .run(&p, &yet, &opts_no_secondary())
            .unwrap();
        // Shares sum to 1.0 → same as single full-share layer.
        assert_eq!(ylt.agg_losses(), &[350.0, 0.0, 500.0]);
    }
}
