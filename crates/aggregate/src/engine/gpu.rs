//! The simulated-GPU engine: the paper's aggregate-analysis kernel —
//! one thread per trial — in naive and chunked forms.
//!
//! **Chunked form** (the paper: "the management of large data in memory
//! employs the notion of chunking, which is utilising shared and
//! constant memory as much as possible"): each block stages its
//! threads' YET rows through a shared-memory tile sized to the device's
//! per-block budget, so each row is fetched from global memory once and
//! then re-read from shared memory by every layer probe; the portfolio's
//! financial terms live in constant memory. **Naive form**: every layer
//! re-fetches the row from global memory.
//!
//! Modelling note: staging is *accounted* (capacity charged against the
//! 48 KiB arena, traffic tallied per the table in the engine module
//! docs) rather than physically copied — on the host, the cache
//! hierarchy plays the role of shared memory, and a physical copy would
//! only distort the host-side wall-clock comparison. Loss arithmetic is
//! byte-identical to the other engines because all engines execute
//! [`super::compute_trial`].

use super::{
    build_secondary, check_inputs, compute_trial, AggregateEngine, AggregateOptions, Meter,
};
use crate::portfolio::Portfolio;
use crate::secondary::SecondaryTable;
use parking_lot::Mutex;
use riskpipe_exec::ThreadPool;
use riskpipe_simgpu::{
    BlockCtx, ConstMem, DeviceSpec, GlobalBuf, Kernel, LaunchConfig, LaunchStats, MemCounters,
};
use riskpipe_tables::yet::YearEventTable;
use riskpipe_tables::Ylt;
use riskpipe_types::{RiskError, RiskResult, TrialId};
use std::sync::Arc;

/// Bytes of one YET row in the kernel's view (event u32 + day u16 + z f64).
const OCC_READ_BYTES: u64 = 14;
/// Bytes of one staged tile row (u32 + pad + f64, aligned).
const TILE_ROW_BYTES: u64 = 16;
/// Bytes of one hash-probe slot (key + value).
const PROBE_BYTES: u64 = 8;
/// Bytes of an ELT mean-loss fetch.
const MEAN_BYTES: u64 = 8;
/// Bytes of a secondary-uncertainty grid fetch (two grid cells).
const GRID_BYTES: u64 = 16;
/// Bytes of one layer's terms (5 × f64).
const TERMS_BYTES: u64 = 40;

/// Memory strategy of the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuChunking {
    /// Naive: every access goes to global memory.
    GlobalOnly,
    /// The paper's design: YET rows staged through shared-memory tiles,
    /// terms in constant memory.
    SharedTiles,
}

// Meters accumulate into per-block `Cell`s and flush to the shared
// atomics once, on drop — a per-access `fetch_add` from every simulated
// SM would serialise the launch on one cache line and distort the very
// wall-times the experiment compares.

struct GlobalMeter<'a> {
    c: &'a MemCounters,
    global: std::cell::Cell<u64>,
    konst: std::cell::Cell<u64>,
}

impl<'a> GlobalMeter<'a> {
    fn new(c: &'a MemCounters) -> Self {
        Self {
            c,
            global: std::cell::Cell::new(0),
            konst: std::cell::Cell::new(0),
        }
    }
}

impl Drop for GlobalMeter<'_> {
    fn drop(&mut self) {
        self.c.global_read(self.global.get());
        self.c.const_read(self.konst.get());
    }
}

impl Meter for GlobalMeter<'_> {
    #[inline]
    fn on_occurrence_fetch(&self) {
        self.global.set(self.global.get() + OCC_READ_BYTES);
    }
    #[inline]
    fn on_probe(&self) {
        self.global.set(self.global.get() + PROBE_BYTES);
    }
    #[inline]
    fn on_hit_payload(&self, secondary: bool) {
        self.global
            .set(self.global.get() + if secondary { GRID_BYTES } else { MEAN_BYTES });
    }
    #[inline]
    fn on_terms_read(&self) {
        self.konst.set(self.konst.get() + TERMS_BYTES);
    }
}

struct TiledMeter<'a> {
    c: &'a MemCounters,
    global: std::cell::Cell<u64>,
    shared_r: std::cell::Cell<u64>,
    shared_w: std::cell::Cell<u64>,
    konst: std::cell::Cell<u64>,
}

impl<'a> TiledMeter<'a> {
    fn new(c: &'a MemCounters) -> Self {
        Self {
            c,
            global: std::cell::Cell::new(0),
            shared_r: std::cell::Cell::new(0),
            shared_w: std::cell::Cell::new(0),
            konst: std::cell::Cell::new(0),
        }
    }
}

impl Drop for TiledMeter<'_> {
    fn drop(&mut self) {
        self.c.global_read(self.global.get());
        self.c.shared_read(self.shared_r.get());
        self.c.shared_write(self.shared_w.get());
        self.c.const_read(self.konst.get());
    }
}

impl Meter for TiledMeter<'_> {
    #[inline]
    fn on_occurrence_staged(&self) {
        self.global.set(self.global.get() + OCC_READ_BYTES);
        self.shared_w.set(self.shared_w.get() + TILE_ROW_BYTES);
    }
    #[inline]
    fn on_occurrence_fetch(&self) {
        self.shared_r.set(self.shared_r.get() + OCC_READ_BYTES);
    }
    #[inline]
    fn on_probe(&self) {
        self.global.set(self.global.get() + PROBE_BYTES);
    }
    #[inline]
    fn on_hit_payload(&self, secondary: bool) {
        self.global
            .set(self.global.get() + if secondary { GRID_BYTES } else { MEAN_BYTES });
    }
    #[inline]
    fn on_terms_read(&self) {
        self.konst.set(self.konst.get() + TERMS_BYTES);
    }
}

struct AggKernel<'a> {
    portfolio: &'a Portfolio,
    secondary: Option<&'a [SecondaryTable]>,
    yet: &'a YearEventTable,
    /// Portfolio terms resident in constant memory (capacity-checked at
    /// engine start; reads are metered, values come from `portfolio` to
    /// share `compute_trial` with the CPU engines).
    _terms: ConstMem,
    chunking: GpuChunking,
    trials: usize,
    out_agg: GlobalBuf<f64>,
    out_max: GlobalBuf<f64>,
    out_cnt: GlobalBuf<u32>,
}

impl Kernel for AggKernel<'_> {
    fn run_block(&self, ctx: &mut BlockCtx<'_>) -> RiskResult<()> {
        if self.chunking == GpuChunking::SharedTiles {
            // Per-thread tile rows that fit the block's shared arena;
            // every resident thread needs its slice simultaneously.
            let per_thread = ctx.shared.capacity() / (TILE_ROW_BYTES * ctx.block_threads as u64);
            if per_thread == 0 {
                return Err(RiskError::CapacityExceeded {
                    what: format!(
                        "shared-memory tile ({} threads/block need at least {} bytes/row)",
                        ctx.block_threads, TILE_ROW_BYTES
                    ),
                    requested: TILE_ROW_BYTES * ctx.block_threads as u64,
                    available: ctx.shared.capacity(),
                });
            }
            // Charge the whole block's tile allocation.
            let tile_f64s = (per_thread * ctx.block_threads as u64 * TILE_ROW_BYTES / 8) as usize;
            let _tile = ctx.shared.alloc_f64(tile_f64s)?;
        }
        let mut scratch = vec![0.0f64; self.portfolio.len()];
        // One meter per block, flushed to the shared counters on drop.
        let global_meter;
        let tiled_meter;
        let mut out_bytes = 0u64;
        match self.chunking {
            GpuChunking::GlobalOnly => {
                global_meter = Some(GlobalMeter::new(ctx.counters));
                tiled_meter = None;
            }
            GpuChunking::SharedTiles => {
                global_meter = None;
                tiled_meter = Some(TiledMeter::new(ctx.counters));
            }
        }
        ctx.for_each_thread(|t| {
            let g = ctx.global_thread(t) as usize;
            if g >= self.trials {
                return;
            }
            let (events, _days, zs) = self.yet.trial_slices(TrialId::new(g as u32));
            let (agg, max_occ, count) = match (&global_meter, &tiled_meter) {
                (Some(m), _) => {
                    compute_trial(self.portfolio, self.secondary, events, zs, &mut scratch, m)
                }
                (_, Some(m)) => {
                    compute_trial(self.portfolio, self.secondary, events, zs, &mut scratch, m)
                }
                _ => unreachable!("one meter is always constructed"),
            };
            // Output writes batched with the block's other traffic.
            self.out_agg.write_uncounted(g, agg);
            self.out_max.write_uncounted(g, max_occ);
            self.out_cnt.write_uncounted(g, count);
            out_bytes += 20;
        });
        ctx.counters.global_write(out_bytes);
        Ok(())
    }
}

/// The simulated-GPU aggregate engine.
pub struct GpuEngine {
    device: DeviceSpec,
    chunking: GpuChunking,
    pool: PoolRef,
    block_threads: u32,
    last_stats: Mutex<Option<LaunchStats>>,
}

enum PoolRef {
    Owned(Arc<ThreadPool>),
    Global(&'static ThreadPool),
}

impl GpuEngine {
    /// An engine on a specific device and pool.
    pub fn new(device: DeviceSpec, chunking: GpuChunking, pool: Arc<ThreadPool>) -> Self {
        Self {
            device,
            chunking,
            pool: PoolRef::Owned(pool),
            block_threads: 128,
            last_stats: Mutex::new(None),
        }
    }

    /// A Fermi-like device on the global pool.
    pub fn on_global_pool(chunking: GpuChunking) -> Self {
        Self {
            device: DeviceSpec::fermi_like(),
            chunking,
            pool: PoolRef::Global(riskpipe_exec::global_pool()),
            block_threads: 128,
            last_stats: Mutex::new(None),
        }
    }

    /// Override the block size (threads per block).
    pub fn with_block_threads(mut self, threads: u32) -> Self {
        self.block_threads = threads;
        self
    }

    fn pool(&self) -> &ThreadPool {
        match &self.pool {
            PoolRef::Owned(p) => p,
            PoolRef::Global(p) => p,
        }
    }

    /// Launch statistics of the most recent run (traffic counters,
    /// occupancy) — the measurements behind the chunking experiment.
    pub fn last_stats(&self) -> Option<LaunchStats> {
        *self.last_stats.lock()
    }

    /// Run and return both the YLT and the launch statistics.
    pub fn run_with_stats(
        &self,
        portfolio: &Portfolio,
        yet: &YearEventTable,
        opts: &AggregateOptions,
    ) -> RiskResult<(Ylt, LaunchStats)> {
        check_inputs(portfolio, yet)?;
        let secondary = build_secondary(portfolio, opts);
        let trials = yet.trials();
        let mut terms_flat = Vec::with_capacity(portfolio.len() * 5);
        for l in portfolio.layers() {
            terms_flat.extend_from_slice(&l.terms.to_array());
        }
        let terms = ConstMem::from_f64s(&terms_flat, self.device.const_mem_bytes)?;
        let kernel = AggKernel {
            portfolio,
            secondary: secondary.as_deref(),
            yet,
            _terms: terms,
            chunking: self.chunking,
            trials,
            out_agg: GlobalBuf::new(trials),
            out_max: GlobalBuf::new(trials),
            out_cnt: GlobalBuf::new(trials),
        };
        let cfg = LaunchConfig::cover(trials, self.block_threads);
        let stats = self.device.launch(&kernel, cfg, self.pool())?;
        *self.last_stats.lock() = Some(stats);
        let ylt = Ylt::from_columns(
            kernel.out_agg.into_vec(),
            kernel.out_max.into_vec(),
            kernel.out_cnt.into_vec(),
        )?;
        Ok((ylt, stats))
    }
}

impl AggregateEngine for GpuEngine {
    fn name(&self) -> &'static str {
        match self.chunking {
            GpuChunking::GlobalOnly => "sim-gpu-global",
            GpuChunking::SharedTiles => "sim-gpu-chunked",
        }
    }

    fn run(
        &self,
        portfolio: &Portfolio,
        yet: &YearEventTable,
        opts: &AggregateOptions,
    ) -> RiskResult<Ylt> {
        self.run_with_stats(portfolio, yet, opts)
            .map(|(ylt, _)| ylt)
    }
}

#[cfg(test)]
mod tests {
    use super::super::SequentialEngine;
    use super::*;
    use crate::portfolio::Layer;
    use crate::terms::LayerTerms;
    use riskpipe_tables::elt::{EltBuilder, EltRecord};
    use riskpipe_tables::yet::{Occurrence, YetBuilder};
    use riskpipe_types::rng::{Rng64, SplitMix64};
    use riskpipe_types::{EventId, LayerId};

    fn fixture(layers: usize, trials: usize) -> (Portfolio, YearEventTable) {
        let mut rng = SplitMix64::new(5);
        let mut b = EltBuilder::new();
        for e in 0..300u32 {
            let mean = 10.0 + rng.next_f64() * 500.0;
            b.push(EltRecord {
                event_id: EventId::new(e),
                mean_loss: mean,
                sigma_i: mean * 0.25,
                sigma_c: mean * 0.1,
                exposure: mean * 6.0,
            })
            .unwrap();
        }
        let elt = Arc::new(b.build().unwrap());
        let mut p = Portfolio::new();
        for l in 0..layers {
            p.push(
                Layer::new(
                    LayerId::new(l as u32),
                    LayerTerms::xl(20.0 * l as f64, 2_000.0),
                    Arc::clone(&elt),
                )
                .unwrap(),
            );
        }
        let mut yb = YetBuilder::new();
        for _ in 0..trials {
            let n = (rng.next_u64() % 5) as usize;
            let mut occs: Vec<Occurrence> = (0..n)
                .map(|_| Occurrence {
                    event_id: EventId::new((rng.next_u64() % 350) as u32),
                    day: (rng.next_u64() % 365) as u16,
                    z: rng.next_f64_open(),
                })
                .collect();
            occs.sort_by_key(|o| o.day);
            yb.push_trial(&occs);
        }
        (p, yb.build())
    }

    #[test]
    fn both_modes_match_sequential() {
        let (p, yet) = fixture(4, 1_000);
        let opts = AggregateOptions::default();
        let seq = SequentialEngine.run(&p, &yet, &opts).unwrap();
        for chunking in [GpuChunking::GlobalOnly, GpuChunking::SharedTiles] {
            let eng = GpuEngine::new(
                DeviceSpec::fermi_like(),
                chunking,
                Arc::new(ThreadPool::new(4)),
            );
            let gpu = eng.run(&p, &yet, &opts).unwrap();
            assert_eq!(gpu, seq, "{chunking:?} diverged");
        }
    }

    #[test]
    fn chunking_reduces_global_traffic() {
        let (p, yet) = fixture(8, 2_000);
        let opts = AggregateOptions::default();
        let pool = Arc::new(ThreadPool::new(4));
        let naive = GpuEngine::new(
            DeviceSpec::fermi_like(),
            GpuChunking::GlobalOnly,
            Arc::clone(&pool),
        );
        let chunked = GpuEngine::new(DeviceSpec::fermi_like(), GpuChunking::SharedTiles, pool);
        let (_, s_naive) = naive.run_with_stats(&p, &yet, &opts).unwrap();
        let (_, s_chunked) = chunked.run_with_stats(&p, &yet, &opts).unwrap();
        assert!(
            s_chunked.traffic.global_read < s_naive.traffic.global_read,
            "chunked {} !< naive {}",
            s_chunked.traffic.global_read,
            s_naive.traffic.global_read
        );
        // Chunked trades global reads for shared traffic.
        assert!(s_chunked.traffic.shared_read > 0);
        assert!(s_chunked.traffic.shared_write > 0);
        assert_eq!(s_naive.traffic.shared_read, 0);
        // With 8 layers the YET stream shrinks ~8x; total saving is a
        // sizeable share of naive traffic.
        let saved = s_naive.traffic.global_read - s_chunked.traffic.global_read;
        assert!(
            saved as f64 > 0.3 * s_naive.traffic.global_read as f64,
            "saving only {saved} of {}",
            s_naive.traffic.global_read
        );
    }

    #[test]
    fn traffic_accounting_is_exact_for_known_fixture() {
        // 1 trial, 2 occurrences, 1 layer, no secondary uncertainty.
        let mut b = EltBuilder::new();
        b.push(EltRecord {
            event_id: EventId::new(1),
            mean_loss: 100.0,
            sigma_i: 1.0,
            sigma_c: 1.0,
            exposure: 500.0,
        })
        .unwrap();
        let elt = Arc::new(b.build().unwrap());
        let mut p = Portfolio::new();
        p.push(Layer::new(LayerId::new(0), LayerTerms::pass_through(), elt).unwrap());
        let mut yb = YetBuilder::new();
        yb.push_trial(&[
            Occurrence {
                event_id: EventId::new(1),
                day: 0,
                z: 0.5,
            },
            Occurrence {
                event_id: EventId::new(2),
                day: 1,
                z: 0.5,
            },
        ]);
        let yet = yb.build();
        let opts = AggregateOptions {
            secondary_uncertainty: false,
            ..AggregateOptions::default()
        };
        let eng = GpuEngine::new(
            DeviceSpec::fermi_like(),
            GpuChunking::GlobalOnly,
            Arc::new(ThreadPool::new(1)),
        );
        let (_, stats) = eng.run_with_stats(&p, &yet, &opts).unwrap();
        // Expected global reads: 2 occ fetches (14 each) + 2 probes of
        // at least 8 bytes + 1 hit payload (8). Probes may walk more
        // than one slot, so compare against the minimum.
        assert!(stats.traffic.global_read >= 2 * 14 + 2 * 8 + 8);
        // Output: (8 + 8 + 4) bytes per trial, one trial... but the
        // launch covers a whole block of threads; only thread 0 writes.
        assert_eq!(stats.traffic.global_write, 20);
        assert_eq!(stats.traffic.const_read, 40); // 1 layer × 1 trial
    }

    #[test]
    fn tiny_shared_memory_fails_tiled_mode() {
        let (p, yet) = fixture(2, 64);
        let device = DeviceSpec {
            shared_mem_per_block: 64, // too small for a 128-thread tile
            ..DeviceSpec::fermi_like()
        };
        let eng = GpuEngine::new(
            device,
            GpuChunking::SharedTiles,
            Arc::new(ThreadPool::new(2)),
        );
        let err = eng.run(&p, &yet, &AggregateOptions::default()).unwrap_err();
        assert!(matches!(err, RiskError::CapacityExceeded { .. }));
    }

    #[test]
    fn too_many_layers_overflow_const_mem() {
        // 64 KiB / 40 B per layer ≈ 1638 layers max.
        let (p1, yet) = fixture(1, 16);
        let elt = Arc::clone(&p1.layers()[0].elt);
        let mut p = Portfolio::new();
        for l in 0..1_700u32 {
            p.push(
                Layer::new(
                    LayerId::new(l),
                    LayerTerms::pass_through(),
                    Arc::clone(&elt),
                )
                .unwrap(),
            );
        }
        let eng = GpuEngine::on_global_pool(GpuChunking::GlobalOnly);
        let err = eng.run(&p, &yet, &AggregateOptions::default()).unwrap_err();
        assert!(matches!(err, RiskError::CapacityExceeded { .. }));
    }

    #[test]
    fn stats_accessible_after_run() {
        let (p, yet) = fixture(2, 128);
        let eng = GpuEngine::new(
            DeviceSpec::fermi_like(),
            GpuChunking::SharedTiles,
            Arc::new(ThreadPool::new(2)),
        );
        assert!(eng.last_stats().is_none());
        eng.run(&p, &yet, &AggregateOptions::default()).unwrap();
        let stats = eng.last_stats().unwrap();
        assert!(stats.blocks >= 1);
        assert!(stats.occupancy > 0.0);
        assert!(stats.peak_shared_bytes > 0);
    }
}
