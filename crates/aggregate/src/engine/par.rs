//! The multi-core engine: trials partitioned across the work-stealing
//! pool — the paper's "accumulation of large memory" strategy on a
//! many-core host.

use super::{
    build_secondary, check_inputs, compute_trial, AggregateEngine, AggregateOptions, NoMeter,
};
use crate::portfolio::Portfolio;
use riskpipe_exec::{par_chunks_mut, suggest_grain, ThreadPool};
use riskpipe_tables::yet::YearEventTable;
use riskpipe_tables::Ylt;
use riskpipe_types::{RiskResult, TrialId};
use std::sync::Arc;

/// Aggregate analysis across a thread pool. Trials are embarrassingly
/// parallel (each reads shared immutable tables and writes its own YLT
/// row), so the engine scales linearly until memory bandwidth saturates.
pub struct CpuParallelEngine {
    pool: PoolRef,
}

enum PoolRef {
    Owned(Arc<ThreadPool>),
    Global(&'static ThreadPool),
}

impl CpuParallelEngine {
    /// An engine on the given pool.
    pub fn new(pool: Arc<ThreadPool>) -> Self {
        Self {
            pool: PoolRef::Owned(pool),
        }
    }

    /// An engine on a borrowed static pool (the global pool).
    pub fn with_pool_ref(pool: &'static ThreadPool) -> Self {
        Self {
            pool: PoolRef::Global(pool),
        }
    }

    fn pool(&self) -> &ThreadPool {
        match &self.pool {
            PoolRef::Owned(p) => p,
            PoolRef::Global(p) => p,
        }
    }
}

impl AggregateEngine for CpuParallelEngine {
    fn name(&self) -> &'static str {
        "cpu-parallel"
    }

    fn run(
        &self,
        portfolio: &Portfolio,
        yet: &YearEventTable,
        opts: &AggregateOptions,
    ) -> RiskResult<Ylt> {
        check_inputs(portfolio, yet)?;
        let secondary = build_secondary(portfolio, opts);
        let trials = yet.trials();
        let pool = self.pool();
        let grain = suggest_grain(trials, pool.thread_count(), 256);
        let mut rows = vec![(0.0f64, 0.0f64, 0u32); trials];
        par_chunks_mut(pool, &mut rows, grain, |chunk_idx, chunk| {
            // Per-task scratch: one accumulator per layer, reused across
            // the chunk's trials (no per-trial allocation).
            let mut scratch = vec![0.0f64; portfolio.len()];
            let base = chunk_idx * grain;
            for (j, slot) in chunk.iter_mut().enumerate() {
                let trial = TrialId::new((base + j) as u32);
                let (events, _days, zs) = yet.trial_slices(trial);
                *slot = compute_trial(
                    portfolio,
                    secondary.as_deref(),
                    events,
                    zs,
                    &mut scratch,
                    &NoMeter,
                );
            }
        });
        let mut ylt = Ylt::zeroed(trials);
        for (t, (agg, max_occ, count)) in rows.into_iter().enumerate() {
            ylt.set_trial(TrialId::new(t as u32), agg, max_occ, count);
        }
        Ok(ylt)
    }
}

#[cfg(test)]
mod tests {
    use super::super::SequentialEngine;
    use super::*;
    use crate::portfolio::Layer;
    use crate::terms::LayerTerms;
    use riskpipe_tables::elt::{EltBuilder, EltRecord};
    use riskpipe_tables::yet::{Occurrence, YetBuilder};
    use riskpipe_types::rng::{Rng64, SplitMix64};
    use riskpipe_types::{EventId, LayerId};

    /// A randomised portfolio/YET pair large enough to exercise
    /// multi-chunk scheduling.
    fn random_fixture(seed: u64, trials: usize) -> (Portfolio, YearEventTable) {
        let mut rng = SplitMix64::new(seed);
        let mut b = EltBuilder::new();
        for e in 0..200u32 {
            let mean = 10.0 + rng.next_f64() * 1_000.0;
            b.push(EltRecord {
                event_id: EventId::new(e),
                mean_loss: mean,
                sigma_i: mean * 0.3,
                sigma_c: mean * 0.1,
                exposure: mean * (3.0 + rng.next_f64() * 10.0),
            })
            .unwrap();
        }
        let elt = std::sync::Arc::new(b.build().unwrap());
        let mut p = Portfolio::new();
        p.push(
            Layer::new(
                LayerId::new(0),
                LayerTerms::xl(50.0, 5_000.0),
                std::sync::Arc::clone(&elt),
            )
            .unwrap(),
        );
        p.push(
            Layer::new(
                LayerId::new(1),
                LayerTerms {
                    occ_retention: 0.0,
                    occ_limit: f64::INFINITY,
                    agg_retention: 500.0,
                    agg_limit: 10_000.0,
                    share: 0.5,
                },
                elt,
            )
            .unwrap(),
        );
        let mut yb = YetBuilder::new();
        for _ in 0..trials {
            let n = (rng.next_u64() % 6) as usize;
            let mut occs: Vec<Occurrence> = (0..n)
                .map(|_| Occurrence {
                    event_id: EventId::new((rng.next_u64() % 250) as u32),
                    day: (rng.next_u64() % 365) as u16,
                    z: rng.next_f64_open(),
                })
                .collect();
            occs.sort_by_key(|o| o.day);
            yb.push_trial(&occs);
        }
        (p, yb.build())
    }

    #[test]
    fn matches_sequential_bitwise() {
        let (p, yet) = random_fixture(42, 3_000);
        let opts = AggregateOptions::default();
        let seq = SequentialEngine.run(&p, &yet, &opts).unwrap();
        for threads in [1, 2, 4, 8] {
            let eng = CpuParallelEngine::new(Arc::new(ThreadPool::new(threads)));
            let par = eng.run(&p, &yet, &opts).unwrap();
            assert_eq!(par, seq, "{threads} threads diverged");
        }
    }

    #[test]
    fn matches_sequential_without_secondary() {
        let (p, yet) = random_fixture(7, 1_000);
        let opts = AggregateOptions {
            secondary_uncertainty: false,
            ..AggregateOptions::default()
        };
        let seq = SequentialEngine.run(&p, &yet, &opts).unwrap();
        let par = CpuParallelEngine::new(Arc::new(ThreadPool::new(4)))
            .run(&p, &yet, &opts)
            .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn trial_count_below_grain_still_works() {
        let (p, yet) = random_fixture(9, 10);
        let eng = CpuParallelEngine::new(Arc::new(ThreadPool::new(4)));
        let ylt = eng.run(&p, &yet, &AggregateOptions::default()).unwrap();
        assert_eq!(ylt.trials(), 10);
    }

    #[test]
    fn engine_reports_name() {
        let eng = CpuParallelEngine::new(Arc::new(ThreadPool::new(1)));
        assert_eq!(eng.name(), "cpu-parallel");
    }
}
