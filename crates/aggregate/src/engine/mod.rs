//! The aggregate-analysis engines.
//!
//! All engines share one trial computation (`compute_trial`) so their
//! outputs are bit-identical; they differ only in *where* the loop runs
//! (host thread, thread pool, simulated GPU) and in the memory-traffic
//! metering hooks the GPU engine uses for the chunking experiment.
//!
//! ## The traffic model (E8)
//!
//! The `Meter` trait marks the semantic memory events of the inner
//! loop; byte costs follow the table layouts:
//!
//! | event | bytes | meaning |
//! |---|---|---|
//! | occurrence staged | 14 read + 16 write | YET row (event u32 + day u16 + z f64) fetched from global, parked in a shared tile |
//! | occurrence fetch | 14 | the row consumed by one layer's probe (from global if unstaged, from shared if staged) |
//! | hash probe | 8 | one open-addressing slot (key+value u32s) in global memory |
//! | hit payload | 8 / 16 | ELT mean (or two grid cells with secondary uncertainty) |
//! | terms read | 40 | one layer's 5-f64 terms (constant memory) |
//! | output write | 20 | one YLT row (agg f64 + max f64 + count u32) |

mod gpu;
mod par;
mod seq;

pub use gpu::{GpuChunking, GpuEngine};
pub use par::CpuParallelEngine;
pub use seq::SequentialEngine;

use crate::portfolio::Portfolio;
use crate::secondary::{QuantileMode, SecondaryTable};
use riskpipe_tables::yet::YearEventTable;
use riskpipe_tables::Ylt;
use riskpipe_types::{EventId, RiskError, RiskResult};
use std::sync::Arc;

/// Options shared by all engines.
#[derive(Debug, Clone, Copy)]
pub struct AggregateOptions {
    /// Whether to apply secondary uncertainty (beta-distributed event
    /// losses driven by the YET's pre-simulated uniforms) or to use the
    /// ELT mean loss deterministically.
    pub secondary_uncertainty: bool,
    /// Beta-quantile evaluation scheme when secondary uncertainty is on.
    pub quantile_mode: QuantileMode,
}

impl Default for AggregateOptions {
    fn default() -> Self {
        Self {
            secondary_uncertainty: true,
            quantile_mode: QuantileMode::default(),
        }
    }
}

/// An aggregate-analysis engine: portfolio × YET → YLT.
pub trait AggregateEngine {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Run the analysis.
    fn run(
        &self,
        portfolio: &Portfolio,
        yet: &YearEventTable,
        opts: &AggregateOptions,
    ) -> RiskResult<Ylt>;
}

/// Validation shared by all engines.
pub(crate) fn check_inputs(portfolio: &Portfolio, yet: &YearEventTable) -> RiskResult<()> {
    if portfolio.is_empty() {
        return Err(RiskError::invalid("portfolio has no layers"));
    }
    if yet.trials() == 0 {
        return Err(RiskError::invalid("YET has no trials"));
    }
    Ok(())
}

/// Build per-layer secondary tables if the options ask for them.
pub(crate) fn build_secondary(
    portfolio: &Portfolio,
    opts: &AggregateOptions,
) -> Option<Vec<SecondaryTable>> {
    if !opts.secondary_uncertainty {
        return None;
    }
    Some(
        portfolio
            .layers()
            .iter()
            .map(|l| SecondaryTable::build(&l.elt, opts.quantile_mode))
            .collect(),
    )
}

/// Semantic memory events of the inner loop; see the module docs.
/// Default impls are no-ops so CPU engines compile the hooks away.
pub(crate) trait Meter {
    /// A YET row moved global → shared (staging).
    #[inline]
    fn on_occurrence_staged(&self) {}
    /// A YET row consumed by one layer.
    #[inline]
    fn on_occurrence_fetch(&self) {}
    /// One hash-probe slot touched.
    #[inline]
    fn on_probe(&self) {}
    /// An ELT hit's payload fetched.
    #[inline]
    fn on_hit_payload(&self, _secondary: bool) {}
    /// One layer's terms fetched.
    #[inline]
    fn on_terms_read(&self) {}
    /// One YLT row written.
    #[inline]
    fn on_output_write(&self) {}
}

/// The no-op meter for CPU engines.
pub(crate) struct NoMeter;
impl Meter for NoMeter {}

/// One trial of aggregate analysis. `scratch` must hold one slot per
/// layer; it is reset here. Returns `(aggregate_loss, max_occurrence
/// _loss, loss_causing_occurrences)`.
///
/// The double loop is occurrences-outer / layers-inner, matching the
/// GPU kernel of the companion paper; every engine calls exactly this
/// function so floating-point order — hence the YLT — is identical
/// everywhere.
#[inline]
pub(crate) fn compute_trial<M: Meter>(
    portfolio: &Portfolio,
    secondary: Option<&[SecondaryTable]>,
    events: &[u32],
    zs: &[f64],
    scratch: &mut [f64],
    meter: &M,
) -> (f64, f64, u32) {
    debug_assert_eq!(scratch.len(), portfolio.len());
    for a in scratch.iter_mut() {
        *a = 0.0;
    }
    let layers = portfolio.layers();
    let mut max_occ = 0.0f64;
    let mut count = 0u32;
    for (i, &e) in events.iter().enumerate() {
        meter.on_occurrence_staged();
        let event = EventId::new(e);
        let mut occ_total = 0.0f64;
        for (li, layer) in layers.iter().enumerate() {
            meter.on_occurrence_fetch();
            meter.on_probe();
            if let Some(row) = layer.elt.row_of(event) {
                let gross = match secondary {
                    Some(tables) => {
                        meter.on_hit_payload(true);
                        tables[li].loss(row, zs[i])
                    }
                    None => {
                        meter.on_hit_payload(false);
                        layer.elt.mean_loss_at(row)
                    }
                };
                let net = layer.terms.apply_occurrence(gross);
                if net > 0.0 {
                    scratch[li] += net;
                    occ_total += net * layer.terms.share;
                }
            }
        }
        if occ_total > 0.0 {
            count += 1;
            if occ_total > max_occ {
                max_occ = occ_total;
            }
        }
    }
    let mut agg_total = 0.0f64;
    for (li, layer) in layers.iter().enumerate() {
        meter.on_terms_read();
        agg_total += layer.terms.apply_aggregate(scratch[li]);
    }
    meter.on_output_write();
    (agg_total, max_occ, count)
}

/// Per-layer aggregate analysis: one YLT per portfolio layer, in a
/// single pass over the YET. The portfolio-level YLT's aggregate column
/// equals the per-layer aggregates summed trial-wise (bitwise — same
/// summation order), which `run_per_layer`'s tests pin down; underwriters
/// use the per-layer view for marginal pricing and cession allocation.
pub fn run_per_layer(
    portfolio: &Portfolio,
    yet: &YearEventTable,
    opts: &AggregateOptions,
) -> RiskResult<Vec<Ylt>> {
    check_inputs(portfolio, yet)?;
    let secondary = build_secondary(portfolio, opts);
    let trials = yet.trials();
    let layers = portfolio.layers();
    let mut ylts: Vec<Ylt> = (0..layers.len()).map(|_| Ylt::zeroed(trials)).collect();
    let mut agg = vec![0.0f64; layers.len()];
    let mut max_occ = vec![0.0f64; layers.len()];
    let mut counts = vec![0u32; layers.len()];
    for t in 0..trials {
        let trial = riskpipe_types::TrialId::new(t as u32);
        let (events, _days, zs) = yet.trial_slices(trial);
        agg.iter_mut().for_each(|a| *a = 0.0);
        max_occ.iter_mut().for_each(|m| *m = 0.0);
        counts.iter_mut().for_each(|c| *c = 0);
        for (i, &e) in events.iter().enumerate() {
            let event = EventId::new(e);
            for (li, layer) in layers.iter().enumerate() {
                if let Some(row) = layer.elt.row_of(event) {
                    let gross = match &secondary {
                        Some(tables) => tables[li].loss(row, zs[i]),
                        None => layer.elt.mean_loss_at(row),
                    };
                    let net = layer.terms.apply_occurrence(gross);
                    if net > 0.0 {
                        agg[li] += net;
                        let shared = net * layer.terms.share;
                        if shared > max_occ[li] {
                            max_occ[li] = shared;
                        }
                        counts[li] += 1;
                    }
                }
            }
        }
        for (li, layer) in layers.iter().enumerate() {
            ylts[li].set_trial(
                trial,
                layer.terms.apply_aggregate(agg[li]),
                max_occ[li],
                counts[li],
            );
        }
    }
    Ok(ylts)
}

/// Which engine a runner should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The single-threaded reference engine.
    Sequential,
    /// Trials across the work-stealing pool.
    CpuParallel,
    /// The simulated GPU, naive global-memory kernel.
    GpuGlobal,
    /// The simulated GPU with shared-memory chunking (the paper's
    /// design).
    GpuChunked,
}

impl EngineKind {
    /// Every engine, for equivalence sweeps.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Sequential,
        EngineKind::CpuParallel,
        EngineKind::GpuGlobal,
        EngineKind::GpuChunked,
    ];
}

/// Convenience front end selecting an engine by kind — the single
/// engine-dispatch point for everything above this crate (the
/// `RiskSession` facade included). Uses the global thread pool unless
/// one is attached with [`AggregateRunner::with_pool`].
#[derive(Debug, Clone)]
pub struct AggregateRunner {
    kind: EngineKind,
    opts: AggregateOptions,
    pool: Option<Arc<riskpipe_exec::ThreadPool>>,
}

impl AggregateRunner {
    /// A runner for the given engine with default options on the
    /// global pool.
    pub fn new(kind: EngineKind) -> Self {
        Self {
            kind,
            opts: AggregateOptions::default(),
            pool: None,
        }
    }

    /// Replace the options.
    pub fn with_options(mut self, opts: AggregateOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Attach an explicit pool; parallel engines retain it (hence the
    /// `Arc` — everywhere the pool merely crosses a call boundary, use
    /// `&ThreadPool`).
    pub fn with_pool(mut self, pool: Arc<riskpipe_exec::ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The engine this runner dispatches to.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The options every run uses.
    pub fn options(&self) -> &AggregateOptions {
        &self.opts
    }

    /// Run the analysis on the attached pool (or the global pool).
    pub fn run(&self, portfolio: &Portfolio, yet: &YearEventTable) -> RiskResult<Ylt> {
        match (&self.pool, self.kind) {
            (_, EngineKind::Sequential) => SequentialEngine.run(portfolio, yet, &self.opts),
            (Some(pool), EngineKind::CpuParallel) => {
                CpuParallelEngine::new(Arc::clone(pool)).run(portfolio, yet, &self.opts)
            }
            (Some(pool), EngineKind::GpuGlobal) => GpuEngine::new(
                riskpipe_simgpu::DeviceSpec::host_native(pool.thread_count()),
                GpuChunking::GlobalOnly,
                Arc::clone(pool),
            )
            .run(portfolio, yet, &self.opts),
            (Some(pool), EngineKind::GpuChunked) => GpuEngine::new(
                riskpipe_simgpu::DeviceSpec::host_native(pool.thread_count()),
                GpuChunking::SharedTiles,
                Arc::clone(pool),
            )
            .run(portfolio, yet, &self.opts),
            (None, EngineKind::CpuParallel) => {
                CpuParallelEngine::with_pool_ref(riskpipe_exec::global_pool())
                    .run(portfolio, yet, &self.opts)
            }
            (None, EngineKind::GpuGlobal) => {
                GpuEngine::on_global_pool(GpuChunking::GlobalOnly).run(portfolio, yet, &self.opts)
            }
            (None, EngineKind::GpuChunked) => {
                GpuEngine::on_global_pool(GpuChunking::SharedTiles).run(portfolio, yet, &self.opts)
            }
        }
    }
}

/// Assert that all engines produce identical YLTs on the given inputs;
/// returns the common YLT. Used by integration tests and examples.
pub fn engines_agree(
    portfolio: &Portfolio,
    yet: &YearEventTable,
    opts: &AggregateOptions,
    pool: Arc<riskpipe_exec::ThreadPool>,
) -> RiskResult<Ylt> {
    let reference = SequentialEngine.run(portfolio, yet, opts)?;
    let par = CpuParallelEngine::new(Arc::clone(&pool)).run(portfolio, yet, opts)?;
    if par != reference {
        return Err(RiskError::InvalidState(
            "CPU-parallel engine diverged from sequential".into(),
        ));
    }
    for chunking in [GpuChunking::GlobalOnly, GpuChunking::SharedTiles] {
        let gpu = GpuEngine::new(
            riskpipe_simgpu::DeviceSpec::fermi_like(),
            chunking,
            Arc::clone(&pool),
        )
        .run(portfolio, yet, opts)?;
        if gpu != reference {
            return Err(RiskError::InvalidState(format!(
                "GPU engine ({chunking:?}) diverged from sequential"
            )));
        }
    }
    Ok(reference)
}

#[cfg(test)]
mod per_layer_tests {
    use super::*;
    use crate::portfolio::Layer;
    use crate::terms::LayerTerms;
    use riskpipe_tables::elt::{EltBuilder, EltRecord};
    use riskpipe_tables::yet::{Occurrence, YetBuilder};
    use riskpipe_types::rng::{Rng64, SplitMix64};
    use riskpipe_types::LayerId;

    fn fixture() -> (Portfolio, YearEventTable) {
        let mut rng = SplitMix64::new(404);
        let mut b = EltBuilder::new();
        for e in 0..150u32 {
            let mean = 20.0 + rng.next_f64() * 900.0;
            b.push(EltRecord {
                event_id: EventId::new(e),
                mean_loss: mean,
                sigma_i: mean * 0.2,
                sigma_c: mean * 0.1,
                exposure: mean * 5.0,
            })
            .unwrap();
        }
        let elt = std::sync::Arc::new(b.build().unwrap());
        let mut p = Portfolio::new();
        p.push(
            Layer::new(
                LayerId::new(0),
                LayerTerms::xl(50.0, 3_000.0),
                std::sync::Arc::clone(&elt),
            )
            .unwrap(),
        );
        p.push(
            Layer::new(
                LayerId::new(1),
                LayerTerms {
                    occ_retention: 0.0,
                    occ_limit: f64::INFINITY,
                    agg_retention: 400.0,
                    agg_limit: 5_000.0,
                    share: 0.4,
                },
                elt,
            )
            .unwrap(),
        );
        let mut yb = YetBuilder::new();
        for _ in 0..800 {
            let n = (rng.next_u64() % 5) as usize;
            let mut occs: Vec<Occurrence> = (0..n)
                .map(|_| Occurrence {
                    event_id: EventId::new((rng.next_u64() % 180) as u32),
                    day: (rng.next_u64() % 365) as u16,
                    z: rng.next_f64_open(),
                })
                .collect();
            occs.sort_by_key(|o| o.day);
            yb.push_trial(&occs);
        }
        (p, yb.build())
    }

    #[test]
    fn per_layer_aggregates_sum_to_portfolio() {
        let (p, yet) = fixture();
        let opts = AggregateOptions::default();
        let portfolio_ylt = SequentialEngine.run(&p, &yet, &opts).unwrap();
        let per_layer = run_per_layer(&p, &yet, &opts).unwrap();
        assert_eq!(per_layer.len(), 2);
        for t in 0..portfolio_ylt.trials() {
            let sum: f64 = per_layer.iter().map(|y| y.agg_losses()[t]).sum();
            let whole = portfolio_ylt.agg_losses()[t];
            assert!(
                (sum - whole).abs() <= 1e-9 * whole.abs().max(1.0),
                "trial {t}: per-layer {sum} vs portfolio {whole}"
            );
        }
    }

    #[test]
    fn per_layer_respects_each_layers_terms() {
        let (p, yet) = fixture();
        let opts = AggregateOptions {
            secondary_uncertainty: false,
            ..AggregateOptions::default()
        };
        let per_layer = run_per_layer(&p, &yet, &opts).unwrap();
        // Layer 1 has a 5000 aggregate limit at 40% share: no trial can
        // exceed 2000.
        for &agg in per_layer[1].agg_losses() {
            assert!(agg <= 0.4 * 5_000.0 + 1e-9, "agg {agg}");
        }
        // Per-layer max occurrence never exceeds that layer's aggregate
        // pre-limit... at least counts are consistent.
        for layer_ylt in &per_layer {
            for t in 0..layer_ylt.trials() {
                if layer_ylt.occ_counts()[t] == 0 {
                    assert_eq!(layer_ylt.max_occ_losses()[t], 0.0);
                }
            }
        }
    }
}
