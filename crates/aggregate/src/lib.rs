//! # riskpipe-aggregate
//!
//! Stage 2 of the risk-analytics pipeline: **aggregate analysis** — the
//! Monte-Carlo simulation at the heart of portfolio risk management, and
//! the computation the paper's GPU claims (15× speedup; 1M-trial
//! contract pricing in seconds) are about.
//!
//! For every trial (a pre-simulated alternative year from the YET) the
//! engine walks the year's event occurrences; for every occurrence and
//! every portfolio layer whose ELT contains the event it draws the event
//! loss (the ELT mean, or a secondary-uncertainty sample driven by the
//! occurrence's pre-simulated uniform `z`), applies the layer's
//! per-occurrence terms, accumulates the year, applies aggregate terms,
//! and emits one Year-Loss-Table row per trial.
//!
//! Three interchangeable engines compute *bit-identical* YLTs:
//!
//! * [`engine::SequentialEngine`] — the reference loop;
//! * [`engine::CpuParallelEngine`] — trials partitioned across a
//!   work-stealing pool;
//! * [`engine::GpuEngine`] — the algorithm expressed as a kernel on the
//!   simulated GPU ([`riskpipe_simgpu`]), one thread per trial, in
//!   either naive global-memory form or the paper's *chunked* form
//!   (occurrence tiles staged through block shared memory, layer terms
//!   in constant memory).
//!
//! Bit-identity holds because every stochastic choice is pre-simulated
//! (the YET) or a pure function of it (beta quantiles of `z`), so
//! scheduling cannot reorder any floating-point reduction that matters.

#![warn(missing_docs)]

pub mod engine;
pub mod marginal;
pub mod portfolio;
pub mod reinstate;
pub mod rt;
pub mod secondary;
pub mod terms;

pub use engine::{
    engines_agree, run_per_layer, AggregateEngine, AggregateOptions, AggregateRunner,
    CpuParallelEngine, EngineKind, GpuChunking, GpuEngine, SequentialEngine,
};
pub use marginal::{marginal_impact, MarginalImpact};
pub use portfolio::{Layer, Portfolio};
pub use reinstate::{price_with_reinstatements, ReinstatementPricing, ReinstatementTerms};
pub use rt::{PricingResult, RealTimePricer};
pub use secondary::{QuantileMode, SecondaryTable};
pub use terms::LayerTerms;
