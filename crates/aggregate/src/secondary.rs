//! Secondary uncertainty: turning an occurrence's pre-simulated uniform
//! `z` into an event loss.
//!
//! An ELT row gives the loss distribution's mean, independent/correlated
//! sds and exposure. Industry practice models the *damage ratio*
//! `loss / exposure` as a Beta distribution moment-matched to
//! `(mean/exposure, sigma/exposure)`; the occurrence's loss is then
//! `exposure · F⁻¹_Beta(z)`.
//!
//! Because the beta quantile costs tens of incomplete-beta evaluations,
//! the table supports the interpolation scheme the GPU papers use:
//! pre-compute each row's quantile function on a fixed grid once, then
//! answer lookups with linear interpolation. The approximation is
//! monotone in `z` and identical across all engines (they share the
//! table), preserving cross-engine bit-equality.

use riskpipe_tables::Elt;
use riskpipe_types::dist::Beta;

/// How beta quantiles are evaluated at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantileMode {
    /// Exact inverse incomplete beta per lookup (slow, reference).
    Exact,
    /// Pre-tabulated quantiles at `n` grid points, linear interpolation
    /// between them (the GPU-paper scheme). `n >= 2`.
    Interpolated(u32),
}

impl Default for QuantileMode {
    fn default() -> Self {
        // 33 points keeps the grid cache-friendly (264 B/row) while the
        // interpolation error stays ~1e-3 of exposure in the body.
        QuantileMode::Interpolated(33)
    }
}

/// Per-ELT-row secondary-uncertainty parameters, precomputed once per
/// analysis run.
#[derive(Debug, Clone)]
pub struct SecondaryTable {
    exposure: Vec<f64>,
    /// Per-row beta parameters (exact mode).
    betas: Vec<Beta>,
    /// Interpolation grid (empty in exact mode): row-major
    /// `rows × grid_n` quantile values.
    grid: Vec<f64>,
    grid_n: usize,
}

impl SecondaryTable {
    /// Build the table for an ELT.
    pub fn build(elt: &Elt, mode: QuantileMode) -> Self {
        let (_ids, mean, sigma_i, sigma_c, exposure) = elt.columns();
        let n = mean.len();
        let mut betas = Vec::with_capacity(n);
        for i in 0..n {
            let exp = exposure[i];
            let mean_dr = mean[i] / exp;
            let sigma = (sigma_i[i] * sigma_i[i] + sigma_c[i] * sigma_c[i]).sqrt();
            let sd_dr = sigma / exp;
            betas.push(Beta::from_mean_sd_clamped(mean_dr, sd_dr));
        }
        let (grid, grid_n) = match mode {
            QuantileMode::Exact => (Vec::new(), 0),
            QuantileMode::Interpolated(g) => {
                let g = g.max(2) as usize;
                // Each row's grid is independent; the Newton inversions
                // dominate analysis start-up, so build rows in parallel
                // (index-ordered collection keeps the table, and thus
                // every engine's output, deterministic).
                let pool = riskpipe_exec::global_pool();
                let grain = riskpipe_exec::suggest_grain(n, pool.thread_count(), 8);
                let rows: Vec<Vec<f64>> = riskpipe_exec::par_map_collect(pool, n, grain, |i| {
                    let beta = &betas[i];
                    (0..g)
                        .map(|k| {
                            // Grid over (0,1) excluding the exact
                            // endpoints: u_k = (k + 0.5) / g keeps
                            // quantiles finite.
                            let u = (k as f64 + 0.5) / g as f64;
                            beta.quantile(u)
                        })
                        .collect()
                });
                let mut grid = Vec::with_capacity(n * g);
                for row in rows {
                    grid.extend_from_slice(&row);
                }
                (grid, g)
            }
        };
        Self {
            exposure: exposure.to_vec(),
            betas,
            grid,
            grid_n,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.exposure.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.exposure.is_empty()
    }

    /// The loss for ELT row `row` at uniform `z`.
    #[inline]
    pub fn loss(&self, row: u32, z: f64) -> f64 {
        let r = row as usize;
        let dr = if self.grid_n == 0 {
            self.betas[r].quantile(z)
        } else {
            self.interp(r, z)
        };
        self.exposure[r] * dr
    }

    /// Linear interpolation into the row's quantile grid.
    #[inline]
    fn interp(&self, row: usize, z: f64) -> f64 {
        let g = self.grid_n;
        let base = row * g;
        // Grid abscissae are u_k = (k + 0.5)/g; invert to a fractional
        // index and clamp to the grid ends.
        let pos = z * g as f64 - 0.5;
        if pos <= 0.0 {
            return self.grid[base];
        }
        let k = pos as usize;
        if k + 1 >= g {
            return self.grid[base + g - 1];
        }
        let w = pos - k as f64;
        self.grid[base + k] * (1.0 - w) + self.grid[base + k + 1] * w
    }

    /// Heap footprint in bytes (the interpolation grid dominates).
    pub fn memory_bytes(&self) -> usize {
        self.exposure.len() * 8 + self.betas.len() * 16 + self.grid.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_tables::elt::{EltBuilder, EltRecord};
    use riskpipe_types::EventId;

    fn sample_elt() -> Elt {
        let mut b = EltBuilder::new();
        for i in 1..=20u32 {
            let mean = 1_000.0 * i as f64;
            b.push(EltRecord {
                event_id: EventId::new(i),
                mean_loss: mean,
                sigma_i: mean * 0.4,
                sigma_c: mean * 0.2,
                exposure: mean * 8.0,
            })
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn loss_monotone_in_z() {
        let elt = sample_elt();
        for mode in [QuantileMode::Exact, QuantileMode::Interpolated(33)] {
            let t = SecondaryTable::build(&elt, mode);
            for row in [0u32, 7, 19] {
                let mut prev = -1.0;
                for k in 1..100 {
                    let l = t.loss(row, k as f64 / 100.0);
                    assert!(l >= prev, "{mode:?} row {row} non-monotone");
                    prev = l;
                }
            }
        }
    }

    #[test]
    fn loss_bounded_by_exposure() {
        let elt = sample_elt();
        let t = SecondaryTable::build(&elt, QuantileMode::Exact);
        let (_, _, _, _, exposure) = elt.columns();
        for row in 0..elt.len() as u32 {
            for &z in &[0.001, 0.5, 0.999] {
                let l = t.loss(row, z);
                assert!(l >= 0.0);
                assert!(l <= exposure[row as usize]);
            }
        }
    }

    #[test]
    fn mean_of_quantiles_recovers_elt_mean() {
        // E[loss] = exposure * E[Beta] = exposure * mean_dr = mean_loss;
        // averaging the quantile over u approximates the expectation.
        let elt = sample_elt();
        let t = SecondaryTable::build(&elt, QuantileMode::Exact);
        let n = 2_000;
        let row = 4u32;
        let mut sum = 0.0;
        for k in 0..n {
            sum += t.loss(row, (k as f64 + 0.5) / n as f64);
        }
        let mean = sum / n as f64;
        let expect = elt.mean_loss_at(row);
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean {mean} vs elt {expect}"
        );
    }

    #[test]
    fn interpolated_tracks_exact() {
        let elt = sample_elt();
        let exact = SecondaryTable::build(&elt, QuantileMode::Exact);
        let interp = SecondaryTable::build(&elt, QuantileMode::Interpolated(65));
        let (_, _, _, _, exposure) = elt.columns();
        for row in 0..elt.len() as u32 {
            for k in 1..50 {
                let z = k as f64 / 50.0;
                let e = exact.loss(row, z);
                let i = interp.loss(row, z);
                assert!(
                    (e - i).abs() <= 0.02 * exposure[row as usize],
                    "row {row} z {z}: exact {e} vs interp {i}"
                );
            }
        }
    }

    #[test]
    fn extreme_z_clamps_to_grid_ends() {
        let elt = sample_elt();
        let t = SecondaryTable::build(&elt, QuantileMode::Interpolated(17));
        let near0 = t.loss(0, 1e-12);
        let near1 = t.loss(0, 1.0 - 1e-12);
        assert!(near0 >= 0.0);
        assert!(near1 >= near0);
    }

    #[test]
    fn memory_scales_with_grid() {
        let elt = sample_elt();
        let small = SecondaryTable::build(&elt, QuantileMode::Interpolated(9));
        let big = SecondaryTable::build(&elt, QuantileMode::Interpolated(129));
        assert!(big.memory_bytes() > small.memory_bytes());
        assert_eq!(small.len(), elt.len());
    }
}
