//! Reinsurance layer terms: the financial structure applied during
//! aggregate analysis.
//!
//! A layer (an excess-of-loss reinsurance contract) pays, per
//! occurrence, the loss above a retention up to a limit; an annual
//! aggregate retention/limit then applies across the year; the
//! reinsurer's share scales the result.

use riskpipe_types::{RiskError, RiskResult};

/// Financial terms of one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerTerms {
    /// Per-occurrence retention (attachment point).
    pub occ_retention: f64,
    /// Per-occurrence limit (width of the layer).
    pub occ_limit: f64,
    /// Annual aggregate retention.
    pub agg_retention: f64,
    /// Annual aggregate limit.
    pub agg_limit: f64,
    /// Reinsurer's share in `(0, 1]`.
    pub share: f64,
}

impl LayerTerms {
    /// Terms that pass losses through unchanged (ground-up view).
    pub fn pass_through() -> Self {
        Self {
            occ_retention: 0.0,
            occ_limit: f64::INFINITY,
            agg_retention: 0.0,
            agg_limit: f64::INFINITY,
            share: 1.0,
        }
    }

    /// A typical per-occurrence excess-of-loss layer
    /// (`occ_limit xs occ_retention`, full share, unlimited aggregate).
    pub fn xl(occ_retention: f64, occ_limit: f64) -> Self {
        Self {
            occ_retention,
            occ_limit,
            agg_retention: 0.0,
            agg_limit: f64::INFINITY,
            share: 1.0,
        }
    }

    /// Validate the terms.
    // The negated comparisons are deliberate: `!(x > 0.0)` also
    // rejects NaN, which `x <= 0.0` would let through.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> RiskResult<()> {
        if self.occ_retention < 0.0 || self.agg_retention < 0.0 {
            return Err(RiskError::invalid("retentions must be non-negative"));
        }
        if !(self.occ_limit > 0.0) || !(self.agg_limit > 0.0) {
            return Err(RiskError::invalid("limits must be positive"));
        }
        if !(self.share > 0.0 && self.share <= 1.0) {
            return Err(RiskError::invalid(format!(
                "share must be in (0,1]: {}",
                self.share
            )));
        }
        Ok(())
    }

    /// Net-of-occurrence-terms loss for one occurrence's gross loss.
    #[inline]
    pub fn apply_occurrence(&self, gross: f64) -> f64 {
        (gross - self.occ_retention).max(0.0).min(self.occ_limit)
    }

    /// Net-of-aggregate-terms annual amount for the year's accumulated
    /// (post-occurrence-terms) losses, scaled by share.
    #[inline]
    pub fn apply_aggregate(&self, annual: f64) -> f64 {
        (annual - self.agg_retention).max(0.0).min(self.agg_limit) * self.share
    }

    /// The layer's terms as an 5-element f64 array (constant-memory
    /// layout for the GPU kernel).
    pub fn to_array(&self) -> [f64; 5] {
        [
            self.occ_retention,
            self.occ_limit,
            self.agg_retention,
            self.agg_limit,
            self.share,
        ]
    }

    /// Inverse of [`LayerTerms::to_array`].
    pub fn from_array(a: [f64; 5]) -> Self {
        Self {
            occ_retention: a[0],
            occ_limit: a[1],
            agg_retention: a[2],
            agg_limit: a[3],
            share: a[4],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn occurrence_terms_shape() {
        let t = LayerTerms::xl(100.0, 400.0);
        assert_eq!(t.apply_occurrence(50.0), 0.0); // below attachment
        assert_eq!(t.apply_occurrence(100.0), 0.0); // at attachment
        assert_eq!(t.apply_occurrence(300.0), 200.0); // inside layer
        assert_eq!(t.apply_occurrence(500.0), 400.0); // at exhaustion
        assert_eq!(t.apply_occurrence(1_000.0), 400.0); // capped
    }

    #[test]
    fn aggregate_terms_and_share() {
        let t = LayerTerms {
            occ_retention: 0.0,
            occ_limit: f64::INFINITY,
            agg_retention: 100.0,
            agg_limit: 300.0,
            share: 0.5,
        };
        assert_eq!(t.apply_aggregate(50.0), 0.0);
        assert_eq!(t.apply_aggregate(200.0), 50.0); // (200-100)*0.5
        assert_eq!(t.apply_aggregate(1_000.0), 150.0); // capped at 300*0.5
    }

    #[test]
    fn pass_through_is_identity() {
        let t = LayerTerms::pass_through();
        for v in [0.0, 1.0, 1e9] {
            assert_eq!(t.apply_occurrence(v), v);
            assert_eq!(t.apply_aggregate(v), v);
        }
    }

    #[test]
    fn validation_catches_bad_terms() {
        assert!(LayerTerms::xl(-1.0, 10.0).validate().is_err());
        assert!(LayerTerms {
            occ_limit: 0.0,
            ..LayerTerms::pass_through()
        }
        .validate()
        .is_err());
        assert!(LayerTerms {
            share: 0.0,
            ..LayerTerms::pass_through()
        }
        .validate()
        .is_err());
        assert!(LayerTerms {
            share: 1.5,
            ..LayerTerms::pass_through()
        }
        .validate()
        .is_err());
        assert!(LayerTerms::xl(10.0, 40.0).validate().is_ok());
    }

    #[test]
    fn array_round_trip() {
        let t = LayerTerms {
            occ_retention: 1.0,
            occ_limit: 2.0,
            agg_retention: 3.0,
            agg_limit: 4.0,
            share: 0.25,
        };
        assert_eq!(LayerTerms::from_array(t.to_array()), t);
    }

    proptest! {
        #[test]
        fn occurrence_application_is_monotone_and_bounded(
            ret in 0.0..1e6f64,
            lim in 1.0..1e6f64,
            a in 0.0..1e7f64,
            b in 0.0..1e7f64,
        ) {
            let t = LayerTerms::xl(ret, lim);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let fa = t.apply_occurrence(lo);
            let fb = t.apply_occurrence(hi);
            prop_assert!(fa <= fb, "monotonicity violated");
            prop_assert!(fb <= lim + 1e-9, "limit violated");
            prop_assert!(fa >= 0.0);
        }

        #[test]
        fn net_never_exceeds_gross(ret in 0.0..1e6f64, lim in 1.0..1e6f64, g in 0.0..1e7f64) {
            let t = LayerTerms::xl(ret, lim);
            prop_assert!(t.apply_occurrence(g) <= g);
        }

        #[test]
        fn aggregate_share_scales_linearly(
            annual in 0.0..1e7f64,
            share in 0.01..1.0f64,
        ) {
            let full = LayerTerms { share: 1.0, ..LayerTerms::xl(0.0, f64::INFINITY) };
            let partial = LayerTerms { share, ..full };
            let f = full.apply_aggregate(annual);
            let p = partial.apply_aggregate(annual);
            prop_assert!((p - f * share).abs() < 1e-6 * f.max(1.0));
        }
    }
}
