//! Real-time pricing: the paper's "a 1 million trial aggregate
//! simulation on a typical contract only takes 25 seconds and can
//! therefore support real-time pricing" (experiment E2).
//!
//! The pricer is a thin, latency-focused wrapper over the parallel
//! engine for a *single* layer: it measures wall time, derives the
//! pure premium and a standard-deviation-loaded technical premium, and
//! reports whether the run met an interactivity budget.

use crate::engine::{AggregateEngine, AggregateOptions, CpuParallelEngine};
use crate::portfolio::{Layer, Portfolio};
use riskpipe_exec::ThreadPool;
use riskpipe_tables::yet::YearEventTable;
use riskpipe_types::stats::quantile_sorted;
use riskpipe_types::{RiskResult, RunningStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a pricing run.
#[derive(Debug, Clone)]
pub struct PricingResult {
    /// Trials simulated.
    pub trials: usize,
    /// Mean annual ceded loss (pure premium).
    pub pure_premium: f64,
    /// Standard deviation of annual ceded loss.
    pub sd: f64,
    /// Technical premium: pure premium + loading × sd.
    pub technical_premium: f64,
    /// 99% VaR of the annual ceded loss.
    pub var99: f64,
    /// Wall-clock simulation time.
    pub elapsed: Duration,
    /// Trials per second achieved.
    pub trials_per_second: f64,
}

impl PricingResult {
    /// Whether the run met an interactive latency budget.
    pub fn is_realtime(&self, budget: Duration) -> bool {
        self.elapsed <= budget
    }
}

/// Single-contract pricer.
pub struct RealTimePricer {
    pool: Arc<ThreadPool>,
    /// Standard-deviation loading factor for the technical premium.
    pub sd_loading: f64,
    /// Engine options.
    pub opts: AggregateOptions,
}

impl RealTimePricer {
    /// A pricer on the given pool with the industry-typical 0.3 sd
    /// loading.
    pub fn new(pool: Arc<ThreadPool>) -> Self {
        Self {
            pool,
            sd_loading: 0.3,
            opts: AggregateOptions::default(),
        }
    }

    /// Price one layer against a YET.
    pub fn price(&self, layer: Layer, yet: &YearEventTable) -> RiskResult<PricingResult> {
        let mut portfolio = Portfolio::new();
        portfolio.push(layer);
        let engine = CpuParallelEngine::new(Arc::clone(&self.pool));
        // lint: allow(D3) — reading feeds only the reported elapsed-time
        // field of PricingResult; premiums are computed from the YLT alone.
        let start = Instant::now();
        let ylt = engine.run(&portfolio, yet, &self.opts)?;
        let elapsed = start.elapsed();
        let stats: RunningStats = ylt.agg_losses().iter().copied().collect();
        let sorted = ylt.sorted_agg_losses();
        let pure = stats.mean();
        let sd = stats.sd();
        Ok(PricingResult {
            trials: ylt.trials(),
            pure_premium: pure,
            sd,
            technical_premium: pure + self.sd_loading * sd,
            var99: quantile_sorted(&sorted, 0.99),
            elapsed,
            trials_per_second: ylt.trials() as f64 / elapsed.as_secs_f64().max(1e-9),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::LayerTerms;
    use riskpipe_tables::elt::{EltBuilder, EltRecord};
    use riskpipe_tables::yet::{Occurrence, YetBuilder};
    use riskpipe_types::rng::{Rng64, SplitMix64};
    use riskpipe_types::{EventId, LayerId};

    fn inputs(trials: usize) -> (Layer, YearEventTable) {
        let mut rng = SplitMix64::new(21);
        let mut b = EltBuilder::new();
        for e in 0..500u32 {
            let mean = 50.0 + rng.next_f64() * 2_000.0;
            b.push(EltRecord {
                event_id: EventId::new(e),
                mean_loss: mean,
                sigma_i: mean * 0.3,
                sigma_c: mean * 0.15,
                exposure: mean * 5.0,
            })
            .unwrap();
        }
        let layer = Layer::new(
            LayerId::new(0),
            LayerTerms::xl(100.0, 10_000.0),
            Arc::new(b.build().unwrap()),
        )
        .unwrap();
        let mut yb = YetBuilder::new();
        for _ in 0..trials {
            let n = (rng.next_u64() % 4) as usize;
            let mut occs: Vec<Occurrence> = (0..n)
                .map(|_| Occurrence {
                    event_id: EventId::new((rng.next_u64() % 500) as u32),
                    day: (rng.next_u64() % 365) as u16,
                    z: rng.next_f64_open(),
                })
                .collect();
            occs.sort_by_key(|o| o.day);
            yb.push_trial(&occs);
        }
        (layer, yb.build())
    }

    #[test]
    fn premium_components_are_consistent() {
        let (layer, yet) = inputs(5_000);
        let pricer = RealTimePricer::new(Arc::new(ThreadPool::new(4)));
        let r = pricer.price(layer, &yet).unwrap();
        assert_eq!(r.trials, 5_000);
        assert!(r.pure_premium > 0.0);
        assert!(r.sd > 0.0);
        assert!((r.technical_premium - (r.pure_premium + 0.3 * r.sd)).abs() < 1e-9);
        assert!(r.var99 >= r.pure_premium); // skewed cat loss
        assert!(r.trials_per_second > 0.0);
    }

    #[test]
    fn realtime_budget_check() {
        let (layer, yet) = inputs(1_000);
        let pricer = RealTimePricer::new(Arc::new(ThreadPool::new(4)));
        let r = pricer.price(layer, &yet).unwrap();
        assert!(r.is_realtime(Duration::from_secs(60)));
        assert!(!r.is_realtime(Duration::from_nanos(1)));
    }

    #[test]
    fn deterministic_premium_across_runs() {
        let (layer, yet) = inputs(2_000);
        let pricer = RealTimePricer::new(Arc::new(ThreadPool::new(4)));
        let a = pricer.price(layer.clone(), &yet).unwrap();
        let b = pricer.price(layer, &yet).unwrap();
        assert_eq!(a.pure_premium.to_bits(), b.pure_premium.to_bits());
        assert_eq!(a.var99.to_bits(), b.var99.to_bits());
    }
}
