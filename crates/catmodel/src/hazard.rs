//! The hazard module: event + site → local intensity.
//!
//! Intensities are expressed on a common 0–12 scale (MMI-like) for all
//! perils so that one family of vulnerability curves can consume them;
//! each peril has its own attenuation shape:
//!
//! * **Earthquake** — logarithmic decay with distance (standard
//!   intensity-attenuation form `I = c₀ + c₁·M − c₂·ln(d + c₃)`).
//! * **Hurricane** — exponential decay of the wind field away from the
//!   track point.
//! * **Flood** — sharp power-law decay: floods devastate locally and
//!   vanish quickly with distance.

use crate::catalog::CatalogEvent;
use crate::geo::GeoPoint;
use crate::peril::Peril;

/// Intensity produced by `event` at `site`, on the 0–12 scale.
/// Returns 0 outside the peril's maximum radius.
#[inline]
pub fn site_intensity(event: &CatalogEvent, site: &GeoPoint) -> f64 {
    let d = event.center.distance_km(site);
    intensity_at_distance(event.peril, event.magnitude, d)
}

/// Attenuation as a function of peril, magnitude, and distance (km).
#[inline]
pub fn intensity_at_distance(peril: Peril, magnitude: f64, d_km: f64) -> f64 {
    if d_km > peril.max_radius_km() {
        return 0.0;
    }
    let i = match peril {
        // I = c0 + c1 M − c2 ln(d + c3): classic intensity attenuation.
        Peril::Earthquake => 0.5 + 1.6 * magnitude - 1.8 * (d_km + 8.0).ln(),
        // Wind-field style: peak scales with magnitude, e-folding 90 km.
        Peril::Hurricane => (1.35 * magnitude) * (-d_km / 90.0).exp(),
        // Sharp local footprint: power-law with small core radius.
        Peril::Flood => (1.45 * magnitude) / (1.0 + (d_km / 6.0).powi(2)),
    };
    i.clamp(0.0, 12.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_types::EventId;

    fn event(peril: Peril, magnitude: f64) -> CatalogEvent {
        CatalogEvent {
            id: EventId::new(0),
            peril,
            rate: 0.1,
            magnitude,
            center: GeoPoint::new(500.0, 500.0),
        }
    }

    #[test]
    fn intensity_decreases_with_distance() {
        for peril in Peril::ALL {
            let mut prev = f64::INFINITY;
            for d in [0.0, 5.0, 20.0, 50.0, 100.0, 200.0] {
                let i = intensity_at_distance(peril, 7.5, d);
                assert!(
                    i <= prev + 1e-12,
                    "{peril}: intensity rose from {prev} to {i} at d={d}"
                );
                prev = i;
            }
        }
    }

    #[test]
    fn intensity_increases_with_magnitude() {
        for peril in Peril::ALL {
            for d in [0.0, 10.0, 50.0] {
                let lo = intensity_at_distance(peril, 5.5, d);
                let hi = intensity_at_distance(peril, 8.5, d);
                assert!(hi >= lo, "{peril} at d={d}: {hi} < {lo}");
            }
        }
    }

    #[test]
    fn zero_beyond_max_radius() {
        for peril in Peril::ALL {
            let r = peril.max_radius_km();
            assert_eq!(intensity_at_distance(peril, 9.0, r + 1.0), 0.0);
        }
    }

    #[test]
    fn intensity_bounded_by_scale() {
        for peril in Peril::ALL {
            for d in [0.0, 1.0, 10.0] {
                let i = intensity_at_distance(peril, 9.0, d);
                assert!((0.0..=12.0).contains(&i));
            }
        }
    }

    #[test]
    fn site_intensity_uses_event_center() {
        let e = event(Peril::Earthquake, 8.0);
        let near = site_intensity(&e, &GeoPoint::new(505.0, 500.0));
        let far = site_intensity(&e, &GeoPoint::new(700.0, 500.0));
        assert!(near > far);
        assert!(near > 0.0);
    }

    #[test]
    fn flood_is_more_local_than_earthquake() {
        let at = |p: Peril, d: f64| intensity_at_distance(p, 8.0, d);
        // Relative decay at 50 km is much stronger for flood.
        let eq_ratio = at(Peril::Earthquake, 50.0) / at(Peril::Earthquake, 0.0);
        let fl_ratio = at(Peril::Flood, 50.0) / at(Peril::Flood, 0.0);
        assert!(fl_ratio < eq_ratio * 0.5, "fl={fl_ratio} eq={eq_ratio}");
    }
}
