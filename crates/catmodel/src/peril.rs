//! Perils: the catastrophe types the synthetic catalogue models.

use std::fmt;

/// The modelled peril of a catalogue event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Peril {
    /// Crustal earthquake: Gutenberg–Richter frequency-magnitude,
    /// logarithmic attenuation with distance.
    Earthquake,
    /// Hurricane / tropical cyclone wind: lognormal severity,
    /// exponential decay of wind with distance from the track point.
    Hurricane,
    /// Riverine flood: sharp, localised footprint.
    Flood,
}

impl Peril {
    /// All modelled perils.
    pub const ALL: [Peril; 3] = [Peril::Earthquake, Peril::Hurricane, Peril::Flood];

    /// A stable small integer code (used by codecs and stream keying).
    pub const fn code(self) -> u8 {
        match self {
            Peril::Earthquake => 0,
            Peril::Hurricane => 1,
            Peril::Flood => 2,
        }
    }

    /// Inverse of [`Peril::code`].
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Peril::Earthquake),
            1 => Some(Peril::Hurricane),
            2 => Some(Peril::Flood),
            _ => None,
        }
    }

    /// Maximum radius (km) beyond which the peril produces no damaging
    /// intensity — the footprint cut-off used to skip distant sites.
    pub fn max_radius_km(self) -> f64 {
        match self {
            Peril::Earthquake => 300.0,
            Peril::Hurricane => 400.0,
            Peril::Flood => 60.0,
        }
    }
}

impl fmt::Display for Peril {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Peril::Earthquake => "earthquake",
            Peril::Hurricane => "hurricane",
            Peril::Flood => "flood",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_round_trips() {
        for p in Peril::ALL {
            assert_eq!(Peril::from_code(p.code()), Some(p));
        }
        assert_eq!(Peril::from_code(99), None);
    }

    #[test]
    fn radii_are_positive_and_peril_specific() {
        for p in Peril::ALL {
            assert!(p.max_radius_km() > 0.0);
        }
        assert!(Peril::Flood.max_radius_km() < Peril::Earthquake.max_radius_km());
    }

    #[test]
    fn display_names() {
        assert_eq!(Peril::Earthquake.to_string(), "earthquake");
        assert_eq!(Peril::Hurricane.to_string(), "hurricane");
        assert_eq!(Peril::Flood.to_string(), "flood");
    }
}
