//! # riskpipe-catmodel
//!
//! Stage 1 of the risk-analytics pipeline: **risk modelling** with a
//! synthetic catastrophe model.
//!
//! The paper describes this stage as taking two inputs — a *stochastic
//! event catalogue* (mathematical representations of natural-occurrence
//! patterns) and an *exposure database* (attributes of insured
//! buildings) — and running each event-exposure pair through three
//! modules:
//!
//! 1. **hazard** — the intensity the event produces at each exposed
//!    site ([`hazard`]);
//! 2. **vulnerability** — the damage level that intensity causes given
//!    the building's construction ([`vulnerability`]);
//! 3. **financial** — the monetary loss after location-level insurance
//!    terms ([`financial`]).
//!
//! The output is an Event-Loss Table per contract ([`eltgen`]). This
//! crate also hosts the Year-Event-Table pre-simulation ([`yetgen`]):
//! the catalogue's annual rates drive a Poisson/alias sampler producing
//! the "millions of alternative views of a contractual year" consumed by
//! stage 2.
//!
//! Everything here substitutes for proprietary vendor models (RMS/AIR)
//! per DESIGN.md: parametric but *structurally faithful* — attenuation
//! decays with distance, damage ratios are monotone in intensity and
//! bounded by exposed value, rates follow Gutenberg–Richter-style
//! frequency-severity scaling.

#![warn(missing_docs)]

pub mod catalog;
pub mod eltgen;
pub mod exposure;
pub mod financial;
pub mod geo;
pub mod hazard;
pub mod peril;
pub mod postevent;
pub mod stage1io;
pub mod vulnerability;
pub mod yetgen;

pub use catalog::{CatalogConfig, CatalogEvent, EventCatalog};
pub use eltgen::{EltGenConfig, GroundUpModel, Stage1Output};
pub use exposure::{ExposureConfig, ExposureLocation, ExposurePortfolio};
pub use geo::{GeoPoint, Region};
pub use hazard::site_intensity;
pub use peril::Peril;
pub use postevent::{rapid_estimate, ObservedEvent, PostEventEstimate};
pub use vulnerability::ConstructionClass;
pub use yetgen::{simulate_yet, YetConfig};
