//! Year-Event-Table pre-simulation: the Monte-Carlo step that turns a
//! catalogue's annual rates into "alternative views of a contractual
//! year" (the paper's aggregate-analysis input).
//!
//! Per trial: the number of occurrences is Poisson with the catalogue's
//! total rate; each occurrence picks an event by rate-weighted alias
//! sampling, a day uniformly in the year, and a uniform `z` for
//! downstream secondary uncertainty. Trials are generated in parallel,
//! each from its own counter-based Philox stream keyed by
//! `(seed, trial)` — the table is bit-identical regardless of thread
//! count.

use crate::catalog::EventCatalog;
use riskpipe_exec::{par_map_collect, suggest_grain, ThreadPool};
use riskpipe_tables::yet::{Occurrence, YearEventTable, YetBuilder};
use riskpipe_types::dist::{AliasTable, Poisson};
use riskpipe_types::rng::{Rng64, SeedStream};
use riskpipe_types::{EventId, RiskError, RiskResult};

/// Configuration of YET pre-simulation.
#[derive(Debug, Clone, Copy)]
pub struct YetConfig {
    /// Number of trials (alternative years) to simulate.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for YetConfig {
    fn default() -> Self {
        Self {
            trials: 10_000,
            seed: 0x5EED_0FE4,
        }
    }
}

impl YetConfig {
    /// A stable 64-bit key over every field that influences simulation
    /// (see [`crate::CatalogConfig::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = riskpipe_types::Fingerprint::new("catmodel::YetConfig");
        fp.push_usize(self.trials).push_u64(self.seed);
        fp.finish()
    }
}

/// Simulate one trial's occurrences (deterministic in `(seed, trial)`).
fn simulate_trial(
    streams: &SeedStream,
    trial: u64,
    freq: &Poisson,
    alias: &AliasTable,
) -> Vec<Occurrence> {
    let mut rng = streams.stream(trial);
    let n = freq.sample_count(&mut rng);
    let mut occs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let event_index = alias.sample(&mut rng);
        let day = rng.next_below(365) as u16;
        let z = rng.next_f64_open();
        occs.push(Occurrence {
            event_id: EventId::new(event_index as u32),
            day,
            z,
        });
    }
    // Temporal order within the year (stable: ties keep sample order,
    // which is itself deterministic).
    occs.sort_by_key(|o| o.day);
    occs
}

/// Pre-simulate a YET for a catalogue.
pub fn simulate_yet(
    catalog: &EventCatalog,
    cfg: &YetConfig,
    pool: &ThreadPool,
) -> RiskResult<YearEventTable> {
    if cfg.trials == 0 {
        return Err(RiskError::invalid("trial count must be positive"));
    }
    let alias = AliasTable::new(&catalog.rates())?;
    let freq = Poisson::new(catalog.total_rate());
    let streams = SeedStream::new(cfg.seed);
    let grain = suggest_grain(cfg.trials, pool.thread_count(), 64);
    let per_trial: Vec<Vec<Occurrence>> = par_map_collect(pool, cfg.trials, grain, |t| {
        simulate_trial(&streams, t as u64, &freq, &alias)
    });
    let total: usize = per_trial.iter().map(|v| v.len()).sum();
    let mut builder = YetBuilder::with_capacity(cfg.trials, total);
    for occs in &per_trial {
        builder.push_trial(occs);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use riskpipe_types::TrialId;

    fn catalog(rate: f64) -> EventCatalog {
        EventCatalog::generate(&CatalogConfig {
            events: 500,
            total_annual_rate: rate,
            seed: 3,
            ..CatalogConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn mean_occurrences_match_total_rate() {
        let cat = catalog(8.0);
        let pool = ThreadPool::new(4);
        let yet = simulate_yet(
            &cat,
            &YetConfig {
                trials: 20_000,
                seed: 1,
            },
            &pool,
        )
        .unwrap();
        let mean = yet.mean_occurrences();
        assert!((mean - 8.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let cat = catalog(5.0);
        let cfg = YetConfig {
            trials: 500,
            seed: 42,
        };
        let a = simulate_yet(&cat, &cfg, &ThreadPool::new(1)).unwrap();
        let b = simulate_yet(&cat, &cfg, &ThreadPool::new(8)).unwrap();
        assert_eq!(a.total_occurrences(), b.total_occurrences());
        for t in 0..a.trials() {
            let t = TrialId::new(t as u32);
            assert_eq!(a.trial_slices(t), b.trial_slices(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cat = catalog(5.0);
        let a = simulate_yet(
            &cat,
            &YetConfig {
                trials: 200,
                seed: 1,
            },
            &ThreadPool::new(2),
        )
        .unwrap();
        let b = simulate_yet(
            &cat,
            &YetConfig {
                trials: 200,
                seed: 2,
            },
            &ThreadPool::new(2),
        )
        .unwrap();
        assert_ne!(a.total_occurrences(), b.total_occurrences());
    }

    #[test]
    fn occurrences_sorted_by_day_with_valid_fields() {
        let cat = catalog(20.0);
        let pool = ThreadPool::new(2);
        let yet = simulate_yet(
            &cat,
            &YetConfig {
                trials: 200,
                seed: 9,
            },
            &pool,
        )
        .unwrap();
        for t in 0..yet.trials() {
            let (es, ds, zs) = yet.trial_slices(TrialId::new(t as u32));
            for w in ds.windows(2) {
                assert!(w[0] <= w[1], "days out of order");
            }
            for &d in ds {
                assert!(d < 365);
            }
            for &z in zs {
                assert!(z > 0.0 && z < 1.0);
            }
            for &e in es {
                assert!((e as usize) < cat.len());
            }
        }
    }

    #[test]
    fn event_frequency_tracks_rates() {
        let cat = catalog(50.0);
        let pool = ThreadPool::new(4);
        let yet = simulate_yet(
            &cat,
            &YetConfig {
                trials: 10_000,
                seed: 7,
            },
            &pool,
        )
        .unwrap();
        // Count occurrences of the highest-rate event; expectation =
        // rate * trials.
        let rates = cat.rates();
        let (max_idx, &max_rate) = rates
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let mut count = 0u64;
        for t in 0..yet.trials() {
            let (es, _, _) = yet.trial_slices(TrialId::new(t as u32));
            count += es.iter().filter(|&&e| e as usize == max_idx).count() as u64;
        }
        let expect = max_rate * yet.trials() as f64;
        assert!(
            (count as f64 - expect).abs() < 5.0 * expect.sqrt().max(3.0),
            "count={count} expect={expect}"
        );
    }

    #[test]
    fn zero_trials_rejected() {
        let cat = catalog(5.0);
        assert!(
            simulate_yet(&cat, &YetConfig { trials: 0, seed: 0 }, &ThreadPool::new(1)).is_err()
        );
    }
}
