//! ELT generation: run every event-exposure pair through the hazard,
//! vulnerability and financial modules and emit an Event-Loss Table.
//!
//! This is the compute-intensive half of stage 1 (the paper: "risk
//! modelling is highly compute and data intensive ... data organised in
//! a small number of very large tables and streamed by independent
//! processes, further to which the results need to be aggregated"). The
//! generator parallelises over events — each event's footprint
//! computation is independent — and aggregates the per-event rows into
//! the columnar ELT at the end, exactly that stream-then-aggregate
//! shape.

use crate::catalog::EventCatalog;
use crate::exposure::ExposurePortfolio;
use crate::financial::{location_loss, location_max_loss};
use crate::hazard::site_intensity;
use crate::yetgen::{simulate_yet, YetConfig};
use riskpipe_exec::{par_map_collect, suggest_grain, ThreadPool};
use riskpipe_tables::elt::{Elt, EltBuilder, EltRecord};
use riskpipe_tables::yet::YearEventTable;
use riskpipe_types::{LocationId, RiskResult};
use std::sync::Arc;

/// Configuration of the ELT generator.
#[derive(Debug, Clone, Copy)]
pub struct EltGenConfig {
    /// Mean-loss threshold below which an event gets no ELT row
    /// (vendor models prune negligible rows the same way).
    pub min_mean_loss: f64,
    /// Fraction of per-location loss uncertainty that is correlated
    /// across locations (0 = fully independent, 1 = fully correlated).
    pub correlation_weight: f64,
}

impl Default for EltGenConfig {
    fn default() -> Self {
        Self {
            min_mean_loss: 1.0,
            correlation_weight: 0.3,
        }
    }
}

impl EltGenConfig {
    /// A stable 64-bit key over every field that influences ELT
    /// generation (see [`crate::CatalogConfig::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = riskpipe_types::Fingerprint::new("catmodel::EltGenConfig");
        fp.push_f64(self.min_mean_loss)
            .push_f64(self.correlation_weight);
        fp.finish()
    }
}

/// The hazard-vulnerability-financial composition for one (catalogue,
/// exposure) pair: computes per-location and per-event loss statistics.
pub struct GroundUpModel<'a> {
    catalog: &'a EventCatalog,
    exposure: &'a ExposurePortfolio,
    cfg: EltGenConfig,
}

impl<'a> GroundUpModel<'a> {
    /// Bind a catalogue and an exposure portfolio.
    pub fn new(
        catalog: &'a EventCatalog,
        exposure: &'a ExposurePortfolio,
        cfg: EltGenConfig,
    ) -> Self {
        Self {
            catalog,
            exposure,
            cfg,
        }
    }

    /// Stream the mean insured loss of every affected location for one
    /// event. This is the YELLT emission path: nothing is materialised.
    pub fn for_each_location_loss(&self, event_index: usize, mut f: impl FnMut(LocationId, f64)) {
        let event = &self.catalog.events()[event_index];
        for loc in self.exposure.locations() {
            let intensity = site_intensity(event, &loc.position);
            if intensity <= 0.0 {
                continue;
            }
            let mdr = loc.construction.mean_damage_ratio(intensity);
            if mdr <= 0.0 {
                continue;
            }
            let loss = location_loss(loc, mdr);
            if loss > 0.0 {
                f(loc.id, loss);
            }
        }
    }

    /// The ELT row for one event, or `None` if the event's mean loss is
    /// below threshold. The variance decomposition follows the industry
    /// convention: per-location sds combine in quadrature into σᵢ
    /// (independent) and linearly, weighted by the correlation weight,
    /// into σc (correlated).
    pub fn event_record(&self, event_index: usize) -> Option<EltRecord> {
        let event = &self.catalog.events()[event_index];
        let mut mean = 0.0f64;
        let mut var_sum = 0.0f64;
        let mut sd_sum = 0.0f64;
        let mut exposure = 0.0f64;
        for loc in self.exposure.locations() {
            let intensity = site_intensity(event, &loc.position);
            if intensity <= 0.0 {
                continue;
            }
            let mdr = loc.construction.mean_damage_ratio(intensity);
            if mdr <= 0.0 {
                continue;
            }
            let loss = location_loss(loc, mdr);
            if loss <= 0.0 {
                continue;
            }
            let sd_loc = loc.construction.damage_ratio_sd(mdr) * loc.tiv;
            mean += loss;
            var_sum += sd_loc * sd_loc;
            sd_sum += sd_loc;
            exposure += location_max_loss(loc);
        }
        if mean < self.cfg.min_mean_loss {
            return None;
        }
        let w = self.cfg.correlation_weight;
        Some(EltRecord {
            event_id: event.id,
            mean_loss: mean,
            sigma_i: ((1.0 - w) * var_sum).sqrt(),
            sigma_c: w * sd_sum,
            exposure: exposure.max(mean),
        })
    }

    /// Generate the full ELT, parallelised over events.
    pub fn generate_elt(&self, pool: &ThreadPool) -> RiskResult<Elt> {
        let n = self.catalog.len();
        let grain = suggest_grain(n, pool.thread_count(), 16);
        let rows: Vec<Option<EltRecord>> =
            par_map_collect(pool, n, grain, |i| self.event_record(i));
        let mut builder = EltBuilder::with_capacity(rows.len());
        for rec in rows.into_iter().flatten() {
            builder.push(rec)?;
        }
        builder.build()
    }
}

/// One contract's book of business: its exposure and the ELT the model
/// produced for it.
#[derive(Debug, Clone)]
pub struct Book {
    /// The contract's exposure portfolio.
    pub exposure: Arc<ExposurePortfolio>,
    /// The contract's event-loss table.
    pub elt: Arc<Elt>,
}

/// Everything stage 1 hands to stage 2: catalogue, per-contract books,
/// and the pre-simulated year-event table.
#[derive(Debug, Clone)]
pub struct Stage1Output {
    /// The stochastic event catalogue.
    pub catalog: Arc<EventCatalog>,
    /// One book per contract.
    pub books: Vec<Book>,
    /// The pre-simulated YET shared by all contracts.
    pub yet: Arc<YearEventTable>,
}

impl Stage1Output {
    /// Run stage 1 end-to-end: one ELT per exposure portfolio plus the
    /// YET pre-simulation.
    pub fn build(
        catalog: EventCatalog,
        exposures: Vec<ExposurePortfolio>,
        elt_cfg: EltGenConfig,
        yet_cfg: YetConfig,
        pool: &ThreadPool,
    ) -> RiskResult<Self> {
        let catalog = Arc::new(catalog);
        let mut books = Vec::with_capacity(exposures.len());
        for exposure in exposures {
            let model = GroundUpModel::new(&catalog, &exposure, elt_cfg);
            let elt = model.generate_elt(pool)?;
            books.push(Book {
                exposure: Arc::new(exposure),
                elt: Arc::new(elt),
            });
        }
        let yet = simulate_yet(&catalog, &yet_cfg, pool)?;
        Ok(Self {
            catalog,
            books,
            yet: Arc::new(yet),
        })
    }

    /// Approximate heap footprint of one retained model run — what a
    /// byte-budgeted stage-1 cache charges per entry: the catalogue's
    /// event records, each book's exposure locations and ELT columns,
    /// and the pre-simulated YET.
    pub fn memory_bytes(&self) -> usize {
        let catalog = self.catalog.len() * std::mem::size_of::<crate::catalog::CatalogEvent>();
        let books: usize = self
            .books
            .iter()
            .map(|b| {
                b.elt.memory_bytes()
                    + b.exposure.len() * std::mem::size_of::<crate::exposure::ExposureLocation>()
            })
            .sum();
        catalog + books + self.yet.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::exposure::ExposureConfig;

    fn small_inputs() -> (EventCatalog, ExposurePortfolio) {
        let cat = EventCatalog::generate(&CatalogConfig {
            events: 300,
            total_annual_rate: 20.0,
            seed: 11,
            ..CatalogConfig::default()
        })
        .unwrap();
        let exp = ExposurePortfolio::generate(&ExposureConfig {
            locations: 200,
            seed: 12,
            ..ExposureConfig::default()
        })
        .unwrap();
        (cat, exp)
    }

    #[test]
    fn elt_rows_satisfy_invariants() {
        let (cat, exp) = small_inputs();
        let model = GroundUpModel::new(&cat, &exp, EltGenConfig::default());
        let pool = ThreadPool::new(2);
        let elt = model.generate_elt(&pool).unwrap();
        assert!(!elt.is_empty(), "expected some loss-causing events");
        for r in elt.iter() {
            assert!(r.mean_loss > 0.0);
            assert!(r.sigma_i >= 0.0 && r.sigma_c >= 0.0);
            assert!(r.exposure >= r.mean_loss);
            // Total portfolio value bounds any event's exposure.
            assert!(r.exposure <= exp.total_tiv());
        }
    }

    #[test]
    fn parallel_and_serial_elt_agree() {
        let (cat, exp) = small_inputs();
        let model = GroundUpModel::new(&cat, &exp, EltGenConfig::default());
        let p1 = ThreadPool::new(1);
        let p4 = ThreadPool::new(4);
        let a = model.generate_elt(&p1).unwrap();
        let b = model.generate_elt(&p4).unwrap();
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(b.iter()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn event_record_matches_location_stream() {
        let (cat, exp) = small_inputs();
        let model = GroundUpModel::new(&cat, &exp, EltGenConfig::default());
        // Find an event with a record and cross-check its mean against
        // the per-location stream.
        let mut checked = 0;
        for i in 0..cat.len() {
            if let Some(rec) = model.event_record(i) {
                let mut sum = 0.0;
                model.for_each_location_loss(i, |_, l| sum += l);
                assert!(
                    (sum - rec.mean_loss).abs() < 1e-6 * rec.mean_loss.max(1.0),
                    "event {i}: stream {sum} vs record {}",
                    rec.mean_loss
                );
                checked += 1;
                if checked > 10 {
                    break;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn higher_correlation_weight_shifts_sigma() {
        let (cat, exp) = small_inputs();
        let low = GroundUpModel::new(
            &cat,
            &exp,
            EltGenConfig {
                correlation_weight: 0.0,
                ..EltGenConfig::default()
            },
        );
        let high = GroundUpModel::new(
            &cat,
            &exp,
            EltGenConfig {
                correlation_weight: 0.9,
                ..EltGenConfig::default()
            },
        );
        let mut found = false;
        for i in 0..cat.len() {
            if let (Some(a), Some(b)) = (low.event_record(i), high.event_record(i)) {
                assert!(a.sigma_c <= b.sigma_c);
                assert!(a.sigma_i >= b.sigma_i);
                assert_eq!(a.mean_loss, b.mean_loss);
                found = true;
                break;
            }
        }
        assert!(found);
    }

    #[test]
    fn stage1_build_produces_books_and_yet() {
        let (cat, exp) = small_inputs();
        let pool = ThreadPool::new(2);
        let out = Stage1Output::build(
            cat,
            vec![exp],
            EltGenConfig::default(),
            YetConfig {
                trials: 50,
                seed: 5,
            },
            &pool,
        )
        .unwrap();
        assert_eq!(out.books.len(), 1);
        assert!(!out.books[0].elt.is_empty());
        assert_eq!(out.yet.trials(), 50);
    }
}
