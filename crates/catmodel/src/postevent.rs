//! Rapid post-event loss estimation — the real-time companion workflow
//! of the pipeline (the paper's reference \[2\]: *Rapid Post-Event
//! Catastrophe Modelling and Visualisation*).
//!
//! When an actual catastrophe strikes, the reinsurer needs a loss
//! estimate in minutes, not at the weekly batch cadence: run the
//! observed event's footprint — not the whole stochastic catalogue —
//! against the live exposure database.

use crate::eltgen::EltGenConfig;
use crate::exposure::ExposurePortfolio;
use crate::financial::location_loss;
use crate::geo::GeoPoint;
use crate::hazard::intensity_at_distance;
use crate::peril::Peril;
use riskpipe_types::{LocationId, RiskError, RiskResult};

/// An observed (actual) catastrophe event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedEvent {
    /// The peril.
    pub peril: Peril,
    /// Observed magnitude on the peril's scale.
    pub magnitude: f64,
    /// Observed centre (epicentre / landfall).
    pub center: GeoPoint,
}

/// The rapid estimate for one book of business.
#[derive(Debug, Clone)]
pub struct PostEventEstimate {
    /// Expected insured loss to the book.
    pub mean_loss: f64,
    /// Standard deviation of the loss (independent + correlated parts
    /// combined).
    pub sigma: f64,
    /// Locations with any damaging intensity.
    pub affected_locations: usize,
    /// Largest per-location mean losses, descending — the claims-team
    /// deployment list.
    pub top_locations: Vec<(LocationId, f64)>,
}

/// Estimate the loss of an observed event against an exposure book.
///
/// `top_n` bounds the location breakdown (0 = no breakdown).
pub fn rapid_estimate(
    event: &ObservedEvent,
    exposure: &ExposurePortfolio,
    cfg: &EltGenConfig,
    top_n: usize,
) -> RiskResult<PostEventEstimate> {
    if !event.magnitude.is_finite() || event.magnitude <= 0.0 {
        return Err(RiskError::invalid("magnitude must be positive"));
    }
    let mut mean = 0.0f64;
    let mut var_sum = 0.0f64;
    let mut sd_sum = 0.0f64;
    let mut affected = 0usize;
    let mut per_location: Vec<(LocationId, f64)> = Vec::new();
    for loc in exposure.locations() {
        let d = event.center.distance_km(&loc.position);
        let intensity = intensity_at_distance(event.peril, event.magnitude, d);
        if intensity <= 0.0 {
            continue;
        }
        let mdr = loc.construction.mean_damage_ratio(intensity);
        if mdr <= 0.0 {
            continue;
        }
        let loss = location_loss(loc, mdr);
        if loss <= 0.0 {
            continue;
        }
        affected += 1;
        mean += loss;
        let sd_loc = loc.construction.damage_ratio_sd(mdr) * loc.tiv;
        var_sum += sd_loc * sd_loc;
        sd_sum += sd_loc;
        if top_n > 0 {
            per_location.push((loc.id, loss));
        }
    }
    let w = cfg.correlation_weight;
    let sigma_i2 = (1.0 - w) * var_sum;
    let sigma_c = w * sd_sum;
    per_location.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.raw().cmp(&b.0.raw())));
    per_location.truncate(top_n);
    Ok(PostEventEstimate {
        mean_loss: mean,
        sigma: (sigma_i2 + sigma_c * sigma_c).sqrt(),
        affected_locations: affected,
        top_locations: per_location,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exposure::ExposureConfig;

    fn exposure() -> ExposurePortfolio {
        ExposurePortfolio::generate(&ExposureConfig {
            locations: 400,
            seed: 33,
            ..ExposureConfig::default()
        })
        .unwrap()
    }

    fn event_at(x: f64, y: f64, magnitude: f64) -> ObservedEvent {
        ObservedEvent {
            peril: Peril::Earthquake,
            magnitude,
            center: GeoPoint::new(x, y),
        }
    }

    #[test]
    fn larger_magnitude_means_larger_loss() {
        let exp = exposure();
        let cfg = EltGenConfig::default();
        // Centre on the first location so something is always in range.
        let c = exp.locations()[0].position;
        let small = rapid_estimate(&event_at(c.x, c.y, 6.0), &exp, &cfg, 0).unwrap();
        let large = rapid_estimate(&event_at(c.x, c.y, 8.5), &exp, &cfg, 0).unwrap();
        assert!(large.mean_loss > small.mean_loss);
        assert!(large.affected_locations >= small.affected_locations);
    }

    #[test]
    fn remote_event_causes_nothing() {
        let exp = exposure();
        // Far outside the region (and any peril radius).
        let est = rapid_estimate(
            &event_at(-5_000.0, -5_000.0, 9.0),
            &exp,
            &EltGenConfig::default(),
            5,
        )
        .unwrap();
        assert_eq!(est.mean_loss, 0.0);
        assert_eq!(est.affected_locations, 0);
        assert!(est.top_locations.is_empty());
    }

    #[test]
    fn top_locations_sorted_and_bounded() {
        let exp = exposure();
        let c = exp.locations()[0].position;
        let est =
            rapid_estimate(&event_at(c.x, c.y, 8.0), &exp, &EltGenConfig::default(), 10).unwrap();
        assert!(est.top_locations.len() <= 10);
        for w in est.top_locations.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The breakdown never exceeds the total.
        let top_sum: f64 = est.top_locations.iter().map(|(_, l)| l).sum();
        assert!(top_sum <= est.mean_loss + 1e-9);
    }

    #[test]
    fn sigma_is_positive_when_loss_exists() {
        let exp = exposure();
        let c = exp.locations()[0].position;
        let est =
            rapid_estimate(&event_at(c.x, c.y, 7.5), &exp, &EltGenConfig::default(), 0).unwrap();
        assert!(est.mean_loss > 0.0);
        assert!(est.sigma > 0.0);
    }

    #[test]
    fn invalid_magnitude_rejected() {
        let exp = exposure();
        assert!(
            rapid_estimate(&event_at(0.0, 0.0, -1.0), &exp, &EltGenConfig::default(), 0).is_err()
        );
    }
}
