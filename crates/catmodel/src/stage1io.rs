//! Frame codec for a complete [`Stage1Output`] — the on-disk format of
//! the stage-1 cache tier.
//!
//! The encoding reuses the table frames that already exist
//! ([`riskpipe_tables::codec`]): a leading [`TableKind::Stage1`] frame
//! carries the cache key plus the generated catalogue and per-book
//! exposure records (the parts no table codec covers), followed by one
//! ELT frame per book and the YET frame. Every frame is CRC-checked
//! independently, and the decoder requires exact consumption, so a
//! truncated or corrupted cache file surfaces as
//! [`RiskError::corrupt`](riskpipe_types::RiskError) — a disk tier can
//! then treat it as a miss and rebuild.
//!
//! Stage-1 header payload, little-endian:
//!
//! ```text
//! key         u64   ScenarioConfig::stage1_key this output was built for
//! n_events    u64   catalogue size
//! total_rate  f64   catalogue total annual rate (verbatim, bit-exact)
//! events      n_events × { id u32, peril u8, rate f64, magnitude f64,
//!                          cx f64, cy f64 }
//! n_books     u64   number of per-contract books
//! books       n_books × { total_tiv f64, n_locs u64,
//!                         locs n_locs × { id u32, px f64, py f64,
//!                                         tiv f64, construction u8,
//!                                         deductible f64, limit f64 } }
//! ```

use crate::catalog::{CatalogEvent, EventCatalog};
use crate::eltgen::{Book, Stage1Output};
use crate::exposure::{ExposureLocation, ExposurePortfolio};
use crate::geo::GeoPoint;
use crate::peril::Peril;
use crate::vulnerability::ConstructionClass;
use riskpipe_tables::codec::{self, TableKind};
use riskpipe_types::{EventId, LocationId, RiskError, RiskResult};
use std::sync::Arc;

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, x: f64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// A bounds-checked little-endian reader over a frame payload.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> RiskResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            RiskError::corrupt(format!("stage1 payload offset overflow reading {what}"))
        })?;
        if end > self.data.len() {
            return Err(RiskError::corrupt(format!(
                "stage1 payload truncated reading {what}: need {n} bytes, have {}",
                self.data.len() - self.pos
            )));
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn get_u8(&mut self, what: &str) -> RiskResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn get_u32(&mut self, what: &str) -> RiskResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn get_u64(&mut self, what: &str) -> RiskResult<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn get_f64(&mut self, what: &str) -> RiskResult<f64> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn get_count(&mut self, what: &str) -> RiskResult<usize> {
        let n = self.get_u64(what)?;
        if n > (1 << 32) {
            return Err(RiskError::corrupt(format!(
                "implausible stage1 count {n} for {what}"
            )));
        }
        usize::try_from(n)
            .map_err(|_| RiskError::corrupt(format!("stage1 count {n} for {what} exceeds usize")))
    }

    fn finished(&self) -> bool {
        self.pos == self.data.len()
    }
}

/// Encode a complete stage-1 output (keyed by its
/// `ScenarioConfig::stage1_key`) as a self-contained multi-frame byte
/// stream.
pub fn encode_stage1(key: u64, out: &Stage1Output) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + out.catalog.len() * 37);
    put_u64(&mut p, key);
    put_u64(&mut p, out.catalog.len() as u64);
    put_f64(&mut p, out.catalog.total_rate());
    for e in out.catalog.events() {
        put_u32(&mut p, e.id.raw());
        p.push(e.peril.code());
        put_f64(&mut p, e.rate);
        put_f64(&mut p, e.magnitude);
        put_f64(&mut p, e.center.x);
        put_f64(&mut p, e.center.y);
    }
    put_u64(&mut p, out.books.len() as u64);
    for book in &out.books {
        put_f64(&mut p, book.exposure.total_tiv());
        put_u64(&mut p, book.exposure.len() as u64);
        for l in book.exposure.locations() {
            put_u32(&mut p, l.id.raw());
            put_f64(&mut p, l.position.x);
            put_f64(&mut p, l.position.y);
            put_f64(&mut p, l.tiv);
            p.push(l.construction.code());
            put_f64(&mut p, l.deductible);
            put_f64(&mut p, l.limit);
        }
    }
    let mut bytes = codec::frame(TableKind::Stage1, &p).to_vec();
    for book in &out.books {
        bytes.extend_from_slice(&codec::encode_elt(&book.elt));
    }
    bytes.extend_from_slice(&codec::encode_yet(&out.yet));
    bytes
}

fn decode_header(payload: &[u8]) -> RiskResult<(u64, EventCatalog, Vec<ExposurePortfolio>)> {
    let mut c = Cursor::new(payload);
    let key = c.get_u64("key")?;
    let n_events = c.get_count("n_events")?;
    let total_rate = c.get_f64("total_rate")?;
    let mut events = Vec::with_capacity(n_events);
    for i in 0..n_events {
        let id = EventId::new(c.get_u32("event.id")?);
        let peril_code = c.get_u8("event.peril")?;
        let peril = Peril::from_code(peril_code).ok_or_else(|| {
            RiskError::corrupt(format!("unknown peril code {peril_code} at event {i}"))
        })?;
        let rate = c.get_f64("event.rate")?;
        let magnitude = c.get_f64("event.magnitude")?;
        let center = GeoPoint {
            x: c.get_f64("event.cx")?,
            y: c.get_f64("event.cy")?,
        };
        events.push(CatalogEvent {
            id,
            peril,
            rate,
            magnitude,
            center,
        });
    }
    let catalog = EventCatalog::from_parts(events, total_rate)
        .map_err(|e| RiskError::corrupt(format!("stage1 catalogue rejected: {e}")))?;
    let n_books = c.get_count("n_books")?;
    let mut exposures = Vec::with_capacity(n_books);
    for _ in 0..n_books {
        let total_tiv = c.get_f64("book.total_tiv")?;
        let n_locs = c.get_count("book.n_locs")?;
        let mut locations = Vec::with_capacity(n_locs);
        for i in 0..n_locs {
            let id = LocationId::new(c.get_u32("loc.id")?);
            let position = GeoPoint {
                x: c.get_f64("loc.px")?,
                y: c.get_f64("loc.py")?,
            };
            let tiv = c.get_f64("loc.tiv")?;
            let cons_code = c.get_u8("loc.construction")?;
            let construction = ConstructionClass::from_code(cons_code).ok_or_else(|| {
                RiskError::corrupt(format!(
                    "unknown construction code {cons_code} at location {i}"
                ))
            })?;
            let deductible = c.get_f64("loc.deductible")?;
            let limit = c.get_f64("loc.limit")?;
            locations.push(ExposureLocation {
                id,
                position,
                tiv,
                construction,
                deductible,
                limit,
            });
        }
        let exposure = ExposurePortfolio::from_parts(locations, total_tiv)
            .map_err(|e| RiskError::corrupt(format!("stage1 exposure rejected: {e}")))?;
        exposures.push(exposure);
    }
    if !c.finished() {
        return Err(RiskError::corrupt(format!(
            "stage1 header payload has {} trailing bytes",
            payload.len() - c.pos
        )));
    }
    Ok((key, catalog, exposures))
}

/// Decode a byte stream produced by [`encode_stage1`], returning the
/// cache key and the reconstructed output. Rejects wrong kinds,
/// truncation anywhere, trailing bytes, CRC mismatches and structurally
/// invalid tables — always with `RiskError::corrupt`-family errors,
/// never a panic.
pub fn decode_stage1(data: &[u8]) -> RiskResult<(u64, Stage1Output)> {
    let (kind, payload, mut off) = codec::unframe(data)?;
    if kind != TableKind::Stage1 {
        return Err(RiskError::corrupt(format!(
            "expected stage1 frame, got {kind:?}"
        )));
    }
    let (key, catalog, exposures) = decode_header(payload)?;
    let mut books = Vec::with_capacity(exposures.len());
    for exposure in exposures {
        let (_, _, used) = codec::unframe(&data[off..])?;
        let elt = codec::decode_elt(&data[off..off + used])?;
        off += used;
        books.push(Book {
            exposure: Arc::new(exposure),
            elt: Arc::new(elt),
        });
    }
    let (_, _, used) = codec::unframe(&data[off..])?;
    let yet = codec::decode_yet(&data[off..off + used])?;
    off += used;
    if off != data.len() {
        return Err(RiskError::corrupt(format!(
            "stage1 stream has {} trailing bytes",
            data.len() - off
        )));
    }
    Ok((
        key,
        Stage1Output {
            catalog: Arc::new(catalog),
            books,
            yet: Arc::new(yet),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::eltgen::EltGenConfig;
    use crate::exposure::ExposureConfig;
    use crate::yetgen::YetConfig;
    use riskpipe_exec::ThreadPool;
    use riskpipe_types::TrialId;

    fn sample_output() -> Stage1Output {
        let pool = ThreadPool::new(2);
        let catalog = EventCatalog::generate(&CatalogConfig {
            events: 200,
            seed: 0x51A6E1,
            ..CatalogConfig::default()
        })
        .unwrap();
        let expo_a = ExposurePortfolio::generate(&ExposureConfig {
            locations: 60,
            seed: 0xA,
            ..ExposureConfig::default()
        })
        .unwrap();
        let expo_b = ExposurePortfolio::generate(&ExposureConfig {
            locations: 40,
            seed: 0xB,
            ..ExposureConfig::default()
        })
        .unwrap();
        Stage1Output::build(
            catalog,
            vec![expo_a, expo_b],
            EltGenConfig::default(),
            YetConfig {
                trials: 50,
                ..YetConfig::default()
            },
            &pool,
        )
        .unwrap()
    }

    fn assert_outputs_identical(a: &Stage1Output, b: &Stage1Output) {
        assert_eq!(a.catalog.len(), b.catalog.len());
        assert_eq!(
            a.catalog.total_rate().to_bits(),
            b.catalog.total_rate().to_bits()
        );
        for (x, y) in a.catalog.events().iter().zip(b.catalog.events()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.peril, y.peril);
            assert_eq!(x.rate.to_bits(), y.rate.to_bits());
            assert_eq!(x.magnitude.to_bits(), y.magnitude.to_bits());
            assert_eq!(x.center.x.to_bits(), y.center.x.to_bits());
            assert_eq!(x.center.y.to_bits(), y.center.y.to_bits());
        }
        assert_eq!(a.books.len(), b.books.len());
        for (ba, bb) in a.books.iter().zip(&b.books) {
            assert_eq!(
                ba.exposure.total_tiv().to_bits(),
                bb.exposure.total_tiv().to_bits()
            );
            assert_eq!(ba.exposure.locations().len(), bb.exposure.locations().len());
            for (x, y) in ba.exposure.locations().iter().zip(bb.exposure.locations()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.tiv.to_bits(), y.tiv.to_bits());
                assert_eq!(x.construction, y.construction);
                assert_eq!(x.deductible.to_bits(), y.deductible.to_bits());
                assert_eq!(x.limit.to_bits(), y.limit.to_bits());
            }
            assert_eq!(ba.elt.len(), bb.elt.len());
            for (x, y) in ba.elt.iter().zip(bb.elt.iter()) {
                assert_eq!(x, y);
            }
        }
        assert_eq!(a.yet.trials(), b.yet.trials());
        for t in 0..a.yet.trials() {
            let t = TrialId::new(t as u32);
            assert_eq!(a.yet.trial_slices(t), b.yet.trial_slices(t));
        }
        assert_eq!(a.memory_bytes(), b.memory_bytes());
    }

    #[test]
    fn stage1_round_trip_is_bit_exact() {
        let out = sample_output();
        let bytes = encode_stage1(0xDEADBEEF, &out);
        let (key, back) = decode_stage1(&bytes).unwrap();
        assert_eq!(key, 0xDEADBEEF);
        assert_outputs_identical(&out, &back);
    }

    #[test]
    fn truncation_anywhere_is_corrupt() {
        let out = sample_output();
        let bytes = encode_stage1(1, &out);
        // Every frame boundary plus a spread of interior offsets.
        let mut cuts = vec![0, 1, codec::HEADER_BYTES, bytes.len() - 1];
        let mut off = 0usize;
        while off < bytes.len() {
            let (_, _, used) = codec::unframe(&bytes[off..]).unwrap();
            off += used;
            if off < bytes.len() {
                cuts.push(off);
                cuts.push(off + codec::HEADER_BYTES / 2);
            }
        }
        for cut in cuts {
            assert!(
                decode_stage1(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let out = sample_output();
        let mut bytes = encode_stage1(1, &out);
        bytes.push(0);
        assert!(decode_stage1(&bytes).is_err());
    }

    #[test]
    fn wrong_leading_kind_is_corrupt() {
        let out = sample_output();
        let bytes = codec::encode_yet(&out.yet);
        assert!(decode_stage1(&bytes).is_err());
    }

    #[test]
    fn bad_peril_code_is_corrupt() {
        let out = sample_output();
        let bytes = encode_stage1(1, &out);
        // The first event's peril byte sits after the frame header and
        // key/n_events/total_rate (24 bytes) and the event id (4).
        let peril_pos = codec::HEADER_BYTES + 24 + 4;
        let mut bad = bytes.clone();
        bad[peril_pos] = 9;
        // Re-CRC would be cheating: the flip is caught by the CRC
        // first, which is also a corrupt error.
        assert!(decode_stage1(&bad).is_err());
    }
}
