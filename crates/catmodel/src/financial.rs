//! The financial module: ground-up damage → insured loss at the
//! location level.
//!
//! Site terms are the standard pair: a deductible the insured retains
//! and a limit capping the recovery. (Portfolio-level occurrence and
//! aggregate terms belong to stage 2 and live in `riskpipe-aggregate`.)

use crate::exposure::ExposureLocation;

/// Apply site deductible and limit to a ground-up loss.
#[inline]
pub fn apply_site_terms(ground_up: f64, deductible: f64, limit: f64) -> f64 {
    debug_assert!(deductible >= 0.0 && limit >= 0.0);
    (ground_up - deductible).max(0.0).min(limit)
}

/// Insured loss for a location given a damage ratio.
#[inline]
pub fn location_loss(loc: &ExposureLocation, damage_ratio: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&damage_ratio));
    apply_site_terms(loc.tiv * damage_ratio, loc.deductible, loc.limit)
}

/// The maximum possible insured loss for a location (its contribution
/// to the ELT exposure column).
#[inline]
pub fn location_max_loss(loc: &ExposureLocation) -> f64 {
    apply_site_terms(loc.tiv, loc.deductible, loc.limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::vulnerability::ConstructionClass;
    use riskpipe_types::LocationId;

    fn loc(tiv: f64, ded: f64, lim: f64) -> ExposureLocation {
        ExposureLocation {
            id: LocationId::new(0),
            position: GeoPoint::new(0.0, 0.0),
            tiv,
            construction: ConstructionClass::Wood,
            deductible: ded,
            limit: lim,
        }
    }

    #[test]
    fn deductible_erodes_first() {
        assert_eq!(apply_site_terms(100.0, 20.0, 1000.0), 80.0);
        assert_eq!(apply_site_terms(15.0, 20.0, 1000.0), 0.0);
    }

    #[test]
    fn limit_caps_recovery() {
        assert_eq!(apply_site_terms(500.0, 0.0, 100.0), 100.0);
        assert_eq!(apply_site_terms(500.0, 50.0, 100.0), 100.0);
    }

    #[test]
    fn zero_ground_up_pays_nothing() {
        assert_eq!(apply_site_terms(0.0, 10.0, 100.0), 0.0);
    }

    #[test]
    fn location_loss_scales_with_damage() {
        let l = loc(1_000.0, 10.0, 800.0);
        assert_eq!(location_loss(&l, 0.0), 0.0);
        assert_eq!(location_loss(&l, 0.5), 490.0); // 500 - 10
        assert_eq!(location_loss(&l, 1.0), 800.0); // capped
    }

    #[test]
    fn loss_is_monotone_in_damage_ratio() {
        let l = loc(2_000.0, 25.0, 1_500.0);
        let mut prev = -1.0;
        for i in 0..=20 {
            let v = location_loss(&l, i as f64 / 20.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn max_loss_bounds_any_damage() {
        let l = loc(3_000.0, 100.0, 2_000.0);
        let max = location_max_loss(&l);
        for i in 0..=10 {
            assert!(location_loss(&l, i as f64 / 10.0) <= max);
        }
        assert_eq!(max, 2_000.0);
    }
}
