//! The stochastic event catalogue: the first primary input of stage 1.
//!
//! Each catalogue entry is a hypothetical catastrophe with an annual
//! occurrence rate and physical parameters. Frequency-severity coupling
//! follows the standard form: big events are rare. For earthquakes this
//! is Gutenberg–Richter (`log10 N(≥M) = a − bM`); for the other perils
//! an equivalent exponential tilt is applied to the severity scale.

use crate::geo::{GeoPoint, Region};
use crate::peril::Peril;
use riskpipe_types::dist::{Distribution, Uniform};
use riskpipe_types::rng::{Rng64, SplitMix64};
use riskpipe_types::{EventId, RiskError, RiskResult};

/// One stochastic catalogue event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogEvent {
    /// Stable event identifier.
    pub id: EventId,
    /// The peril this event belongs to.
    pub peril: Peril,
    /// Annual occurrence rate (events per year).
    pub rate: f64,
    /// Severity on the peril's magnitude scale (EQ moment magnitude;
    /// hurricane intensity index; flood severity index). Range ~[5, 9].
    pub magnitude: f64,
    /// Event centre (epicentre / landfall / flood centroid).
    pub center: GeoPoint,
}

/// Configuration for catalogue generation.
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    /// Number of events to generate.
    pub events: usize,
    /// Total annual rate across the catalogue (expected event
    /// occurrences per year).
    pub total_annual_rate: f64,
    /// Mix of perils as (earthquake, hurricane, flood) weights.
    pub peril_mix: [f64; 3],
    /// Gutenberg–Richter style b-value controlling how fast rates fall
    /// with magnitude (≈1 for real seismicity).
    pub b_value: f64,
    /// Magnitude range `[min, max]`.
    pub magnitude_range: (f64, f64),
    /// Model region.
    pub region: Region,
    /// Generator seed.
    pub seed: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            events: 10_000,
            total_annual_rate: 100.0,
            peril_mix: [0.4, 0.4, 0.2],
            b_value: 1.0,
            magnitude_range: (5.0, 9.0),
            region: Region::default_region(),
            seed: 0x5EED_CA7A_1060,
        }
    }
}

impl CatalogConfig {
    /// A stable 64-bit key over every field that influences generation.
    /// Two configs with equal fingerprints produce bit-identical
    /// catalogues, so the fingerprint is safe to use as a
    /// cross-scenario cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = riskpipe_types::Fingerprint::new("catmodel::CatalogConfig");
        fp.push_usize(self.events)
            .push_f64(self.total_annual_rate)
            .push_f64(self.peril_mix[0])
            .push_f64(self.peril_mix[1])
            .push_f64(self.peril_mix[2])
            .push_f64(self.b_value)
            .push_f64(self.magnitude_range.0)
            .push_f64(self.magnitude_range.1)
            .push_f64(self.region.width_km)
            .push_f64(self.region.height_km)
            .push_u64(self.seed);
        fp.finish()
    }
}

/// The generated catalogue.
#[derive(Debug, Clone)]
pub struct EventCatalog {
    events: Vec<CatalogEvent>,
    total_rate: f64,
}

impl EventCatalog {
    /// Generate a catalogue from a configuration.
    pub fn generate(cfg: &CatalogConfig) -> RiskResult<Self> {
        if cfg.events == 0 {
            return Err(RiskError::invalid("catalogue needs at least one event"));
        }
        if cfg.total_annual_rate <= 0.0 {
            return Err(RiskError::invalid("total annual rate must be positive"));
        }
        let (m_lo, m_hi) = cfg.magnitude_range;
        // Negated on purpose: `!(lo < hi)` also rejects NaN bounds.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(m_lo < m_hi) {
            return Err(RiskError::invalid("magnitude range must be increasing"));
        }
        let wsum: f64 = cfg.peril_mix.iter().sum();
        if wsum <= 0.0 || cfg.peril_mix.iter().any(|&w| w < 0.0) {
            return Err(RiskError::invalid("peril mix weights must be non-negative"));
        }
        let mut rng = SplitMix64::new(cfg.seed);
        let ux = Uniform::new(0.0, cfg.region.width_km);
        let uy = Uniform::new(0.0, cfg.region.height_km);
        let beta = cfg.b_value * std::f64::consts::LN_10;

        let mut events = Vec::with_capacity(cfg.events);
        let mut raw_rates = Vec::with_capacity(cfg.events);
        for i in 0..cfg.events {
            // Peril by mix.
            let pick = rng.next_f64() * wsum;
            let peril = if pick < cfg.peril_mix[0] {
                Peril::Earthquake
            } else if pick < cfg.peril_mix[0] + cfg.peril_mix[1] {
                Peril::Hurricane
            } else {
                Peril::Flood
            };
            // Truncated-exponential magnitude (Gutenberg–Richter form):
            // F(m) = (1 - e^{-β(m-m0)}) / (1 - e^{-β(m1-m0)}).
            let u = rng.next_f64_open();
            let norm = 1.0 - (-beta * (m_hi - m_lo)).exp();
            let magnitude = m_lo - (1.0 - u * norm).ln() / beta;
            // Rate tilt: rarer with magnitude (the same β), to be
            // normalised to the configured total below.
            let raw_rate = (-beta * (magnitude - m_lo)).exp();
            let center = GeoPoint::new(ux.sample(&mut rng), uy.sample(&mut rng));
            events.push(CatalogEvent {
                id: EventId::new(i as u32),
                peril,
                rate: 0.0,
                magnitude,
                center,
            });
            raw_rates.push(raw_rate);
        }
        let raw_total: f64 = raw_rates.iter().sum();
        let scale = cfg.total_annual_rate / raw_total;
        for (e, raw) in events.iter_mut().zip(raw_rates) {
            e.rate = raw * scale;
        }
        Ok(Self {
            events,
            total_rate: cfg.total_annual_rate,
        })
    }

    /// Reassemble a catalogue from previously generated events — the
    /// decode path of the stage-1 disk cache
    /// ([`crate::stage1io`]). Event ids must be dense `0..n` in order
    /// (the invariant [`EventCatalog::event`] indexes by), and
    /// `total_rate` is carried verbatim so a round trip is bit-exact
    /// rather than re-derived from a float sum.
    pub fn from_parts(events: Vec<CatalogEvent>, total_rate: f64) -> RiskResult<Self> {
        if events.is_empty() {
            return Err(RiskError::invalid("catalogue needs at least one event"));
        }
        if total_rate <= 0.0 || !total_rate.is_finite() {
            return Err(RiskError::invalid("total annual rate must be positive"));
        }
        for (i, e) in events.iter().enumerate() {
            if e.id.index() != i {
                return Err(RiskError::invalid(format!(
                    "catalogue event ids must be dense 0..n: found {} at {i}",
                    e.id
                )));
            }
        }
        Ok(Self { events, total_rate })
    }

    /// Number of catalogue events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total annual rate (expected occurrences per year).
    pub fn total_rate(&self) -> f64 {
        self.total_rate
    }

    /// The events.
    pub fn events(&self) -> &[CatalogEvent] {
        &self.events
    }

    /// A specific event by id (ids are dense 0..n).
    pub fn event(&self, id: EventId) -> &CatalogEvent {
        &self.events[id.index()]
    }

    /// Per-event annual rates, in id order (alias-table input).
    pub fn rates(&self) -> Vec<f64> {
        self.events.iter().map(|e| e.rate).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_normalise_to_total() {
        let cfg = CatalogConfig {
            events: 5_000,
            total_annual_rate: 42.0,
            ..CatalogConfig::default()
        };
        let cat = EventCatalog::generate(&cfg).unwrap();
        let sum: f64 = cat.rates().iter().sum();
        assert!((sum - 42.0).abs() < 1e-9, "sum={sum}");
        assert_eq!(cat.len(), 5_000);
    }

    #[test]
    fn magnitudes_within_range_and_skewed_low() {
        let cfg = CatalogConfig::default();
        let cat = EventCatalog::generate(&cfg).unwrap();
        let (lo, hi) = cfg.magnitude_range;
        let mut below_mid = 0usize;
        for e in cat.events() {
            assert!(e.magnitude >= lo && e.magnitude <= hi);
            if e.magnitude < (lo + hi) / 2.0 {
                below_mid += 1;
            }
        }
        // Gutenberg–Richter: most events are small.
        assert!(below_mid as f64 > cat.len() as f64 * 0.8);
    }

    #[test]
    fn larger_magnitude_events_are_rarer() {
        let cat = EventCatalog::generate(&CatalogConfig::default()).unwrap();
        // Compare mean rate of bottom vs top magnitude quartiles.
        let mut sorted: Vec<&CatalogEvent> = cat.events().iter().collect();
        sorted.sort_by(|a, b| a.magnitude.total_cmp(&b.magnitude));
        let q = sorted.len() / 4;
        let small_mean: f64 = sorted[..q].iter().map(|e| e.rate).sum::<f64>() / q as f64;
        let large_mean: f64 = sorted[sorted.len() - q..]
            .iter()
            .map(|e| e.rate)
            .sum::<f64>()
            / q as f64;
        // Quartiles of a GR catalogue: the bottom quartile sits in a
        // narrow magnitude band near m_min, the top spans the long tail,
        // so a ~5x mean-rate gap is the expected qualitative signature.
        assert!(
            small_mean > large_mean * 3.0,
            "small {small_mean} vs large {large_mean}"
        );
    }

    #[test]
    fn centers_inside_region() {
        let cfg = CatalogConfig::default();
        let cat = EventCatalog::generate(&cfg).unwrap();
        for e in cat.events() {
            assert!(cfg.region.contains(&e.center));
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let cfg = CatalogConfig::default();
        let a = EventCatalog::generate(&cfg).unwrap();
        let b = EventCatalog::generate(&cfg).unwrap();
        assert_eq!(a.events()[17], b.events()[17]);
        let c = EventCatalog::generate(&CatalogConfig { seed: 99, ..cfg }).unwrap();
        assert_ne!(a.events()[17], c.events()[17]);
    }

    #[test]
    fn peril_mix_respected() {
        let cfg = CatalogConfig {
            peril_mix: [1.0, 0.0, 0.0],
            ..CatalogConfig::default()
        };
        let cat = EventCatalog::generate(&cfg).unwrap();
        assert!(cat.events().iter().all(|e| e.peril == Peril::Earthquake));
    }

    #[test]
    fn invalid_configs_rejected() {
        let base = CatalogConfig::default();
        assert!(EventCatalog::generate(&CatalogConfig { events: 0, ..base }).is_err());
        assert!(EventCatalog::generate(&CatalogConfig {
            total_annual_rate: 0.0,
            ..base
        })
        .is_err());
        assert!(EventCatalog::generate(&CatalogConfig {
            magnitude_range: (9.0, 5.0),
            ..base
        })
        .is_err());
        assert!(EventCatalog::generate(&CatalogConfig {
            peril_mix: [-1.0, 1.0, 1.0],
            ..base
        })
        .is_err());
    }
}
