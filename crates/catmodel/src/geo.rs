//! Planar geography for the synthetic model.
//!
//! Real catastrophe models work on geodetic coordinates; for a synthetic
//! catalogue a planar region in kilometres preserves everything that
//! matters (distance-driven attenuation, spatial clustering of exposure)
//! without great-circle bookkeeping.

/// A point in the model region, kilometres from the region origin.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// East-west coordinate in km.
    pub x: f64,
    /// North-south coordinate in km.
    pub y: f64,
}

impl GeoPoint {
    /// Construct from kilometre coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point, in km.
    #[inline]
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// The rectangular model region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Width in km.
    pub width_km: f64,
    /// Height in km.
    pub height_km: f64,
}

impl Region {
    /// A region of the given size.
    pub fn new(width_km: f64, height_km: f64) -> Self {
        assert!(width_km > 0.0 && height_km > 0.0, "region must be positive");
        Self {
            width_km,
            height_km,
        }
    }

    /// The default model region: 1000 km × 1000 km, a US-state-to-
    /// country scale territory.
    pub fn default_region() -> Self {
        Self::new(1000.0, 1000.0)
    }

    /// Whether a point lies inside the region.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        (0.0..=self.width_km).contains(&p.x) && (0.0..=self.height_km).contains(&p.y)
    }

    /// Clamp a point into the region.
    pub fn clamp(&self, p: GeoPoint) -> GeoPoint {
        GeoPoint {
            x: p.x.clamp(0.0, self.width_km),
            y: p.y.clamp(0.0, self.height_km),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(3.0, 4.0);
        assert!((a.distance_km(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_km(&a), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(10.0, 20.0);
        let b = GeoPoint::new(-5.0, 7.5);
        assert_eq!(a.distance_km(&b), b.distance_km(&a));
    }

    #[test]
    fn region_contains_and_clamps() {
        let r = Region::new(100.0, 50.0);
        assert!(r.contains(&GeoPoint::new(50.0, 25.0)));
        assert!(!r.contains(&GeoPoint::new(150.0, 25.0)));
        let clamped = r.clamp(GeoPoint::new(150.0, -10.0));
        assert_eq!(clamped, GeoPoint::new(100.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_region() {
        Region::new(0.0, 10.0);
    }
}
