//! The exposure database: the second primary input of stage 1.
//!
//! Synthetic but structurally realistic: locations cluster around urban
//! centres (catastrophe loss is driven by concentration), insured values
//! are lognormal, and each location carries a construction class and
//! site-level insurance terms.

use crate::geo::{GeoPoint, Region};
use crate::vulnerability::ConstructionClass;
use riskpipe_types::dist::{Distribution, LogNormal, Normal, Uniform};
use riskpipe_types::rng::{Rng64, SplitMix64};
use riskpipe_types::{LocationId, RiskError, RiskResult};

/// One insured location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureLocation {
    /// Stable location identifier (dense within a portfolio).
    pub id: LocationId,
    /// Site coordinates.
    pub position: GeoPoint,
    /// Total insured value.
    pub tiv: f64,
    /// Construction class, driving vulnerability.
    pub construction: ConstructionClass,
    /// Site deductible (absolute).
    pub deductible: f64,
    /// Site limit (absolute; the most the policy pays per event).
    pub limit: f64,
}

/// Configuration for exposure generation.
#[derive(Debug, Clone, Copy)]
pub struct ExposureConfig {
    /// Number of locations.
    pub locations: usize,
    /// Number of urban clusters the locations concentrate around.
    pub clusters: usize,
    /// Cluster radius (km, 1 standard deviation).
    pub cluster_radius_km: f64,
    /// Mean insured value per location.
    pub mean_tiv: f64,
    /// Coefficient of variation of insured value.
    pub tiv_cv: f64,
    /// Site deductible as a fraction of TIV.
    pub deductible_fraction: f64,
    /// Site limit as a fraction of TIV.
    pub limit_fraction: f64,
    /// Model region.
    pub region: Region,
    /// Generator seed.
    pub seed: u64,
}

impl Default for ExposureConfig {
    fn default() -> Self {
        Self {
            locations: 1_000,
            clusters: 8,
            cluster_radius_km: 40.0,
            mean_tiv: 5_000_000.0,
            tiv_cv: 1.5,
            deductible_fraction: 0.01,
            limit_fraction: 0.8,
            region: Region::default_region(),
            seed: 0xE4_905_0E5,
        }
    }
}

impl ExposureConfig {
    /// A stable 64-bit key over every field that influences generation
    /// (see [`crate::CatalogConfig::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = riskpipe_types::Fingerprint::new("catmodel::ExposureConfig");
        fp.push_usize(self.locations)
            .push_usize(self.clusters)
            .push_f64(self.cluster_radius_km)
            .push_f64(self.mean_tiv)
            .push_f64(self.tiv_cv)
            .push_f64(self.deductible_fraction)
            .push_f64(self.limit_fraction)
            .push_f64(self.region.width_km)
            .push_f64(self.region.height_km)
            .push_u64(self.seed);
        fp.finish()
    }
}

/// A generated portfolio of insured locations.
#[derive(Debug, Clone)]
pub struct ExposurePortfolio {
    locations: Vec<ExposureLocation>,
    total_tiv: f64,
}

impl ExposurePortfolio {
    /// Generate from a configuration.
    pub fn generate(cfg: &ExposureConfig) -> RiskResult<Self> {
        if cfg.locations == 0 {
            return Err(RiskError::invalid("exposure needs at least one location"));
        }
        if cfg.clusters == 0 {
            return Err(RiskError::invalid("need at least one cluster"));
        }
        if cfg.mean_tiv <= 0.0 || cfg.tiv_cv <= 0.0 {
            return Err(RiskError::invalid("TIV parameters must be positive"));
        }
        if !(0.0..1.0).contains(&cfg.deductible_fraction)
            || !(0.0..=1.0).contains(&cfg.limit_fraction)
            || cfg.limit_fraction <= cfg.deductible_fraction
        {
            return Err(RiskError::invalid(
                "need 0 <= deductible_fraction < limit_fraction <= 1",
            ));
        }
        let mut rng = SplitMix64::new(cfg.seed);
        // Urban centres.
        let ux = Uniform::new(0.0, cfg.region.width_km);
        let uy = Uniform::new(0.0, cfg.region.height_km);
        let centres: Vec<GeoPoint> = (0..cfg.clusters)
            .map(|_| GeoPoint::new(ux.sample(&mut rng), uy.sample(&mut rng)))
            .collect();
        let scatter = Normal::new(0.0, cfg.cluster_radius_km);
        let tiv_dist = LogNormal::from_mean_cv(cfg.mean_tiv, cfg.tiv_cv);

        let mut locations = Vec::with_capacity(cfg.locations);
        let mut total_tiv = 0.0;
        for i in 0..cfg.locations {
            let centre = centres[rng.next_below(cfg.clusters as u32) as usize];
            let position = cfg.region.clamp(GeoPoint::new(
                centre.x + scatter.sample(&mut rng),
                centre.y + scatter.sample(&mut rng),
            ));
            let tiv = tiv_dist.sample(&mut rng);
            let construction = ConstructionClass::sample(&mut rng);
            locations.push(ExposureLocation {
                id: LocationId::new(i as u32),
                position,
                tiv,
                construction,
                deductible: tiv * cfg.deductible_fraction,
                limit: tiv * cfg.limit_fraction,
            });
            total_tiv += tiv;
        }
        Ok(Self {
            locations,
            total_tiv,
        })
    }

    /// Reassemble a portfolio from previously generated locations — the
    /// decode path of the stage-1 disk cache ([`crate::stage1io`]).
    /// `total_tiv` is carried verbatim so a round trip is bit-exact
    /// rather than re-derived from a float sum.
    pub fn from_parts(locations: Vec<ExposureLocation>, total_tiv: f64) -> RiskResult<Self> {
        if locations.is_empty() {
            return Err(RiskError::invalid("exposure needs at least one location"));
        }
        if total_tiv <= 0.0 || !total_tiv.is_finite() {
            return Err(RiskError::invalid("total TIV must be positive"));
        }
        Ok(Self {
            locations,
            total_tiv,
        })
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether the portfolio is empty.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// The locations.
    pub fn locations(&self) -> &[ExposureLocation] {
        &self.locations
    }

    /// Sum of insured values.
    pub fn total_tiv(&self) -> f64 {
        self.total_tiv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let p = ExposurePortfolio::generate(&ExposureConfig::default()).unwrap();
        assert_eq!(p.len(), 1_000);
        assert!(p.total_tiv() > 0.0);
    }

    #[test]
    fn locations_inside_region_with_valid_terms() {
        let cfg = ExposureConfig::default();
        let p = ExposurePortfolio::generate(&cfg).unwrap();
        for l in p.locations() {
            assert!(cfg.region.contains(&l.position));
            assert!(l.tiv > 0.0);
            assert!(l.deductible >= 0.0 && l.deductible < l.limit);
            assert!(l.limit <= l.tiv);
        }
    }

    #[test]
    fn exposures_are_clustered() {
        // With few clusters and a modest radius, mean nearest-centroid
        // distance should be far below the uniform-over-region value.
        let cfg = ExposureConfig {
            locations: 500,
            clusters: 3,
            cluster_radius_km: 20.0,
            ..ExposureConfig::default()
        };
        let p = ExposurePortfolio::generate(&cfg).unwrap();
        // Recompute cluster centres as the mean of assigned points is
        // unavailable; instead verify pairwise spread: many points are
        // within 3 sigma of some other point's neighbourhood.
        let close_pairs = p
            .locations()
            .iter()
            .take(100)
            .flat_map(|a| {
                p.locations()
                    .iter()
                    .take(100)
                    .map(move |b| a.position.distance_km(&b.position))
            })
            .filter(|&d| d > 0.0 && d < 4.0 * cfg.cluster_radius_km)
            .count();
        // Uniform points in a 1000 km box would almost never be this
        // close this often.
        assert!(close_pairs > 1_000, "close_pairs={close_pairs}");
    }

    #[test]
    fn tiv_mean_is_roughly_configured() {
        let cfg = ExposureConfig {
            locations: 20_000,
            ..ExposureConfig::default()
        };
        let p = ExposurePortfolio::generate(&cfg).unwrap();
        let mean = p.total_tiv() / p.len() as f64;
        assert!(
            (mean - cfg.mean_tiv).abs() / cfg.mean_tiv < 0.1,
            "mean={mean}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = ExposureConfig::default();
        let a = ExposurePortfolio::generate(&cfg).unwrap();
        let b = ExposurePortfolio::generate(&cfg).unwrap();
        assert_eq!(a.locations()[5], b.locations()[5]);
    }

    #[test]
    fn invalid_configs_rejected() {
        let base = ExposureConfig::default();
        assert!(ExposurePortfolio::generate(&ExposureConfig {
            locations: 0,
            ..base
        })
        .is_err());
        assert!(ExposurePortfolio::generate(&ExposureConfig {
            clusters: 0,
            ..base
        })
        .is_err());
        assert!(ExposurePortfolio::generate(&ExposureConfig {
            limit_fraction: 0.005,
            ..base
        })
        .is_err());
    }
}
