//! The simulated device: specifications, launch validation, block
//! scheduling and launch statistics.

use crate::kernel::{BlockCtx, Kernel, LaunchConfig};
use crate::memory::{MemCounters, MemTraffic, SharedMem};
use parking_lot::Mutex;
use riskpipe_exec::{par_for, ThreadPool};
use riskpipe_types::{RiskError, RiskResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Specification of a simulated device.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of streaming multiprocessors (block-parallel workers).
    pub sm_count: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM (occupancy model).
    pub max_threads_per_sm: u32,
    /// Shared memory per block, bytes.
    pub shared_mem_per_block: u64,
    /// Constant memory, bytes.
    pub const_mem_bytes: u64,
}

impl DeviceSpec {
    /// A Fermi-class device like the paper's 2012 experiments used
    /// (Tesla C2050/M2090 era): 14 SMs, 48 KiB shared per block,
    /// 64 KiB constant memory, 1024-thread blocks.
    pub fn fermi_like() -> Self {
        Self {
            name: "sim-fermi-c2050".into(),
            sm_count: 14,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1536,
            shared_mem_per_block: 48 * 1024,
            const_mem_bytes: 64 * 1024,
        }
    }

    /// A device with one simulated SM per host thread — the natural
    /// configuration when the model runs on the CPU pool.
    pub fn host_native(threads: usize) -> Self {
        Self {
            name: format!("sim-host-{threads}sm"),
            sm_count: threads.max(1) as u32,
            ..Self::fermi_like()
        }
    }

    /// Validate a launch configuration against the device limits.
    pub fn validate(&self, cfg: &LaunchConfig) -> RiskResult<()> {
        if cfg.block_threads == 0 || cfg.grid_blocks == 0 {
            return Err(RiskError::invalid("launch dimensions must be positive"));
        }
        if cfg.block_threads > self.max_threads_per_block {
            return Err(RiskError::CapacityExceeded {
                what: "threads per block".into(),
                requested: cfg.block_threads as u64,
                available: self.max_threads_per_block as u64,
            });
        }
        Ok(())
    }

    /// Coarse occupancy estimate given the peak shared-memory use of a
    /// block: how full the SMs can run with that footprint.
    pub fn occupancy(&self, cfg: &LaunchConfig, peak_shared: u64) -> f64 {
        let by_shared = self
            .shared_mem_per_block
            .checked_div(peak_shared)
            .map_or(8, |d| d.clamp(1, 8));
        let resident = (by_shared * cfg.block_threads as u64).min(self.max_threads_per_sm as u64);
        resident as f64 / self.max_threads_per_sm as f64
    }

    /// Launch a kernel on a host pool. Blocks are distributed across the
    /// pool (capped at `sm_count` concurrent workers conceptually; the
    /// scheduling itself is the pool's work stealing).
    pub fn launch<K: Kernel>(
        &self,
        kernel: &K,
        cfg: LaunchConfig,
        pool: &ThreadPool,
    ) -> RiskResult<LaunchStats> {
        self.validate(&cfg)?;
        let counters = MemCounters::new();
        let peak_shared = AtomicU64::new(0);
        let first_error: Mutex<Option<RiskError>> = Mutex::new(None);
        // lint: allow(D3) — reading feeds only the LaunchStats elapsed
        // diagnostic; kernel results are written by the blocks themselves.
        let start = Instant::now();
        par_for(pool, cfg.grid_blocks as usize, 1, |range| {
            for b in range {
                // Skip remaining blocks once a block has failed (the
                // launch is aborting anyway).
                // lint: allow(C1) — abort-check read of the
                // first-error mutex; holders only read or write one
                // Option and never block, so the wait is bounded.
                if first_error.lock().is_some() {
                    return;
                }
                let mut ctx = BlockCtx {
                    block_idx: b as u32,
                    grid_blocks: cfg.grid_blocks,
                    block_threads: cfg.block_threads,
                    shared: SharedMem::new(self.shared_mem_per_block),
                    counters: &counters,
                };
                let result = kernel.run_block(&mut ctx);
                peak_shared.fetch_max(ctx.shared.peak(), Ordering::Relaxed);
                if let Err(e) = result {
                    // lint: allow(C1) — first-error capture: one
                    // Option write under an otherwise-uncontended
                    // mutex; no holder blocks under it.
                    let mut slot = first_error.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                }
            }
        });
        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        let peak = peak_shared.load(Ordering::Relaxed);
        Ok(LaunchStats {
            blocks: cfg.grid_blocks,
            threads_per_block: cfg.block_threads,
            wall: start.elapsed(),
            traffic: counters.snapshot(),
            peak_shared_bytes: peak,
            occupancy: self.occupancy(&cfg, peak),
        })
    }
}

/// Statistics of one kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchStats {
    /// Blocks executed.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Wall-clock duration of the launch (host time).
    pub wall: Duration,
    /// Memory traffic moved by the kernel.
    pub traffic: MemTraffic,
    /// Peak shared-memory bytes used by any block.
    pub peak_shared_bytes: u64,
    /// Estimated occupancy in `[0, 1]`.
    pub occupancy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::GlobalBuf;

    struct SquareKernel {
        out: GlobalBuf<u64>,
        n: usize,
    }

    impl Kernel for SquareKernel {
        fn run_block(&self, ctx: &mut BlockCtx<'_>) -> RiskResult<()> {
            ctx.for_each_thread(|t| {
                let g = ctx.global_thread(t) as usize;
                if g < self.n {
                    self.out.write(g, (g * g) as u64, ctx.counters);
                }
            });
            Ok(())
        }
    }

    #[test]
    fn kernel_computes_disjoint_outputs() {
        let device = DeviceSpec::fermi_like();
        let pool = ThreadPool::new(4);
        let n = 1000;
        let kernel = SquareKernel {
            out: GlobalBuf::new(n),
            n,
        };
        let cfg = LaunchConfig::cover(n, 128);
        let stats = device.launch(&kernel, cfg, &pool).unwrap();
        assert_eq!(stats.blocks, 8);
        let out = kernel.out.into_vec();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
        // Exactly n global writes of 8 bytes.
        assert_eq!(stats.traffic.global_write, n as u64 * 8);
    }

    struct SharedHog;
    impl Kernel for SharedHog {
        fn run_block(&self, ctx: &mut BlockCtx<'_>) -> RiskResult<()> {
            // 49 KiB > the 48 KiB per-block arena.
            let _tile = ctx.shared.alloc_f64(49 * 1024 / 8 + 1)?;
            Ok(())
        }
    }

    #[test]
    fn over_capacity_kernel_fails_launch() {
        let device = DeviceSpec::fermi_like();
        let pool = ThreadPool::new(2);
        let err = device
            .launch(&SharedHog, LaunchConfig::cover(10, 64), &pool)
            .unwrap_err();
        assert!(matches!(err, RiskError::CapacityExceeded { .. }));
    }

    struct FittingKernel;
    impl Kernel for FittingKernel {
        fn run_block(&self, ctx: &mut BlockCtx<'_>) -> RiskResult<()> {
            let tile = ctx.shared.alloc_f64(1024)?; // 8 KiB
            ctx.counters.shared_write((tile.len() * 8) as u64);
            Ok(())
        }
    }

    #[test]
    fn launch_reports_peak_shared_and_occupancy() {
        let device = DeviceSpec::fermi_like();
        let pool = ThreadPool::new(2);
        let stats = device
            .launch(&FittingKernel, LaunchConfig::cover(512, 256), &pool)
            .unwrap();
        assert_eq!(stats.peak_shared_bytes, 8 * 1024);
        assert!(stats.occupancy > 0.0 && stats.occupancy <= 1.0);
        assert_eq!(stats.traffic.shared_write, 2 * 8 * 1024);
    }

    #[test]
    fn validate_rejects_oversized_blocks() {
        let device = DeviceSpec::fermi_like();
        assert!(device
            .validate(&LaunchConfig {
                grid_blocks: 1,
                block_threads: 2048,
            })
            .is_err());
        assert!(device
            .validate(&LaunchConfig {
                grid_blocks: 0,
                block_threads: 128,
            })
            .is_err());
    }

    #[test]
    fn launches_are_deterministic() {
        let device = DeviceSpec::host_native(8);
        let pool = ThreadPool::new(8);
        let run = || {
            let n = 4096;
            let k = SquareKernel {
                out: GlobalBuf::new(n),
                n,
            };
            device
                .launch(&k, LaunchConfig::cover(n, 64), &pool)
                .unwrap();
            k.out.into_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn occupancy_degrades_with_shared_pressure() {
        let device = DeviceSpec::fermi_like();
        let cfg = LaunchConfig::cover(1024, 128);
        let light = device.occupancy(&cfg, 1024); // 1 KiB per block
        let heavy = device.occupancy(&cfg, 40 * 1024); // 40 KiB per block
        assert!(light > heavy, "light={light} heavy={heavy}");
    }
}
