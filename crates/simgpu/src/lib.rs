//! # riskpipe-simgpu
//!
//! A software model of a 2012-era many-core GPU, standing in for the
//! CUDA hardware of the paper's aggregate-analysis experiments (see the
//! substitution table in DESIGN.md).
//!
//! What the model preserves — the properties the paper's claims rest on:
//!
//! * the **kernel/grid/block programming model**: a [`Kernel`] runs once
//!   per block, blocks are scheduled across simulated SMs (worker
//!   threads of a [`riskpipe_exec::ThreadPool`]), threads within a block
//!   iterate a dense index range;
//! * **capacity-limited fast memories**: each block gets a
//!   [`SharedMem`] arena that refuses allocations beyond the device's
//!   per-block shared-memory size (48 KiB on the Fermi-class parts the
//!   paper's experiments used), and read-only [`ConstMem`] is bounded at
//!   64 KiB — the constraints that force the paper's *chunking* design;
//! * **memory-traffic accounting**: explicit [`MemCounters`] tally
//!   global/shared/constant bytes moved, so the chunking ablation (E8)
//!   can show *why* staging ELT tiles into shared memory wins;
//! * **deterministic results**: block execution order is
//!   schedule-dependent but kernels write disjoint outputs
//!   ([`GlobalBuf`]), so launches are bit-reproducible.
//!
//! What it does **not** model: warp divergence, memory coalescing
//! timing, or clock-accurate throughput. Wall-clock numbers from this
//! device are CPU numbers; the experiments report them as such and
//! compare *shapes*, not absolute GPU timings.

#![warn(missing_docs)]

mod device;
mod kernel;
mod memory;

pub use device::{DeviceSpec, LaunchStats};
pub use kernel::{BlockCtx, Kernel, LaunchConfig};
pub use memory::{ConstMem, GlobalBuf, MemCounters, MemTraffic, SharedMem};
