//! The simulated device memories: capacity-checked shared and constant
//! memory, traffic counters, and a global-memory buffer with
//! write-disjoint semantics.

use riskpipe_types::{RiskError, RiskResult};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Byte-level traffic counters for one launch. Incremented with relaxed
/// atomics from all blocks; read once after the launch.
#[derive(Debug, Default)]
pub struct MemCounters {
    global_read: AtomicU64,
    global_write: AtomicU64,
    shared_read: AtomicU64,
    shared_write: AtomicU64,
    const_read: AtomicU64,
}

/// A snapshot of [`MemCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemTraffic {
    /// Bytes read from global memory.
    pub global_read: u64,
    /// Bytes written to global memory.
    pub global_write: u64,
    /// Bytes read from shared memory.
    pub shared_read: u64,
    /// Bytes written to shared memory.
    pub shared_write: u64,
    /// Bytes read from constant memory.
    pub const_read: u64,
}

impl MemCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a global-memory read of `bytes`.
    #[inline]
    pub fn global_read(&self, bytes: u64) {
        self.global_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a global-memory write of `bytes`.
    #[inline]
    pub fn global_write(&self, bytes: u64) {
        self.global_write.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a shared-memory read of `bytes`.
    #[inline]
    pub fn shared_read(&self, bytes: u64) {
        self.shared_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a shared-memory write of `bytes`.
    #[inline]
    pub fn shared_write(&self, bytes: u64) {
        self.shared_write.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a constant-memory read of `bytes`.
    #[inline]
    pub fn const_read(&self, bytes: u64) {
        self.const_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> MemTraffic {
        MemTraffic {
            global_read: self.global_read.load(Ordering::Relaxed),
            global_write: self.global_write.load(Ordering::Relaxed),
            shared_read: self.shared_read.load(Ordering::Relaxed),
            shared_write: self.shared_write.load(Ordering::Relaxed),
            const_read: self.const_read.load(Ordering::Relaxed),
        }
    }
}

/// Per-block shared-memory arena.
///
/// Capacity is enforced by byte accounting: allocations are ordinary
/// heap buffers, but the arena refuses to exceed the device's per-block
/// shared memory — which is the constraint that shapes chunked
/// algorithms. Peak usage is tracked for occupancy estimation.
#[derive(Debug)]
pub struct SharedMem {
    capacity: u64,
    used: u64,
    peak: u64,
}

impl SharedMem {
    /// An arena of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            peak: 0,
        }
    }

    /// Allocate a zeroed `f64` buffer of `n` elements from the arena.
    pub fn alloc_f64(&mut self, n: usize) -> RiskResult<Vec<f64>> {
        self.charge((n * 8) as u64)?;
        Ok(vec![0.0; n])
    }

    /// Allocate a zeroed `u32` buffer of `n` elements from the arena.
    pub fn alloc_u32(&mut self, n: usize) -> RiskResult<Vec<u32>> {
        self.charge((n * 4) as u64)?;
        Ok(vec![0; n])
    }

    /// Release `bytes` back to the arena (a kernel reusing its tile
    /// buffer between chunk iterations frees and re-charges).
    pub fn release(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }

    fn charge(&mut self, bytes: u64) -> RiskResult<()> {
        if self.used + bytes > self.capacity {
            return Err(RiskError::CapacityExceeded {
                what: "shared memory".into(),
                requested: self.used + bytes,
                available: self.capacity,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of the arena.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Arena capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

/// Read-only constant memory: a bounded, typed broadcast area. The
/// canonical use is the portfolio's financial terms, read by every
/// thread of every block.
#[derive(Debug, Clone)]
pub struct ConstMem {
    data: Vec<u8>,
    capacity: u64,
}

impl ConstMem {
    /// Create from raw bytes; fails beyond `capacity`.
    pub fn from_bytes(data: Vec<u8>, capacity: u64) -> RiskResult<Self> {
        if data.len() as u64 > capacity {
            return Err(RiskError::CapacityExceeded {
                what: "constant memory".into(),
                requested: data.len() as u64,
                available: capacity,
            });
        }
        Ok(Self { data, capacity })
    }

    /// Create from a slice of `f64` values.
    pub fn from_f64s(values: &[f64], capacity: u64) -> RiskResult<Self> {
        let mut data = Vec::with_capacity(values.len() * 8);
        for v in values {
            data.extend_from_slice(&v.to_le_bytes());
        }
        Self::from_bytes(data, capacity)
    }

    /// Read the `i`-th f64, counting constant-memory traffic.
    #[inline]
    pub fn read_f64(&self, i: usize, counters: &MemCounters) -> f64 {
        counters.const_read(8);
        let off = i * 8;
        f64::from_le_bytes(self.data[off..off + 8].try_into().expect("8-byte slice"))
    }

    /// Number of f64 slots.
    pub fn len_f64(&self) -> usize {
        self.data.len() / 8
    }

    /// Bytes stored.
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

/// A global-memory output buffer with CUDA-like semantics: any thread
/// may write any index, but — as on real hardware — racing writes to
/// the same index are a bug. The launch contract requires kernels to
/// write disjoint index sets per block.
pub struct GlobalBuf<T> {
    data: UnsafeCell<Box<[T]>>,
    len: usize,
}

// SAFETY: access discipline is the kernel-launch contract — each index
// is written by at most one block, and reads of written indices happen
// only after the launch completes (the pool scope is a happens-before
// edge). This mirrors CUDA global memory.
unsafe impl<T: Send> Send for GlobalBuf<T> {}
unsafe impl<T: Send> Sync for GlobalBuf<T> {}

impl<T: Copy + Default> GlobalBuf<T> {
    /// A zero-initialised buffer of `len` elements.
    pub fn new(len: usize) -> Self {
        Self {
            data: UnsafeCell::new(vec![T::default(); len].into_boxed_slice()),
            len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write element `i` from a kernel, counting global traffic.
    ///
    /// # Safety contract (checked in debug builds only)
    /// At most one thread writes a given index during a launch.
    #[inline]
    pub fn write(&self, i: usize, v: T, counters: &MemCounters) {
        counters.global_write(std::mem::size_of::<T>() as u64);
        // SAFETY: per the launch contract, index i is owned by the
        // calling block; bounds are checked below.
        unsafe {
            let slice = &mut *self.data.get();
            slice[i] = v;
        }
    }

    /// Read element `i` from a kernel, counting global traffic.
    #[inline]
    pub fn read(&self, i: usize, counters: &MemCounters) -> T {
        counters.global_read(std::mem::size_of::<T>() as u64);
        // SAFETY: bounds-checked indexing of a live allocation; the
        // launch contract rules out read/write races on an index.
        unsafe { (*self.data.get())[i] }
    }

    /// Write element `i` without touching the counters — for kernels
    /// that batch their traffic accounting per block (see the aggregate
    /// engine's meters). The safety contract is identical to
    /// [`GlobalBuf::write`].
    #[inline]
    pub fn write_uncounted(&self, i: usize, v: T) {
        // SAFETY: per the launch contract, index i is owned by the
        // calling block; bounds are checked below.
        unsafe {
            let slice = &mut *self.data.get();
            slice[i] = v;
        }
    }

    /// Consume the buffer after a launch, yielding its contents.
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_inner().into_vec()
    }

    /// Borrow the contents after a launch (requires `&mut` to prove
    /// exclusive access).
    pub fn as_slice_mut(&mut self) -> &mut [T] {
        self.data.get_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = MemCounters::new();
        c.global_read(8);
        c.global_read(8);
        c.global_write(4);
        c.shared_read(16);
        c.shared_write(32);
        c.const_read(8);
        let t = c.snapshot();
        assert_eq!(t.global_read, 16);
        assert_eq!(t.global_write, 4);
        assert_eq!(t.shared_read, 16);
        assert_eq!(t.shared_write, 32);
        assert_eq!(t.const_read, 8);
    }

    #[test]
    fn shared_mem_enforces_capacity() {
        let mut s = SharedMem::new(100);
        let _a = s.alloc_f64(10).unwrap(); // 80 bytes
        assert_eq!(s.used(), 80);
        let err = s.alloc_f64(3).unwrap_err(); // would be 104
        assert!(matches!(err, RiskError::CapacityExceeded { .. }));
        let _b = s.alloc_u32(5).unwrap(); // exactly 100
        assert_eq!(s.used(), 100);
        assert_eq!(s.peak(), 100);
    }

    #[test]
    fn shared_mem_release_allows_reuse() {
        let mut s = SharedMem::new(64);
        let _a = s.alloc_f64(8).unwrap();
        s.release(64);
        assert_eq!(s.used(), 0);
        let _b = s.alloc_f64(8).unwrap();
        assert_eq!(s.peak(), 64);
    }

    #[test]
    fn const_mem_round_trips_f64() {
        let values = [1.5, -2.25, 1e9];
        let cm = ConstMem::from_f64s(&values, 64 * 1024).unwrap();
        let c = MemCounters::new();
        assert_eq!(cm.len_f64(), 3);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(cm.read_f64(i, &c), v);
        }
        assert_eq!(c.snapshot().const_read, 24);
    }

    #[test]
    fn const_mem_enforces_capacity() {
        let big = vec![0.0f64; 10_000];
        assert!(ConstMem::from_f64s(&big, 64 * 1024).is_err());
        assert!(ConstMem::from_f64s(&big[..8192], 64 * 1024).is_ok());
    }

    #[test]
    fn global_buf_write_read_counts_traffic() {
        let buf: GlobalBuf<f64> = GlobalBuf::new(8);
        let c = MemCounters::new();
        buf.write(3, 7.5, &c);
        assert_eq!(buf.read(3, &c), 7.5);
        assert_eq!(buf.read(0, &c), 0.0);
        let t = c.snapshot();
        assert_eq!(t.global_write, 8);
        assert_eq!(t.global_read, 16);
        assert_eq!(buf.len(), 8);
    }

    #[test]
    fn global_buf_into_vec() {
        let buf: GlobalBuf<u32> = GlobalBuf::new(4);
        let c = MemCounters::new();
        for i in 0..4 {
            buf.write(i, (i * i) as u32, &c);
        }
        assert_eq!(buf.into_vec(), vec![0, 1, 4, 9]);
    }
}
