//! The kernel programming model: grid of blocks, threads within blocks.

use crate::memory::{MemCounters, SharedMem};
use riskpipe_types::RiskResult;

/// Launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
}

impl LaunchConfig {
    /// A launch covering `work_items` with the given block size
    /// (grid = ceil(work/block)).
    pub fn cover(work_items: usize, block_threads: u32) -> Self {
        assert!(block_threads > 0);
        let grid = work_items.div_ceil(block_threads as usize).max(1);
        Self {
            grid_blocks: grid as u32,
            block_threads,
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.block_threads as u64
    }
}

/// Execution context handed to a kernel for one block.
pub struct BlockCtx<'a> {
    /// This block's index in the grid.
    pub block_idx: u32,
    /// Blocks in the grid.
    pub grid_blocks: u32,
    /// Threads in this block.
    pub block_threads: u32,
    /// The block's private shared-memory arena.
    pub shared: SharedMem,
    /// Launch-wide traffic counters.
    pub counters: &'a MemCounters,
}

impl BlockCtx<'_> {
    /// Global thread index of thread `t` of this block.
    #[inline]
    pub fn global_thread(&self, t: u32) -> u64 {
        self.block_idx as u64 * self.block_threads as u64 + t as u64
    }

    /// Run `f` once per thread in the block (the model executes block
    /// threads sequentially; parallelism is across blocks).
    pub fn for_each_thread<F: FnMut(u32)>(&self, mut f: F) {
        for t in 0..self.block_threads {
            f(t);
        }
    }
}

/// A GPU-style kernel: invoked once per block; the implementation
/// iterates its threads via [`BlockCtx::for_each_thread`].
///
/// Kernels must be `Sync` (all blocks share `&self`) and must write
/// disjoint global-memory indices per block (see
/// [`crate::memory::GlobalBuf`]).
pub trait Kernel: Sync {
    /// Execute one block.
    fn run_block(&self, ctx: &mut BlockCtx<'_>) -> RiskResult<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_rounds_up() {
        let c = LaunchConfig::cover(1000, 256);
        assert_eq!(c.grid_blocks, 4);
        assert_eq!(c.block_threads, 256);
        assert_eq!(c.total_threads(), 1024);
        // Zero work still gets one block.
        assert_eq!(LaunchConfig::cover(0, 64).grid_blocks, 1);
        // Exact division.
        assert_eq!(LaunchConfig::cover(512, 256).grid_blocks, 2);
    }

    #[test]
    fn global_thread_indexing() {
        let counters = MemCounters::new();
        let ctx = BlockCtx {
            block_idx: 3,
            grid_blocks: 8,
            block_threads: 128,
            shared: SharedMem::new(1024),
            counters: &counters,
        };
        assert_eq!(ctx.global_thread(0), 384);
        assert_eq!(ctx.global_thread(127), 511);
    }

    #[test]
    fn for_each_thread_visits_all() {
        let counters = MemCounters::new();
        let ctx = BlockCtx {
            block_idx: 0,
            grid_blocks: 1,
            block_threads: 37,
            shared: SharedMem::new(0),
            counters: &counters,
        };
        let mut seen = [false; 37];
        ctx.for_each_thread(|t| seen[t as usize] = true);
        assert!(seen.iter().all(|&s| s));
    }
}
