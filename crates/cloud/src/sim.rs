//! The discrete-event simulation loop.
//!
//! Jobs arrive, tasks claim cores, the policy is consulted on every
//! event and on a periodic tick, and the cluster integrates paid and
//! used core-time. Everything is integer-millisecond timestamped and
//! tie-broken by a sequence counter, so a run is exactly reproducible.

use crate::cluster::{Cluster, NodeSpec};
use crate::policy::{Action, Observation, Policy};
use crate::workload::{validate_workload, JobSpec, Stage};
use riskpipe_types::RiskResult;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Node shape.
    pub node: NodeSpec,
    /// Policy tick interval (ms).
    pub tick_ms: u64,
    /// Accounting horizon: capacity is billed at least this long, and
    /// the policy keeps ticking until the later of this and the last
    /// job completion.
    pub horizon_ms: u64,
    /// Hard stop: give up on unfinished jobs beyond this time (guards
    /// against policies that never provision).
    pub max_sim_ms: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            node: NodeSpec {
                cores: 8,
                boot_ms: 120_000,
            },
            tick_ms: 60_000,
            horizon_ms: crate::workload::WEEK_MS,
            max_sim_ms: 4 * crate::workload::WEEK_MS,
        }
    }
}

/// Outcome of one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job name.
    pub name: String,
    /// Pipeline stage.
    pub stage: Stage,
    /// Arrival time.
    pub arrival_ms: u64,
    /// When the first task started, if any did.
    pub first_start_ms: Option<u64>,
    /// Completion time, if the job finished.
    pub completed_ms: Option<u64>,
    /// Deadline in absolute ms, if the job had one.
    pub deadline_abs_ms: Option<u64>,
}

impl JobOutcome {
    /// Whether the deadline was met (None when the job had none).
    pub fn deadline_met(&self) -> Option<bool> {
        self.deadline_abs_ms
            .map(|d| self.completed_ms.map(|c| c <= d).unwrap_or(false))
    }

    /// Queue wait before the first task ran.
    pub fn wait_ms(&self) -> Option<u64> {
        self.first_start_ms.map(|s| s - self.arrival_ms)
    }

    /// Total time from arrival to completion.
    pub fn span_ms(&self) -> Option<u64> {
        self.completed_ms.map(|c| c - self.arrival_ms)
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Policy name.
    pub policy: String,
    /// Per-job outcomes, in workload order.
    pub jobs: Vec<JobOutcome>,
    /// Paid capacity (core-ms).
    pub capacity_core_ms: u64,
    /// Used capacity (core-ms).
    pub busy_core_ms: u64,
    /// Peak simultaneous ready nodes.
    pub peak_nodes: u32,
    /// Total boot requests.
    pub boots: u64,
    /// Total retirements.
    pub retires: u64,
    /// Time of the last completion (0 when nothing ran).
    pub last_completion_ms: u64,
    /// `(time_ms, ready_nodes, busy_cores)` samples taken at every
    /// policy tick — the demand/provision curve (the E10 figure).
    pub timeline: Vec<(u64, u32, u32)>,
}

impl SimResult {
    /// Fraction of deadline-bearing jobs that met their deadline.
    pub fn deadline_attainment(&self) -> f64 {
        let with: Vec<bool> = self.jobs.iter().filter_map(|j| j.deadline_met()).collect();
        if with.is_empty() {
            return 1.0;
        }
        with.iter().filter(|&&m| m).count() as f64 / with.len() as f64
    }

    /// Whether every job completed.
    pub fn all_complete(&self) -> bool {
        self.jobs.iter().all(|j| j.completed_ms.is_some())
    }

    /// Paid capacity in core-hours — the cost proxy.
    pub fn core_hours(&self) -> f64 {
        self.capacity_core_ms as f64 / 3_600_000.0
    }

    /// Used ÷ paid capacity.
    pub fn utilization(&self) -> f64 {
        if self.capacity_core_ms == 0 {
            return 0.0;
        }
        self.busy_core_ms as f64 / self.capacity_core_ms as f64
    }

    /// Mean queue wait over jobs that started (ms).
    pub fn mean_wait_ms(&self) -> f64 {
        let waits: Vec<u64> = self.jobs.iter().filter_map(|j| j.wait_ms()).collect();
        if waits.is_empty() {
            return 0.0;
        }
        waits.iter().sum::<u64>() as f64 / waits.len() as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Arrival(usize),
    TaskFinish { job: usize, node: usize },
    NodeReady,
    Tick,
}

#[derive(Debug)]
struct JobState {
    /// Tasks not yet started.
    pending: u32,
    /// Tasks currently running.
    running: u32,
    /// Arrival reached.
    arrived: bool,
    /// Dependency satisfied (or none).
    dep_done: bool,
    first_start: Option<u64>,
    completed: Option<u64>,
}

impl JobState {
    fn released(&self) -> bool {
        self.arrived && self.dep_done && self.completed.is_none()
    }
}

/// Run `policy` against `jobs` under `config`.
pub fn simulate(
    jobs: &[JobSpec],
    policy: &mut dyn Policy,
    config: &SimConfig,
) -> RiskResult<SimResult> {
    validate_workload(jobs)?;
    config.node.validate()?;
    let mut cluster = Cluster::new(config.node)?;

    let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut events: Vec<EventKind> = Vec::new();
    let mut seq = 0u64;
    fn push(
        heap: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
        events: &mut Vec<EventKind>,
        seq: &mut u64,
        t: u64,
        kind: EventKind,
    ) {
        events.push(kind);
        heap.push(Reverse((t, *seq, events.len() - 1)));
        *seq += 1;
    }

    // Dependents: job i completes → release these jobs.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); jobs.len()];
    let mut states: Vec<JobState> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            if let Some(d) = j.after {
                dependents[d].push(i);
            }
            JobState {
                pending: j.tasks,
                running: 0,
                arrived: false,
                dep_done: j.after.is_none(),
                first_start: None,
                completed: None,
            }
        })
        .collect();

    for (i, j) in jobs.iter().enumerate() {
        push(
            &mut heap,
            &mut events,
            &mut seq,
            j.arrival_ms,
            EventKind::Arrival(i),
        );
    }
    push(&mut heap, &mut events, &mut seq, 0, EventKind::Tick);

    let mut queued_total: u64 = jobs.iter().map(|j| j.tasks as u64).sum();
    let mut running_total: u64 = 0;
    let mut last_completion = 0u64;
    let mut timeline: Vec<(u64, u32, u32)> = Vec::new();
    // The policy is consulted once per unique timestamp. Consulting it
    // again for events its *own actions* scheduled at the same instant
    // (a zero-latency boot's NodeReady) would let a hostile policy
    // boot-and-retire forever without the clock moving — a livelock
    // the failure-injection suite exercises.
    let mut policy_consulted_at: Option<u64> = None;

    // Dispatch pending tasks of released jobs onto free cores, FIFO by
    // arrival (ties by workload order).
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (jobs[i].arrival_ms, i));

    let dispatch = |cluster: &mut Cluster,
                    states: &mut [JobState],
                    heap: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
                    events: &mut Vec<EventKind>,
                    seq: &mut u64,
                    running_total: &mut u64,
                    order: &[usize],
                    now: u64| {
        for &i in order {
            let spec = &jobs[i];
            loop {
                let st = &states[i];
                if !st.released() || st.pending == 0 {
                    break;
                }
                if spec.max_parallel != 0 && st.running >= spec.max_parallel {
                    break;
                }
                let Some(node) = cluster.claim_core() else {
                    return; // cluster saturated
                };
                let st = &mut states[i];
                st.pending -= 1;
                st.running += 1;
                st.first_start.get_or_insert(now);
                *running_total += 1;
                events.push(EventKind::TaskFinish { job: i, node });
                heap.push(Reverse((now + spec.task_ms, *seq, events.len() - 1)));
                *seq += 1;
            }
        }
    };

    while let Some(&Reverse((t, _, _))) = heap.peek() {
        cluster.advance_to(t);
        // Drain every event at this timestamp before dispatch/policy.
        while let Some(&Reverse((t2, _, idx))) = heap.peek() {
            if t2 != t {
                break;
            }
            heap.pop();
            match events[idx] {
                EventKind::Arrival(i) => {
                    states[i].arrived = true;
                }
                EventKind::TaskFinish { job, node } => {
                    cluster.release_core(node);
                    let st = &mut states[job];
                    st.running -= 1;
                    running_total -= 1;
                    queued_total -= 1;
                    if st.pending == 0 && st.running == 0 {
                        st.completed = Some(t);
                        last_completion = last_completion.max(t);
                        for &d in &dependents[job] {
                            states[d].dep_done = true;
                        }
                    }
                }
                EventKind::NodeReady => {
                    cluster.activate_ready();
                }
                EventKind::Tick => {
                    timeline.push((t, cluster.ready_nodes(), cluster.busy_cores()));
                    let unfinished = states.iter().any(|s| s.completed.is_none());
                    let next = t + config.tick_ms;
                    if (next <= config.horizon_ms || unfinished) && next <= config.max_sim_ms {
                        push(&mut heap, &mut events, &mut seq, next, EventKind::Tick);
                    }
                }
            }
        }

        dispatch(
            &mut cluster,
            &mut states,
            &mut heap,
            &mut events,
            &mut seq,
            &mut running_total,
            &order,
            t,
        );

        // Consult the policy with the post-dispatch state. The queue
        // signal is the *dispatchable* backlog: a job capped at
        // max_parallel can never use more cores than its headroom, so
        // reporting its whole pending count would make the autoscaler
        // buy capacity the scheduler cannot use.
        let queued_now: u64 = states
            .iter()
            .zip(jobs.iter())
            .filter(|(s, _)| s.released())
            .map(|(s, j)| {
                if j.max_parallel == 0 {
                    s.pending as u64
                } else {
                    (j.max_parallel.saturating_sub(s.running) as u64).min(s.pending as u64)
                }
            })
            .sum();
        if policy_consulted_at != Some(t) {
            policy_consulted_at = Some(t);
            let obs = Observation {
                now_ms: t,
                queued_tasks: queued_now,
                running_tasks: running_total,
                ready_nodes: cluster.ready_nodes(),
                booting_nodes: cluster.booting_nodes(),
                cores_per_node: config.node.cores,
                free_cores: cluster.free_cores(),
            };
            let Action { boot, retire_idle } = policy.act(&obs);
            if boot > 0 {
                let ready_at = cluster.boot(boot);
                push(
                    &mut heap,
                    &mut events,
                    &mut seq,
                    ready_at,
                    EventKind::NodeReady,
                );
            }
            if retire_idle > 0 {
                cluster.retire_idle(retire_idle);
            }
            // Booted nodes with zero latency are ready this timestamp;
            // the NodeReady event sits at the same t and the outer loop
            // re-enters to activate and dispatch — but does not consult
            // the policy again until the clock moves.
        }
    }

    // Settle accounting to the horizon (a fixed cluster is paid for
    // the full period even after the last job).
    let settle = config.horizon_ms.max(cluster.clock_ms());
    cluster.advance_to(settle);
    let _ = queued_total;

    let outcomes: Vec<JobOutcome> = jobs
        .iter()
        .zip(states.iter())
        .map(|(j, s)| JobOutcome {
            name: j.name.clone(),
            stage: j.stage,
            arrival_ms: j.arrival_ms,
            first_start_ms: s.first_start,
            completed_ms: s.completed,
            deadline_abs_ms: j.deadline_ms.map(|d| j.arrival_ms + d),
        })
        .collect();

    Ok(SimResult {
        policy: policy.name().to_string(),
        jobs: outcomes,
        capacity_core_ms: cluster.capacity_core_ms(),
        busy_core_ms: cluster.busy_core_ms(),
        peak_nodes: cluster.peak_ready_nodes(),
        boots: cluster.boots(),
        retires: cluster.retires(),
        last_completion_ms: last_completion,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedPolicy, ReactivePolicy, ScheduledPolicy};
    use crate::workload::{JobSpec, Stage};

    fn job(name: &str, arrival: u64, tasks: u32, task_ms: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            stage: Stage::AdHoc,
            arrival_ms: arrival,
            tasks,
            task_ms,
            max_parallel: 0,
            deadline_ms: None,
            after: None,
        }
    }

    fn config(cores: u32, boot_ms: u64, horizon: u64) -> SimConfig {
        SimConfig {
            node: NodeSpec { cores, boot_ms },
            tick_ms: 1_000,
            horizon_ms: horizon,
            max_sim_ms: horizon * 10,
        }
    }

    #[test]
    fn single_job_completes_with_correct_makespan() {
        // 8 tasks × 100 ms on 1 node × 4 cores, no boot lag:
        // two waves → completion at 200 ms.
        let jobs = vec![job("j", 0, 8, 100)];
        let mut p = FixedPolicy::new(1);
        let r = simulate(&jobs, &mut p, &config(4, 0, 10_000)).unwrap();
        assert!(r.all_complete());
        assert_eq!(r.jobs[0].completed_ms, Some(200));
        assert_eq!(r.jobs[0].first_start_ms, Some(0));
        // Work conservation: busy integral equals total work.
        assert_eq!(r.busy_core_ms, 800);
        // Paid for the whole horizon.
        assert_eq!(r.capacity_core_ms, 4 * 10_000);
    }

    #[test]
    fn boot_latency_delays_start() {
        let jobs = vec![job("j", 0, 1, 100)];
        let mut p = FixedPolicy::new(1);
        let r = simulate(&jobs, &mut p, &config(1, 500, 10_000)).unwrap();
        assert_eq!(r.jobs[0].first_start_ms, Some(500));
        assert_eq!(r.jobs[0].completed_ms, Some(600));
        // Capacity only accrues once ready: 10_000 − 500.
        assert_eq!(r.capacity_core_ms, 9_500);
    }

    #[test]
    fn max_parallel_caps_concurrency() {
        let mut j = job("j", 0, 4, 100);
        j.max_parallel = 1;
        let mut p = FixedPolicy::new(4);
        let r = simulate(&[j], &mut p, &config(4, 0, 10_000)).unwrap();
        // Serialised: 4 × 100 ms.
        assert_eq!(r.jobs[0].completed_ms, Some(400));
    }

    #[test]
    fn dependencies_gate_start() {
        let a = job("a", 0, 2, 100);
        let mut b = job("b", 0, 2, 100);
        b.after = Some(0);
        let mut p = FixedPolicy::new(1);
        let r = simulate(&[a, b], &mut p, &config(2, 0, 10_000)).unwrap();
        // a: [0,100); b starts at 100.
        assert_eq!(r.jobs[0].completed_ms, Some(100));
        assert_eq!(r.jobs[1].first_start_ms, Some(100));
        assert_eq!(r.jobs[1].completed_ms, Some(200));
    }

    #[test]
    fn deadline_attainment_reflects_misses() {
        let mut a = job("a", 0, 10, 100);
        a.deadline_ms = Some(300); // needs ≥ 4 cores-rounds: on 1 core → 1000ms, miss
        let mut b = job("b", 0, 1, 100);
        b.deadline_ms = Some(5_000); // trivially met
        let mut p = FixedPolicy::new(1);
        let r = simulate(&[a, b], &mut p, &config(1, 0, 20_000)).unwrap();
        assert!(r.all_complete());
        let met: Vec<bool> = r.jobs.iter().filter_map(|j| j.deadline_met()).collect();
        assert_eq!(met, vec![false, true]);
        assert!((r.deadline_attainment() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_capacity_leaves_jobs_incomplete() {
        let jobs = vec![job("stuck", 0, 1, 100)];
        let mut p = FixedPolicy::new(0);
        let cfg = SimConfig {
            max_sim_ms: 5_000,
            ..config(1, 0, 2_000)
        };
        let r = simulate(&jobs, &mut p, &cfg).unwrap();
        assert!(!r.all_complete());
        assert_eq!(r.jobs[0].deadline_met(), None); // no deadline set
        assert_eq!(r.busy_core_ms, 0);
        assert_eq!(r.capacity_core_ms, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let jobs = crate::workload::pipeline_week(&Default::default()).unwrap();
        let cfg = SimConfig::default();
        let run = || {
            let mut p = ReactivePolicy::new(2, 600);
            simulate(&jobs, &mut p, &cfg).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.capacity_core_ms, b.capacity_core_ms);
        assert_eq!(a.busy_core_ms, b.busy_core_ms);
        assert_eq!(a.peak_nodes, b.peak_nodes);
        for (x, y) in a.jobs.iter().zip(b.jobs.iter()) {
            assert_eq!(x.completed_ms, y.completed_ms);
        }
    }

    #[test]
    fn work_conservation_on_full_completion() {
        let jobs = vec![
            job("a", 0, 37, 130),
            job("b", 500, 11, 90),
            job("c", 1_000, 64, 200),
        ];
        let total: u64 = jobs.iter().map(|j| j.work_core_ms()).sum();
        let mut p = FixedPolicy::new(3);
        let r = simulate(&jobs, &mut p, &config(4, 50, 100_000)).unwrap();
        assert!(r.all_complete());
        assert_eq!(r.busy_core_ms, total);
        assert!(r.utilization() <= 1.0);
    }

    #[test]
    fn reactive_beats_fixed_peak_on_cost() {
        let jobs = crate::workload::pipeline_week(&Default::default()).unwrap();
        let cfg = SimConfig::default();
        let peak_cores = crate::workload::peak_deadline_demand(&jobs, crate::workload::WEEK_MS);
        // Headroom so the fixed-peak baseline actually meets deadlines.
        let peak_nodes = ((peak_cores as f64 * 1.25) as u64).div_ceil(cfg.node.cores as u64) as u32;
        let mut fixed = FixedPolicy::new(peak_nodes);
        let rf = simulate(&jobs, &mut fixed, &cfg).unwrap();
        let mut reactive = ReactivePolicy::new(2, peak_nodes);
        let rr = simulate(&jobs, &mut reactive, &cfg).unwrap();
        assert!(rf.all_complete());
        assert!(rr.all_complete());
        // The elastic run pays far less for the same week.
        assert!(
            rr.core_hours() < rf.core_hours() * 0.5,
            "reactive {} vs fixed {}",
            rr.core_hours(),
            rf.core_hours()
        );
        assert!(rr.utilization() > rf.utilization());
    }

    #[test]
    fn scheduled_provisions_ahead_of_burst() {
        let jobs = crate::workload::pipeline_week(&Default::default()).unwrap();
        let cfg = SimConfig::default();
        // Window around the Friday-evening burst.
        let burst_start = 4 * crate::workload::DAY_MS + 17 * crate::workload::HOUR_MS;
        let burst_end = burst_start + 14 * crate::workload::HOUR_MS;
        let mut p = ScheduledPolicy {
            windows: vec![(burst_start, burst_end, 80)],
            base_nodes: 2,
        };
        let r = simulate(&jobs, &mut p, &cfg).unwrap();
        let rollup = r
            .jobs
            .iter()
            .find(|j| j.name == "stage2-portfolio-rollup")
            .unwrap();
        assert_eq!(rollup.deadline_met(), Some(true));
        // Pre-provisioned: the roll-up starts within a tick + boot.
        assert!(rollup.wait_ms().unwrap() <= cfg.tick_ms + cfg.node.boot_ms);
    }

    #[test]
    fn timeline_tracks_the_burst() {
        let jobs = crate::workload::pipeline_week(&Default::default()).unwrap();
        let cfg = SimConfig::default();
        let mut p = ReactivePolicy::new(2, 100);
        let r = simulate(&jobs, &mut p, &cfg).unwrap();
        assert!(!r.timeline.is_empty());
        // Samples are time-ordered and within provisioned bounds.
        for w in r.timeline.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for &(_, nodes, busy) in &r.timeline {
            assert!(nodes <= 100);
            assert!(busy <= nodes * cfg.node.cores);
        }
        // The burst is visible: peak sampled nodes far above the floor.
        let peak = r.timeline.iter().map(|&(_, n, _)| n).max().unwrap();
        let friday_noon = 4 * crate::workload::DAY_MS + 12 * crate::workload::HOUR_MS;
        let before_burst = r
            .timeline
            .iter()
            .filter(|&&(t, _, _)| t < friday_noon)
            .map(|&(_, n, _)| n)
            .max()
            .unwrap();
        assert!(
            peak >= 4 * before_burst,
            "peak {peak} vs pre-burst {before_burst}"
        );
    }

    #[test]
    fn empty_workload_is_fine() {
        let mut p = FixedPolicy::new(2);
        let r = simulate(&[], &mut p, &config(2, 0, 1_000)).unwrap();
        assert!(r.all_complete());
        assert_eq!(r.deadline_attainment(), 1.0);
        assert_eq!(r.busy_core_ms, 0);
        assert!(r.capacity_core_ms > 0); // the fixed cluster still bills
    }
}
