//! The simulated cluster: homogeneous nodes with boot latency and
//! core-time accounting.
//!
//! Nodes are the unit of provisioning (a cloud instance); cores are the
//! unit of scheduling (one aggregate-analysis worker). The cluster
//! integrates two quantities over simulated time — *capacity* core-ms
//! (what the reinsurer pays for) and *busy* core-ms (what the pipeline
//! actually used) — whose ratio is the utilisation number experiment
//! E10 reports.

use riskpipe_types::{RiskError, RiskResult};

/// Shape of every node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// Cores per node.
    pub cores: u32,
    /// Milliseconds from boot request to the node accepting work —
    /// cloud instances are not instant, and the boot lag is what makes
    /// purely reactive scaling miss very tight deadlines.
    pub boot_ms: u64,
}

impl NodeSpec {
    /// Validate the spec.
    pub fn validate(&self) -> RiskResult<()> {
        if self.cores == 0 {
            return Err(RiskError::invalid("node must have at least one core"));
        }
        Ok(())
    }
}

/// Lifecycle of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Boot requested; accepts work at `ready_at`.
    Booting,
    /// Accepting work.
    Ready,
    /// Shut down; no longer billed.
    Retired,
}

/// One provisioned node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Lifecycle state.
    pub state: NodeState,
    /// When the node was requested.
    pub booted_at: u64,
    /// When the node becomes/became ready.
    pub ready_at: u64,
    /// When the node retired (meaningful in `Retired`).
    pub retired_at: u64,
    /// Busy cores (≤ spec cores).
    pub busy: u32,
}

/// The cluster: node list plus time-integrated accounting.
#[derive(Debug)]
pub struct Cluster {
    spec: NodeSpec,
    nodes: Vec<Node>,
    clock_ms: u64,
    capacity_core_ms: u64,
    busy_core_ms: u64,
    boots: u64,
    retires: u64,
    peak_ready_nodes: u32,
    ready_node_count: u32,
    busy_core_count: u32,
    free_core_count: u32,
    /// No ready node below this index has a free core (packing cursor;
    /// keeps [`Cluster::claim_core`] amortised O(1) instead of O(nodes)
    /// per task on big clusters).
    scan_hint: usize,
}

impl Cluster {
    /// An empty cluster of `spec`-shaped nodes.
    pub fn new(spec: NodeSpec) -> RiskResult<Self> {
        spec.validate()?;
        Ok(Self {
            spec,
            nodes: Vec::new(),
            clock_ms: 0,
            capacity_core_ms: 0,
            busy_core_ms: 0,
            boots: 0,
            retires: 0,
            peak_ready_nodes: 0,
            ready_node_count: 0,
            busy_core_count: 0,
            free_core_count: 0,
            scan_hint: 0,
        })
    }

    /// The node shape.
    pub fn spec(&self) -> NodeSpec {
        self.spec
    }

    /// Current simulated time.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Advance the clock, accruing capacity and busy integrals.
    ///
    /// # Panics
    /// Panics if `now` is in the past — the discrete-event loop must
    /// deliver events in time order.
    pub fn advance_to(&mut self, now: u64) {
        assert!(now >= self.clock_ms, "time went backwards");
        let dt = now - self.clock_ms;
        if dt > 0 {
            let ready_cores = self.ready_cores() as u64;
            let busy_cores = self.busy_cores() as u64;
            self.capacity_core_ms += ready_cores * dt;
            self.busy_core_ms += busy_cores * dt;
            self.clock_ms = now;
        }
    }

    /// Request `n` new nodes at the current time. Returns the time they
    /// will become ready.
    pub fn boot(&mut self, n: u32) -> u64 {
        let ready_at = self.clock_ms + self.spec.boot_ms;
        for _ in 0..n {
            self.nodes.push(Node {
                state: NodeState::Booting,
                booted_at: self.clock_ms,
                ready_at,
                retired_at: 0,
                busy: 0,
            });
        }
        self.boots += n as u64;
        ready_at
    }

    /// Transition nodes whose `ready_at` has arrived to `Ready`.
    /// Returns how many came up.
    pub fn activate_ready(&mut self) -> u32 {
        let now = self.clock_ms;
        let mut n = 0;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if node.state == NodeState::Booting && node.ready_at <= now {
                node.state = NodeState::Ready;
                n += 1;
                self.ready_node_count += 1;
                self.free_core_count += self.spec.cores;
                if i < self.scan_hint {
                    self.scan_hint = i;
                }
            }
        }
        if self.ready_node_count > self.peak_ready_nodes {
            self.peak_ready_nodes = self.ready_node_count;
        }
        n
    }

    /// Retire up to `n` *idle* ready nodes (busy nodes never retire —
    /// the policy can only stop paying for capacity it is not using).
    /// Returns how many actually retired.
    pub fn retire_idle(&mut self, n: u32) -> u32 {
        let now = self.clock_ms;
        let mut done = 0;
        // Retire from the high indices down: the packing cursor fills
        // low nodes first, so idle capacity concentrates at the top.
        for node in self.nodes.iter_mut().rev() {
            if done == n {
                break;
            }
            if node.state == NodeState::Ready && node.busy == 0 {
                node.state = NodeState::Retired;
                node.retired_at = now;
                done += 1;
                self.ready_node_count -= 1;
                self.free_core_count -= self.spec.cores;
            }
        }
        self.retires += done as u64;
        done
    }

    /// Claim one free core. Packing is lowest-index-first, so idle
    /// nodes concentrate at high indices and stay retireable. Amortised
    /// O(1): a counter short-circuits the full case and a cursor skips
    /// known-full prefixes.
    pub fn claim_core(&mut self) -> Option<usize> {
        if self.free_core_count == 0 {
            return None;
        }
        let mut i = self.scan_hint;
        loop {
            debug_assert!(i < self.nodes.len(), "free_core_count out of sync");
            let node = &mut self.nodes[i];
            if node.state == NodeState::Ready && node.busy < self.spec.cores {
                node.busy += 1;
                self.busy_core_count += 1;
                self.free_core_count -= 1;
                self.scan_hint = i;
                return Some(i);
            }
            i += 1;
        }
    }

    /// Release a previously claimed core on `node`.
    ///
    /// # Panics
    /// Panics if the node has no busy cores — a task finished on a core
    /// that was never claimed.
    pub fn release_core(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        assert!(n.busy > 0, "releasing an idle node's core");
        n.busy -= 1;
        self.busy_core_count -= 1;
        self.free_core_count += 1;
        if node < self.scan_hint {
            self.scan_hint = node;
        }
    }

    /// Nodes currently ready.
    pub fn ready_nodes(&self) -> u32 {
        self.ready_node_count
    }

    /// Nodes booting.
    pub fn booting_nodes(&self) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Booting)
            .count() as u32
    }

    /// Ready cores (busy + free).
    pub fn ready_cores(&self) -> u32 {
        self.ready_node_count * self.spec.cores
    }

    /// Busy cores.
    pub fn busy_cores(&self) -> u32 {
        self.busy_core_count
    }

    /// Free (ready, unclaimed) cores.
    pub fn free_cores(&self) -> u32 {
        self.free_core_count
    }

    /// Earliest pending `ready_at` among booting nodes.
    pub fn next_ready_at(&self) -> Option<u64> {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Booting)
            .map(|n| n.ready_at)
            .min()
    }

    /// Paid capacity so far, in core-milliseconds.
    pub fn capacity_core_ms(&self) -> u64 {
        self.capacity_core_ms
    }

    /// Used capacity so far, in core-milliseconds.
    pub fn busy_core_ms(&self) -> u64 {
        self.busy_core_ms
    }

    /// Boot requests served.
    pub fn boots(&self) -> u64 {
        self.boots
    }

    /// Nodes retired.
    pub fn retires(&self) -> u64 {
        self.retires
    }

    /// Highest simultaneous ready-node count observed.
    pub fn peak_ready_nodes(&self) -> u32 {
        self.peak_ready_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(cores: u32, boot_ms: u64) -> Cluster {
        Cluster::new(NodeSpec { cores, boot_ms }).unwrap()
    }

    #[test]
    fn boot_latency_gates_readiness() {
        let mut c = cluster(4, 1_000);
        let ready_at = c.boot(2);
        assert_eq!(ready_at, 1_000);
        assert_eq!(c.ready_cores(), 0);
        assert_eq!(c.booting_nodes(), 2);
        c.advance_to(999);
        assert_eq!(c.activate_ready(), 0);
        c.advance_to(1_000);
        assert_eq!(c.activate_ready(), 2);
        assert_eq!(c.ready_cores(), 8);
        assert_eq!(c.booting_nodes(), 0);
    }

    #[test]
    fn capacity_integral_counts_ready_time_only() {
        let mut c = cluster(2, 500);
        c.boot(1);
        c.advance_to(500);
        c.activate_ready();
        // 500 ms booting: no capacity accrued.
        assert_eq!(c.capacity_core_ms(), 0);
        c.advance_to(1_500);
        // 1000 ms ready × 2 cores.
        assert_eq!(c.capacity_core_ms(), 2_000);
        assert_eq!(c.busy_core_ms(), 0);
    }

    #[test]
    fn busy_integral_tracks_claims() {
        let mut c = cluster(2, 0);
        c.boot(1);
        c.activate_ready();
        let n = c.claim_core().unwrap();
        c.advance_to(100);
        c.release_core(n);
        c.advance_to(200);
        assert_eq!(c.busy_core_ms(), 100);
        assert_eq!(c.capacity_core_ms(), 400);
    }

    #[test]
    fn claim_packs_one_node_before_spilling() {
        let mut c = cluster(2, 0);
        c.boot(2);
        c.activate_ready();
        let a = c.claim_core().unwrap();
        // Second claim should land on the same node (pack it full).
        let b = c.claim_core().unwrap();
        assert_eq!(a, b);
        // Third claim spills to the other node.
        let d = c.claim_core().unwrap();
        assert_ne!(a, d);
        assert_eq!(c.free_cores(), 1);
        // Fourth fills the cluster; fifth fails.
        assert!(c.claim_core().is_some());
        assert!(c.claim_core().is_none());
        assert_eq!(c.free_cores(), 0);
    }

    #[test]
    fn only_idle_nodes_retire() {
        let mut c = cluster(1, 0);
        c.boot(3);
        c.activate_ready();
        let _busy = c.claim_core().unwrap();
        // Ask to retire all three: only the two idle ones go.
        assert_eq!(c.retire_idle(3), 2);
        assert_eq!(c.ready_nodes(), 1);
        assert_eq!(c.busy_cores(), 1);
        assert_eq!(c.retires(), 2);
    }

    #[test]
    fn peak_nodes_and_boot_counters() {
        let mut c = cluster(1, 0);
        c.boot(5);
        c.activate_ready();
        assert_eq!(c.peak_ready_nodes(), 5);
        c.retire_idle(4);
        assert_eq!(c.peak_ready_nodes(), 5); // peak is sticky
        assert_eq!(c.boots(), 5);
        c.boot(1);
        c.activate_ready();
        assert_eq!(c.boots(), 6);
        assert_eq!(c.ready_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn clock_must_be_monotone() {
        let mut c = cluster(1, 0);
        c.advance_to(10);
        c.advance_to(5);
    }

    #[test]
    #[should_panic(expected = "releasing an idle")]
    fn release_without_claim_panics() {
        let mut c = cluster(1, 0);
        c.boot(1);
        c.activate_ready();
        c.release_core(0);
    }

    #[test]
    fn zero_core_spec_rejected() {
        assert!(Cluster::new(NodeSpec {
            cores: 0,
            boot_ms: 0
        })
        .is_err());
    }

    #[test]
    fn next_ready_at_tracks_earliest_boot() {
        let mut c = cluster(1, 100);
        assert_eq!(c.next_ready_at(), None);
        c.boot(1);
        c.advance_to(50);
        c.boot(1);
        assert_eq!(c.next_ready_at(), Some(100));
        c.advance_to(100);
        c.activate_ready();
        assert_eq!(c.next_ready_at(), Some(150));
    }
}
