//! # riskpipe-cloud
//!
//! Discrete-event simulation of elastic cluster provisioning — the
//! paper's closing observation quantified: "One characteristic of the
//! reinsurance risk analytics problem is the sudden burst of data in
//! the pipeline. While in the first stage less than ten processors may
//! be sufficient …, in the second and third stages thousands or even
//! tens of thousands of processors need to be put together … The
//! elastic demand … makes cloud-based computing attractive."
//!
//! The E6 report derives *how many* processors each stage needs; this
//! crate answers the follow-on question — what that burst costs under
//! different provisioning strategies (experiment E10):
//!
//! * [`workload`] — the pipeline week as a job stream: daily stage-1
//!   refreshes, the Friday-night stage-2 roll-up burst, the dependent
//!   stage-3 DFA run, and business-hours ad-hoc queries.
//! * [`cluster`] — nodes with boot latency, plus paid/used core-time
//!   integrals.
//! * [`policy`] — fixed, reactive-autoscale and scheduled provisioning.
//! * [`sim`] — the deterministic event loop tying them together.
//!
//! ## Quickstart
//!
//! ```
//! use riskpipe_cloud::{pipeline_week, simulate, ReactivePolicy, SimConfig};
//!
//! let jobs = pipeline_week(&Default::default())?;
//! let mut policy = ReactivePolicy::new(2, 100);
//! let result = simulate(&jobs, &mut policy, &SimConfig::default())?;
//! assert!(result.all_complete());
//! // The elastic run pays only for what the burst actually used.
//! assert!(result.utilization() > 0.05);
//! # Ok::<(), riskpipe_types::RiskError>(())
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod policy;
mod proptests;
pub mod sim;
pub mod workload;

pub use cluster::{Cluster, NodeSpec};
pub use policy::{Action, FixedPolicy, Observation, Policy, ReactivePolicy, ScheduledPolicy};
pub use sim::{simulate, JobOutcome, SimConfig, SimResult};
pub use workload::{
    peak_deadline_demand, peak_parallel_demand, pipeline_week, total_work_core_ms, JobSpec,
    PipelineWeekSpec, Stage, DAY_MS, HOUR_MS, WEEK_MS,
};
