//! Provisioning policies: how many nodes to run, and when.
//!
//! The paper's argument — "the elastic demand for the storage of data,
//! data retrieval, data processing and data integration makes
//! cloud-based computing attractive" — is a comparison among exactly
//! these policies: a fixed cluster sized for the average starves the
//! burst; a fixed cluster sized for the burst idles all week; an
//! elastic policy follows the demand curve. Experiment E10 runs all
//! three against the same simulated week.

/// What a policy sees when consulted.
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// Current simulated time (ms).
    pub now_ms: u64,
    /// Tasks waiting for a core.
    pub queued_tasks: u64,
    /// Tasks currently executing.
    pub running_tasks: u64,
    /// Ready nodes.
    pub ready_nodes: u32,
    /// Nodes still booting.
    pub booting_nodes: u32,
    /// Cores per node (cluster shape).
    pub cores_per_node: u32,
    /// Free (ready, unclaimed) cores.
    pub free_cores: u32,
}

/// What a policy decides.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Action {
    /// Nodes to boot now.
    pub boot: u32,
    /// Idle nodes to retire now.
    pub retire_idle: u32,
}

impl Action {
    /// Do nothing.
    pub const NONE: Action = Action {
        boot: 0,
        retire_idle: 0,
    };
}

/// A provisioning policy. Consulted at time zero, on every job
/// arrival/completion, and on a periodic tick.
pub trait Policy {
    /// Short name for reports.
    fn name(&self) -> &str;
    /// Decide an action for the observed state.
    fn act(&mut self, obs: &Observation) -> Action;
}

/// A fixed-size cluster: boot `nodes` at time zero, never change.
#[derive(Debug, Clone)]
pub struct FixedPolicy {
    /// Cluster size in nodes.
    pub nodes: u32,
    booted: bool,
    label: String,
}

impl FixedPolicy {
    /// A fixed cluster of `nodes` nodes.
    pub fn new(nodes: u32) -> Self {
        Self {
            nodes,
            booted: false,
            label: format!("fixed-{nodes}"),
        }
    }
}

impl Policy for FixedPolicy {
    fn name(&self) -> &str {
        &self.label
    }

    fn act(&mut self, _obs: &Observation) -> Action {
        if self.booted {
            Action::NONE
        } else {
            self.booted = true;
            Action {
                boot: self.nodes,
                retire_idle: 0,
            }
        }
    }
}

/// Reactive autoscaling: boot when the queue outgrows the cores on
/// hand, retire idle nodes after the queue drains. The boot step is
/// proportional to the backlog, so a sudden burst provisions in one or
/// two decisions rather than creeping up.
#[derive(Debug, Clone)]
pub struct ReactivePolicy {
    /// Keep at least this many nodes.
    pub min_nodes: u32,
    /// Never exceed this many nodes.
    pub max_nodes: u32,
    /// Target: queued tasks per provisioned core before scaling up.
    pub queue_per_core: f64,
    /// Minimum ms between scale-up decisions.
    pub cooldown_ms: u64,
    /// Retire idle capacity only after the queue has been empty this
    /// long (hysteresis against thrash).
    pub idle_grace_ms: u64,
    last_scale_up: Option<u64>,
    idle_since: Option<u64>,
    started: bool,
}

impl ReactivePolicy {
    /// A reactive policy with the given bounds and a 5-minute cooldown
    /// / 10-minute idle grace.
    pub fn new(min_nodes: u32, max_nodes: u32) -> Self {
        Self {
            min_nodes,
            max_nodes,
            queue_per_core: 2.0,
            cooldown_ms: 5 * 60_000,
            idle_grace_ms: 10 * 60_000,
            last_scale_up: None,
            idle_since: None,
            started: false,
        }
    }
}

impl Policy for ReactivePolicy {
    fn name(&self) -> &str {
        "reactive"
    }

    fn act(&mut self, obs: &Observation) -> Action {
        let mut action = Action::NONE;
        let provisioned = obs.ready_nodes + obs.booting_nodes;
        if !self.started {
            self.started = true;
            action.boot = self.min_nodes.saturating_sub(provisioned);
        }
        let provisioned_cores =
            (provisioned as u64 + action.boot as u64) * obs.cores_per_node as u64;

        // Scale up: backlog beyond what provisioned cores will absorb.
        let backlog = obs.queued_tasks;
        let threshold = (provisioned_cores as f64 * self.queue_per_core) as u64;
        let cooled = self
            .last_scale_up
            .map(|t| obs.now_ms >= t + self.cooldown_ms)
            .unwrap_or(true);
        if backlog > threshold && cooled {
            // Size the step to the backlog: enough nodes that the queue
            // per core falls to the target.
            let want_cores = (backlog as f64 / self.queue_per_core).ceil() as u64;
            let want_nodes = want_cores.div_ceil(obs.cores_per_node as u64) as u32;
            let target = want_nodes.clamp(self.min_nodes, self.max_nodes);
            let grow = target.saturating_sub(provisioned + action.boot);
            if grow > 0 {
                action.boot += grow;
                self.last_scale_up = Some(obs.now_ms);
            }
        }

        // Scale down: nothing queued or running beyond the floor.
        if obs.queued_tasks == 0 && obs.free_cores > 0 {
            let since = *self.idle_since.get_or_insert(obs.now_ms);
            if obs.now_ms >= since + self.idle_grace_ms {
                let idle_nodes = obs.free_cores / obs.cores_per_node;
                let floor = self.min_nodes;
                let above = (obs.ready_nodes + obs.booting_nodes).saturating_sub(floor);
                action.retire_idle = idle_nodes.min(above);
            }
        } else {
            self.idle_since = None;
        }
        action
    }
}

/// Scheduled (calendar) scaling: a target node count per time window.
/// The operator knows Friday night is roll-up night and provisions
/// ahead of the burst — trading foresight for reaction lag.
#[derive(Debug, Clone)]
pub struct ScheduledPolicy {
    /// `(start_ms, end_ms, nodes)` windows; outside every window the
    /// target is `base_nodes`. Windows must not overlap.
    pub windows: Vec<(u64, u64, u32)>,
    /// Node count outside all windows.
    pub base_nodes: u32,
}

impl ScheduledPolicy {
    /// Target nodes at `now`.
    pub fn target_at(&self, now_ms: u64) -> u32 {
        for &(s, e, n) in &self.windows {
            if now_ms >= s && now_ms < e {
                return n;
            }
        }
        self.base_nodes
    }
}

impl Policy for ScheduledPolicy {
    fn name(&self) -> &str {
        "scheduled"
    }

    fn act(&mut self, obs: &Observation) -> Action {
        let target = self.target_at(obs.now_ms);
        let provisioned = obs.ready_nodes + obs.booting_nodes;
        if provisioned < target {
            Action {
                boot: target - provisioned,
                retire_idle: 0,
            }
        } else if provisioned > target {
            Action {
                boot: 0,
                retire_idle: provisioned - target,
            }
        } else {
            Action::NONE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(now_ms: u64, queued: u64, ready_nodes: u32, free_cores: u32) -> Observation {
        Observation {
            now_ms,
            queued_tasks: queued,
            running_tasks: 0,
            ready_nodes,
            booting_nodes: 0,
            cores_per_node: 4,
            free_cores,
        }
    }

    #[test]
    fn fixed_boots_once() {
        let mut p = FixedPolicy::new(10);
        assert_eq!(p.act(&obs(0, 0, 0, 0)).boot, 10);
        assert_eq!(p.act(&obs(100, 1_000, 10, 0)), Action::NONE);
        assert_eq!(p.name(), "fixed-10");
    }

    #[test]
    fn reactive_starts_at_floor() {
        let mut p = ReactivePolicy::new(2, 100);
        let a = p.act(&obs(0, 0, 0, 0));
        assert_eq!(a.boot, 2);
    }

    #[test]
    fn reactive_scales_with_backlog() {
        let mut p = ReactivePolicy::new(1, 1000);
        p.act(&obs(0, 0, 0, 0)); // floor boot
                                 // Huge backlog: 8000 queued on 1 node × 4 cores at target 2/core
                                 // wants 1000 cores → 250 nodes.
        let a = p.act(&obs(1, 8_000, 1, 0));
        assert_eq!(a.boot, 999); // 1000 target − 1 provisioned
    }

    #[test]
    fn reactive_respects_max_and_cooldown() {
        let mut p = ReactivePolicy::new(1, 10);
        p.act(&obs(0, 0, 0, 0));
        let a = p.act(&obs(1, 100_000, 1, 0));
        assert_eq!(a.boot, 9); // capped at max_nodes
                               // Immediately after: cooldown blocks further scale-up.
        let a = p.act(&obs(2, 100_000, 10, 0));
        assert_eq!(a.boot, 0);
        // After the cooldown it may fire again (but already at max).
        let a = p.act(&obs(10 * 60_000, 100_000, 10, 0));
        assert_eq!(a.boot, 0);
    }

    #[test]
    fn reactive_retires_after_grace() {
        let mut p = ReactivePolicy::new(1, 100);
        p.act(&obs(0, 0, 0, 0));
        // Queue empty, 5 idle nodes — but grace not elapsed.
        let a = p.act(&obs(1_000, 0, 5, 20));
        assert_eq!(a.retire_idle, 0);
        // Still idle after the grace window: retire down to the floor.
        let a = p.act(&obs(1_000 + 10 * 60_000, 0, 5, 20));
        assert_eq!(a.retire_idle, 4);
    }

    #[test]
    fn reactive_busy_resets_idle_clock() {
        let mut p = ReactivePolicy::new(1, 100);
        p.act(&obs(0, 0, 0, 0));
        p.act(&obs(1_000, 0, 5, 20)); // idle clock starts
        p.act(&obs(2_000, 7, 5, 0)); // work arrives: clock resets
        let a = p.act(&obs(1_000 + 10 * 60_000, 0, 5, 20));
        assert_eq!(a.retire_idle, 0, "grace must restart after busy spell");
    }

    #[test]
    fn scheduled_follows_windows() {
        let mut p = ScheduledPolicy {
            windows: vec![(100, 200, 50)],
            base_nodes: 2,
        };
        assert_eq!(p.target_at(0), 2);
        assert_eq!(p.target_at(150), 50);
        assert_eq!(p.target_at(200), 2);
        let a = p.act(&obs(0, 0, 0, 0));
        assert_eq!(a.boot, 2);
        let a = p.act(&obs(150, 0, 2, 8));
        assert_eq!(a.boot, 48);
        let a = p.act(&obs(250, 0, 50, 200));
        assert_eq!(a.retire_idle, 48);
        assert_eq!(p.name(), "scheduled");
    }
}
