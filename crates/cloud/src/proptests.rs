//! Property tests over the discrete-event simulator's invariants.

#![cfg(test)]

use crate::cluster::NodeSpec;
use crate::policy::{FixedPolicy, ReactivePolicy};
use crate::sim::{simulate, SimConfig};
use crate::workload::{JobSpec, Stage};
use proptest::prelude::*;

fn any_job(max_arrival: u64) -> impl Strategy<Value = JobSpec> {
    (
        0..max_arrival,
        1u32..40,
        1u64..2_000,
        0u32..6,
        prop::option::of(1u64..100_000),
    )
        .prop_map(|(arrival, tasks, task_ms, max_par, deadline)| JobSpec {
            name: format!("j{arrival}-{tasks}"),
            stage: Stage::AdHoc,
            arrival_ms: arrival,
            tasks,
            task_ms,
            max_parallel: max_par,
            deadline_ms: deadline,
            after: None,
        })
}

fn any_workload() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(any_job(50_000), 0..12)
}

fn config(cores: u32, boot_ms: u64) -> SimConfig {
    SimConfig {
        node: NodeSpec { cores, boot_ms },
        tick_ms: 1_000,
        horizon_ms: 200_000,
        max_sim_ms: 10_000_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn work_is_conserved_and_capacity_never_oversubscribed(
        jobs in any_workload(),
        cores in 1u32..8,
        nodes in 1u32..6,
        boot in 0u64..5_000,
    ) {
        let cfg = config(cores, boot);
        let mut p = FixedPolicy::new(nodes);
        let r = simulate(&jobs, &mut p, &cfg).unwrap();
        // With at least one node every job eventually completes.
        prop_assert!(r.all_complete());
        let total: u64 = jobs.iter().map(|j| j.work_core_ms()).sum();
        prop_assert_eq!(r.busy_core_ms, total);
        prop_assert!(r.capacity_core_ms >= r.busy_core_ms);
        prop_assert!(r.utilization() <= 1.0 + 1e-12);
    }

    #[test]
    fn outcomes_are_internally_consistent(jobs in any_workload()) {
        let cfg = config(4, 100);
        let mut p = FixedPolicy::new(2);
        let r = simulate(&jobs, &mut p, &cfg).unwrap();
        for (o, j) in r.jobs.iter().zip(jobs.iter()) {
            // Starts never precede arrival (or node readiness).
            if let Some(s) = o.first_start_ms {
                prop_assert!(s >= o.arrival_ms);
                prop_assert!(s >= cfg.node.boot_ms);
            }
            // Completion implies a start, and orders correctly.
            if let Some(c) = o.completed_ms {
                let s = o.first_start_ms.expect("completed without starting");
                // A job needs at least one full task after first start.
                prop_assert!(c >= s + j.task_ms);
            }
            // deadline_met agrees with the raw timestamps.
            match (o.deadline_abs_ms, o.completed_ms, o.deadline_met()) {
                (None, _, met) => prop_assert!(met.is_none()),
                (Some(d), Some(c), Some(met)) => prop_assert_eq!(met, c <= d),
                (Some(_), None, Some(met)) => prop_assert!(!met),
                other => prop_assert!(false, "inconsistent outcome {other:?}"),
            }
        }
    }

    #[test]
    fn simulation_is_deterministic(jobs in any_workload(), nodes in 1u32..5) {
        let cfg = config(2, 500);
        let run = || {
            let mut p = ReactivePolicy::new(1, nodes.max(1));
            simulate(&jobs, &mut p, &cfg).unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.capacity_core_ms, b.capacity_core_ms);
        prop_assert_eq!(a.busy_core_ms, b.busy_core_ms);
        prop_assert_eq!(a.boots, b.boots);
        prop_assert_eq!(a.retires, b.retires);
        for (x, y) in a.jobs.iter().zip(b.jobs.iter()) {
            prop_assert_eq!(x.first_start_ms, y.first_start_ms);
            prop_assert_eq!(x.completed_ms, y.completed_ms);
        }
    }

    #[test]
    fn single_job_makespan_matches_closed_form(
        tasks in 1u32..200,
        task_ms in 1u64..1_000,
        cores in 1u32..16,
    ) {
        // One job, one node, no boot lag, unlimited per-job
        // parallelism: completion = ceil(tasks/cores) · task_ms.
        let jobs = vec![JobSpec {
            name: "solo".into(),
            stage: Stage::AdHoc,
            arrival_ms: 0,
            tasks,
            task_ms,
            max_parallel: 0,
            deadline_ms: None,
            after: None,
        }];
        let cfg = config(cores, 0);
        let mut p = FixedPolicy::new(1);
        let r = simulate(&jobs, &mut p, &cfg).unwrap();
        let waves = (tasks as u64).div_ceil(cores as u64);
        prop_assert_eq!(r.jobs[0].completed_ms, Some(waves * task_ms));
    }

    #[test]
    fn dependencies_respect_completion_order(
        a_tasks in 1u32..20,
        b_tasks in 1u32..20,
        task_ms in 1u64..500,
    ) {
        let a = JobSpec {
            name: "a".into(),
            stage: Stage::AdHoc,
            arrival_ms: 0,
            tasks: a_tasks,
            task_ms,
            max_parallel: 0,
            deadline_ms: None,
            after: None,
        };
        let b = JobSpec {
            name: "b".into(),
            stage: Stage::AdHoc,
            arrival_ms: 0,
            tasks: b_tasks,
            task_ms,
            max_parallel: 0,
            deadline_ms: None,
            after: Some(0),
        };
        let cfg = config(4, 0);
        let mut p = FixedPolicy::new(2);
        let r = simulate(&[a, b], &mut p, &cfg).unwrap();
        let a_done = r.jobs[0].completed_ms.unwrap();
        let b_start = r.jobs[1].first_start_ms.unwrap();
        prop_assert!(b_start >= a_done, "dependent started before dependency finished");
    }
}
