//! Workloads: the pipeline's bursty week as a job stream.
//!
//! The paper's elasticity observation is about *shape over time*: the
//! stage-1 catastrophe models trickle along all week on a handful of
//! processors, then the weekly portfolio roll-up (stage 2) and the DFA
//! consolidation that feeds on it (stage 3) demand thousands of cores
//! for a few hours. [`pipeline_week`] reproduces that shape, with
//! work sizes derived from the same per-stage arithmetic as the E6
//! elasticity model.

use riskpipe_types::rng::{Rng64, SplitMix64};
use riskpipe_types::{RiskError, RiskResult};

/// Milliseconds in one hour.
pub const HOUR_MS: u64 = 3_600_000;
/// Milliseconds in one day.
pub const DAY_MS: u64 = 24 * HOUR_MS;
/// Milliseconds in one week.
pub const WEEK_MS: u64 = 7 * DAY_MS;

/// Which pipeline stage a job belongs to (reporting only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage 1: risk modelling (ELT refresh).
    RiskModelling,
    /// Stage 2: portfolio risk management (aggregate analysis).
    PortfolioRollup,
    /// Stage 3: dynamic financial analysis.
    Dfa,
    /// Interactive analyst queries (real-time pricing, drill-downs).
    AdHoc,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stage::RiskModelling => "stage-1",
            Stage::PortfolioRollup => "stage-2",
            Stage::Dfa => "stage-3",
            Stage::AdHoc => "ad-hoc",
        };
        f.write_str(s)
    }
}

/// One job: a bag of identical single-core tasks (trials and
/// event-exposure pairs are embarrassingly parallel, so every pipeline
/// computation decomposes this way).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display name.
    pub name: String,
    /// Pipeline stage.
    pub stage: Stage,
    /// Arrival time (ms since simulation start).
    pub arrival_ms: u64,
    /// Number of tasks.
    pub tasks: u32,
    /// Duration of each task on one core (ms).
    pub task_ms: u64,
    /// Cap on simultaneously running tasks (0 = unlimited) — models
    /// the non-parallelisable fraction / coordination limits.
    pub max_parallel: u32,
    /// Completion deadline relative to arrival (ms), if any.
    pub deadline_ms: Option<u64>,
    /// Index of a job that must complete before this one starts
    /// (stage 3 feeds on stage 2's YLTs).
    pub after: Option<usize>,
}

impl JobSpec {
    /// Total work in core-milliseconds.
    pub fn work_core_ms(&self) -> u64 {
        self.tasks as u64 * self.task_ms
    }

    /// Validate the spec (non-empty, dependency index in range handled
    /// by [`validate_workload`]).
    pub fn validate(&self) -> RiskResult<()> {
        if self.tasks == 0 {
            return Err(RiskError::invalid(format!(
                "job '{}' has zero tasks",
                self.name
            )));
        }
        if self.task_ms == 0 {
            return Err(RiskError::invalid(format!(
                "job '{}' has zero-length tasks",
                self.name
            )));
        }
        Ok(())
    }
}

/// Validate a whole workload: every job valid, dependencies acyclic
/// (must point backwards) and in range.
pub fn validate_workload(jobs: &[JobSpec]) -> RiskResult<()> {
    for (i, j) in jobs.iter().enumerate() {
        j.validate()?;
        if let Some(dep) = j.after {
            if dep >= i {
                return Err(RiskError::invalid(format!(
                    "job '{}' depends on job {dep} which is not earlier in the list",
                    j.name
                )));
            }
        }
    }
    Ok(())
}

/// Parameters of the simulated pipeline week.
#[derive(Debug, Clone, Copy)]
pub struct PipelineWeekSpec {
    /// Core-hours of one day's stage-1 refresh (paper: fits on <10
    /// processors at the weekly cadence).
    pub stage1_core_hours_per_day: f64,
    /// Core-hours of the weekly stage-2 portfolio roll-up — the burst.
    pub stage2_core_hours: f64,
    /// Core-hours of the stage-3 DFA consolidation (runs after stage 2).
    pub stage3_core_hours: f64,
    /// Stage-2 deadline in hours from its arrival (the reporting
    /// window).
    pub rollup_deadline_hours: f64,
    /// Ad-hoc analyst queries per business day.
    pub adhoc_per_day: u32,
    /// Core-minutes per ad-hoc query (real-time pricing scale).
    pub adhoc_core_minutes: f64,
    /// Task granularity (ms per task).
    pub task_ms: u64,
    /// RNG seed for ad-hoc arrival jitter.
    pub seed: u64,
}

impl Default for PipelineWeekSpec {
    fn default() -> Self {
        Self {
            // Paper-shaped defaults: stage 1 a few core-hours a day;
            // stage 2 three orders of magnitude more in one burst.
            stage1_core_hours_per_day: 16.0,
            stage2_core_hours: 4_096.0,
            stage3_core_hours: 512.0,
            rollup_deadline_hours: 8.0,
            adhoc_per_day: 24,
            adhoc_core_minutes: 8.0,
            task_ms: 60_000,
            seed: 2012,
        }
    }
}

/// Generate one simulated week of pipeline jobs.
///
/// Layout: a stage-1 refresh arrives at 02:00 every day; the stage-2
/// roll-up arrives Friday 18:00 with the reporting deadline; stage 3
/// depends on stage 2; ad-hoc queries arrive during business hours
/// (09:00–17:00) Monday–Friday with per-query deadlines of 15 minutes.
pub fn pipeline_week(spec: &PipelineWeekSpec) -> RiskResult<Vec<JobSpec>> {
    if spec.task_ms == 0 {
        return Err(RiskError::invalid("task_ms must be positive"));
    }
    let mut jobs = Vec::new();
    let tasks_for = |core_hours: f64| -> u32 {
        ((core_hours * HOUR_MS as f64) / spec.task_ms as f64)
            .ceil()
            .max(1.0) as u32
    };

    // Stage 1: daily refresh at 02:00.
    for day in 0..7u64 {
        jobs.push(JobSpec {
            name: format!("stage1-refresh-d{day}"),
            stage: Stage::RiskModelling,
            arrival_ms: day * DAY_MS + 2 * HOUR_MS,
            tasks: tasks_for(spec.stage1_core_hours_per_day),
            task_ms: spec.task_ms,
            // The paper: stage 1 runs on fewer than ten processors.
            max_parallel: 8,
            deadline_ms: Some(22 * HOUR_MS), // done before next refresh
            after: None,
        });
    }

    // Stage 2: the weekly burst, Friday (day 4) 18:00.
    let stage2_idx = jobs.len();
    jobs.push(JobSpec {
        name: "stage2-portfolio-rollup".into(),
        stage: Stage::PortfolioRollup,
        arrival_ms: 4 * DAY_MS + 18 * HOUR_MS,
        tasks: tasks_for(spec.stage2_core_hours),
        task_ms: spec.task_ms,
        max_parallel: 0, // trials: embarrassingly parallel
        deadline_ms: Some((spec.rollup_deadline_hours * HOUR_MS as f64) as u64),
        after: None,
    });

    // Stage 3: DFA, gated on stage 2, same reporting deadline window.
    jobs.push(JobSpec {
        name: "stage3-dfa-consolidation".into(),
        stage: Stage::Dfa,
        arrival_ms: 4 * DAY_MS + 18 * HOUR_MS,
        tasks: tasks_for(spec.stage3_core_hours),
        task_ms: spec.task_ms,
        max_parallel: 0,
        deadline_ms: Some((spec.rollup_deadline_hours * HOUR_MS as f64) as u64 + 4 * HOUR_MS),
        after: Some(stage2_idx),
    });

    // Ad-hoc queries: business hours Monday–Friday.
    let mut rng = SplitMix64::new(spec.seed);
    let adhoc_tasks = ((spec.adhoc_core_minutes * 60_000.0) / spec.task_ms as f64)
        .ceil()
        .max(1.0) as u32;
    for day in 0..5u64 {
        for q in 0..spec.adhoc_per_day {
            let offset_ms = 9 * HOUR_MS + rng.next_u64() % (8 * HOUR_MS);
            jobs.push(JobSpec {
                name: format!("adhoc-d{day}-q{q}"),
                stage: Stage::AdHoc,
                arrival_ms: day * DAY_MS + offset_ms,
                tasks: adhoc_tasks,
                task_ms: spec.task_ms,
                max_parallel: 0,
                deadline_ms: Some(15 * 60_000),
                after: None,
            });
        }
    }

    // Keep arrival order stable for readability of reports (not
    // required by the simulator, which orders by arrival internally;
    // dependencies must still point backwards, which sorting by
    // arrival preserves because stage 3 arrives with stage 2 but is
    // listed after it and the sort is stable).
    validate_workload(&jobs)?;
    Ok(jobs)
}

/// Total work across jobs, in core-milliseconds.
pub fn total_work_core_ms(jobs: &[JobSpec]) -> u64 {
    jobs.iter().map(|j| j.work_core_ms()).sum()
}

/// Peak concurrent demand in cores if every job ran the moment it
/// arrived with unlimited resources (an upper bound used to size the
/// fixed-peak baseline).
pub fn peak_parallel_demand(jobs: &[JobSpec]) -> u64 {
    // Tasks of a job would all run at arrival for task_ms; sweep over
    // arrival edges.
    let mut edges: Vec<(u64, i64)> = Vec::with_capacity(jobs.len() * 2);
    for j in jobs {
        let par = if j.max_parallel == 0 {
            j.tasks as i64
        } else {
            j.max_parallel.min(j.tasks) as i64
        };
        edges.push((j.arrival_ms, par));
        // A lower bound on duration: ceil(tasks/par) rounds of task_ms.
        let rounds = (j.tasks as u64).div_ceil(par as u64);
        edges.push((j.arrival_ms + rounds * j.task_ms, -par));
    }
    edges.sort_unstable();
    let mut cur = 0i64;
    let mut peak = 0i64;
    for (_, d) in edges {
        cur += d;
        peak = peak.max(cur);
    }
    peak.max(0) as u64
}

/// Peak *deadline* demand in cores: the sustained rate each job needs
/// to finish inside its deadline (`work ÷ deadline`), swept over time
/// and summed where the windows overlap. This is the honest size for a
/// deadline-meeting fixed cluster — [`peak_parallel_demand`] instead
/// answers "run everything the instant it arrives", which over-sizes
/// by orders of magnitude for bursts of short tasks.
///
/// Jobs without a deadline contribute their work spread to
/// `default_window_ms`.
pub fn peak_deadline_demand(jobs: &[JobSpec], default_window_ms: u64) -> u64 {
    let mut edges: Vec<(u64, f64)> = Vec::with_capacity(jobs.len() * 2);
    for j in jobs {
        let window = j.deadline_ms.unwrap_or(default_window_ms).max(1);
        let rate = j.work_core_ms() as f64 / window as f64;
        edges.push((j.arrival_ms, rate));
        edges.push((j.arrival_ms + window, -rate));
    }
    edges.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut cur = 0.0f64;
    let mut peak = 0.0f64;
    for (_, d) in edges {
        cur += d;
        peak = peak.max(cur);
    }
    peak.ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_week_shape() {
        let jobs = pipeline_week(&PipelineWeekSpec::default()).unwrap();
        let s1 = jobs
            .iter()
            .filter(|j| j.stage == Stage::RiskModelling)
            .count();
        let s2 = jobs
            .iter()
            .filter(|j| j.stage == Stage::PortfolioRollup)
            .count();
        let s3 = jobs.iter().filter(|j| j.stage == Stage::Dfa).count();
        let adhoc = jobs.iter().filter(|j| j.stage == Stage::AdHoc).count();
        assert_eq!(s1, 7);
        assert_eq!(s2, 1);
        assert_eq!(s3, 1);
        assert_eq!(adhoc, 5 * 24);
        // All arrivals inside the week.
        assert!(jobs.iter().all(|j| j.arrival_ms < WEEK_MS));
    }

    #[test]
    fn stage2_dominates_work() {
        let spec = PipelineWeekSpec::default();
        let jobs = pipeline_week(&spec).unwrap();
        let work = |s: Stage| -> u64 {
            jobs.iter()
                .filter(|j| j.stage == s)
                .map(|j| j.work_core_ms())
                .sum()
        };
        let s1 = work(Stage::RiskModelling);
        let s2 = work(Stage::PortfolioRollup);
        // The burst: stage 2 is well over an order of magnitude beyond
        // a *week* of stage 1.
        assert!(s2 > 10 * s1, "s2 {s2} vs s1-week {s1}");
    }

    #[test]
    fn stage3_depends_on_stage2() {
        let jobs = pipeline_week(&PipelineWeekSpec::default()).unwrap();
        let s2 = jobs
            .iter()
            .position(|j| j.stage == Stage::PortfolioRollup)
            .unwrap();
        let s3 = jobs.iter().find(|j| j.stage == Stage::Dfa).unwrap();
        assert_eq!(s3.after, Some(s2));
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let a = pipeline_week(&PipelineWeekSpec::default()).unwrap();
        let b = pipeline_week(&PipelineWeekSpec::default()).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.arrival_ms, y.arrival_ms);
            assert_eq!(x.tasks, y.tasks);
        }
        let c = pipeline_week(&PipelineWeekSpec {
            seed: 999,
            ..Default::default()
        })
        .unwrap();
        let moved = a
            .iter()
            .zip(c.iter())
            .any(|(x, y)| x.arrival_ms != y.arrival_ms);
        assert!(moved, "different seed should jitter ad-hoc arrivals");
    }

    #[test]
    fn validation_rejects_bad_jobs() {
        let mut j = JobSpec {
            name: "x".into(),
            stage: Stage::AdHoc,
            arrival_ms: 0,
            tasks: 0,
            task_ms: 1,
            max_parallel: 0,
            deadline_ms: None,
            after: None,
        };
        assert!(j.validate().is_err());
        j.tasks = 1;
        j.task_ms = 0;
        assert!(j.validate().is_err());
        j.task_ms = 1;
        assert!(j.validate().is_ok());
        // Forward dependency rejected.
        let jobs = vec![JobSpec {
            after: Some(0),
            ..j.clone()
        }];
        assert!(validate_workload(&jobs).is_err());
    }

    #[test]
    fn work_and_peak_accounting() {
        let jobs = vec![
            JobSpec {
                name: "a".into(),
                stage: Stage::AdHoc,
                arrival_ms: 0,
                tasks: 10,
                task_ms: 100,
                max_parallel: 0,
                deadline_ms: None,
                after: None,
            },
            JobSpec {
                name: "b".into(),
                stage: Stage::AdHoc,
                arrival_ms: 50,
                tasks: 4,
                task_ms: 100,
                max_parallel: 2,
                deadline_ms: None,
                after: None,
            },
        ];
        assert_eq!(total_work_core_ms(&jobs), 10 * 100 + 4 * 100);
        // a runs 10-wide [0,100); b runs 2-wide [50,250) → peak 12.
        assert_eq!(peak_parallel_demand(&jobs), 12);
    }

    #[test]
    fn deadline_demand_is_rate_based() {
        let jobs = vec![
            JobSpec {
                name: "burst".into(),
                stage: Stage::PortfolioRollup,
                arrival_ms: 0,
                tasks: 1_000,
                task_ms: 1_000,
                max_parallel: 0,
                deadline_ms: Some(10_000), // 1000 core-s over 10 s → 100 cores
                after: None,
            },
            JobSpec {
                name: "background".into(),
                stage: Stage::RiskModelling,
                arrival_ms: 5_000, // overlaps the burst window
                tasks: 10,
                task_ms: 1_000,
                max_parallel: 0,
                deadline_ms: Some(1_000), // 10 core-s over 1 s → 10 cores
                after: None,
            },
        ];
        assert_eq!(peak_deadline_demand(&jobs, WEEK_MS), 110);
        // Far smaller than the run-everything-now bound.
        assert!(peak_deadline_demand(&jobs, WEEK_MS) < peak_parallel_demand(&jobs));
    }

    #[test]
    fn deadline_demand_uses_default_window_when_absent() {
        let jobs = vec![JobSpec {
            name: "lazy".into(),
            stage: Stage::AdHoc,
            arrival_ms: 0,
            tasks: 100,
            task_ms: 1_000,
            max_parallel: 0,
            deadline_ms: None,
            after: None,
        }];
        // 100 core-s over a 50 s default window → 2 cores.
        assert_eq!(peak_deadline_demand(&jobs, 50_000), 2);
    }

    #[test]
    fn zero_task_ms_rejected() {
        assert!(pipeline_week(&PipelineWeekSpec {
            task_ms: 0,
            ..Default::default()
        })
        .is_err());
    }
}
