//! Heap files: unordered pages of rows, with page-I/O accounting.
//!
//! The counters are the point: every page touched — sequentially by a
//! scan or randomly by an index lookup — is tallied, which is exactly
//! the quantity the paper's scan-vs-random-access argument is about.

use crate::page::Page;
use crate::value::{Row, Schema};
use riskpipe_types::{RiskError, RiskResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// Physical address of a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    /// Page number.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

/// A heap file of slotted pages.
pub struct HeapFile {
    schema: Schema,
    pages: Vec<Page>,
    rows: u64,
    pages_read: AtomicU64,
    /// Page last touched by an access — re-touching it is "cached" and
    /// not recounted (a 1-page cache; generous to the random-access
    /// side, which is the paper's opponent).
    last_page: AtomicU64,
}

impl HeapFile {
    /// A new empty heap with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            pages: vec![Page::new()],
            rows: 0,
            pages_read: AtomicU64::new(0),
            last_page: AtomicU64::new(u64::MAX),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of pages.
    pub fn pages(&self) -> usize {
        self.pages.len()
    }

    /// Insert a row, returning its address.
    pub fn insert(&mut self, row: &Row) -> RiskResult<RowId> {
        let encoded = self.schema.encode_row(row)?;
        let page_idx = self.pages.len() - 1;
        if let Some(slot) = self.pages[page_idx].insert(&encoded) {
            self.rows += 1;
            return Ok(RowId {
                page: page_idx as u32,
                slot,
            });
        }
        // Page full: open a new one.
        let mut page = Page::new();
        let slot = page
            .insert(&encoded)
            .ok_or_else(|| RiskError::invalid("row larger than a page"))?;
        self.pages.push(page);
        self.rows += 1;
        Ok(RowId {
            page: (self.pages.len() - 1) as u32,
            slot,
        })
    }

    #[inline]
    fn touch(&self, page: u32) {
        if self.last_page.swap(page as u64, Ordering::Relaxed) != page as u64 {
            self.pages_read.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fetch one row by address (random access; counts a page read
    /// unless it hits the 1-page cache).
    pub fn fetch(&self, id: RowId) -> RiskResult<Row> {
        let page = self
            .pages
            .get(id.page as usize)
            .ok_or_else(|| RiskError::NotFound(format!("page {}", id.page)))?;
        self.touch(id.page);
        let data = page
            .get(id.slot)
            .ok_or_else(|| RiskError::NotFound(format!("slot {:?}", id)))?;
        self.schema.decode_row(data)
    }

    /// Sequentially scan every row (counts each page once).
    pub fn scan(&self) -> impl Iterator<Item = (RowId, Row)> + '_ {
        self.pages.iter().enumerate().flat_map(move |(pi, page)| {
            self.touch(pi as u32);
            page.iter().enumerate().map(move |(slot, data)| {
                (
                    RowId {
                        page: pi as u32,
                        slot: slot as u16,
                    },
                    self.schema.decode_row(data).expect("stored rows decode"),
                )
            })
        })
    }

    /// Pages read so far (scan + random access).
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Reset the I/O counters (between experiment arms).
    pub fn reset_io_counters(&self) {
        self.pages_read.store(0, Ordering::Relaxed);
        self.last_page.store(u64::MAX, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColumnType, Value};

    fn schema() -> Schema {
        Schema::new(vec![("trial", ColumnType::U32), ("loss", ColumnType::F64)])
    }

    fn row(t: u32, l: f64) -> Row {
        vec![Value::U32(t), Value::F64(l)]
    }

    #[test]
    fn insert_fetch_round_trip() {
        let mut h = HeapFile::new(schema());
        let id = h.insert(&row(3, 1.5)).unwrap();
        assert_eq!(h.fetch(id).unwrap(), row(3, 1.5));
        assert_eq!(h.rows(), 1);
    }

    #[test]
    fn spills_to_multiple_pages() {
        let mut h = HeapFile::new(schema());
        // 12-byte rows + 4-byte slots → ~512 rows/page.
        for i in 0..2_000u32 {
            h.insert(&row(i, i as f64)).unwrap();
        }
        assert!(h.pages() > 1, "expected multiple pages, got {}", h.pages());
        // All rows retrievable via scan.
        let scanned: Vec<(RowId, Row)> = h.scan().collect();
        assert_eq!(scanned.len(), 2_000);
        for (i, (_, r)) in scanned.iter().enumerate() {
            assert_eq!(r[0].as_u32(), i as u32);
        }
    }

    #[test]
    fn scan_counts_each_page_once() {
        let mut h = HeapFile::new(schema());
        for i in 0..5_000u32 {
            h.insert(&row(i, 0.0)).unwrap();
        }
        h.reset_io_counters();
        let _: Vec<_> = h.scan().collect();
        assert_eq!(h.pages_read(), h.pages() as u64);
    }

    #[test]
    fn random_access_counts_more_than_scan() {
        let mut h = HeapFile::new(schema());
        let mut ids = Vec::new();
        for i in 0..5_000u32 {
            ids.push(h.insert(&row(i, 0.0)).unwrap());
        }
        // Random-ish order: big stride permutation.
        h.reset_io_counters();
        let n = ids.len();
        for k in 0..n {
            let idx = (k * 2_654_435_761) % n;
            h.fetch(ids[idx]).unwrap();
        }
        let random_reads = h.pages_read();
        h.reset_io_counters();
        let _: Vec<_> = h.scan().collect();
        let scan_reads = h.pages_read();
        assert!(
            random_reads > 10 * scan_reads,
            "random {random_reads} vs scan {scan_reads}"
        );
    }

    #[test]
    fn fetch_invalid_address_errors() {
        let h = HeapFile::new(schema());
        assert!(h.fetch(RowId { page: 99, slot: 0 }).is_err());
        assert!(h.fetch(RowId { page: 0, slot: 9 }).is_err());
    }
}
