//! # riskpipe-db
//!
//! A small but real relational engine — the *baseline the paper argues
//! against*. The paper's §II claim is that "traditional database
//! management techniques do not fit the requirements of this stage as
//! data needs to be scanned over rather than randomly access\[ed\]". To
//! demonstrate that claim quantitatively (experiment E4) we need an
//! actual row-store: slotted 8 KiB pages ([`page`]), heap files with
//! page-read accounting ([`heap`]), a B+-tree secondary index
//! ([`btree`]), and iterator-style query operators ([`exec`]).
//!
//! [`workload`] phrases aggregate analysis both ways — per-trial
//! indexed random access vs. one streaming scan — over the same YELT
//! table, and exposes the page-I/O counters that make the access-
//! pattern argument measurable.

#![warn(missing_docs)]

pub mod btree;
pub mod exec;
pub mod heap;
pub mod page;
pub mod value;
pub mod workload;

pub use btree::BPlusTree;
pub use heap::{HeapFile, RowId};
pub use page::{Page, PAGE_SIZE};
pub use value::{ColumnType, Row, Schema, Value};
pub use workload::YeltTable;
