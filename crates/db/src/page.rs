//! Slotted pages: the classic row-store page layout.
//!
//! ```text
//! [ header: slot_count u16 | free_off u16 ][ row data → ... ]
//!                                  ... [ ← slot directory (off u16, len u16) ]
//! ```
//!
//! Rows are appended after the header; the slot directory grows from
//! the page end toward them. Insertion fails (returns `None`) when the
//! two regions would meet.

/// Page size in bytes (8 KiB, the common RDBMS default).
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 4;
const SLOT: usize = 4;

/// One slotted page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A fresh empty page.
    pub fn new() -> Self {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // slot_count = 0, free_off = HEADER.
        data[2..4].copy_from_slice(&(HEADER as u16).to_le_bytes());
        Self { data }
    }

    fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    fn free_off(&self) -> u16 {
        u16::from_le_bytes([self.data[2], self.data[3]])
    }

    fn set_slot_count(&mut self, v: u16) {
        self.data[0..2].copy_from_slice(&v.to_le_bytes());
    }

    fn set_free_off(&mut self, v: u16) {
        self.data[2..4].copy_from_slice(&v.to_le_bytes());
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let pos = PAGE_SIZE - SLOT * (slot as usize + 1);
        let off = u16::from_le_bytes([self.data[pos], self.data[pos + 1]]);
        let len = u16::from_le_bytes([self.data[pos + 2], self.data[pos + 3]]);
        (off, len)
    }

    fn set_slot_entry(&mut self, slot: u16, off: u16, len: u16) {
        let pos = PAGE_SIZE - SLOT * (slot as usize + 1);
        self.data[pos..pos + 2].copy_from_slice(&off.to_le_bytes());
        self.data[pos + 2..pos + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Number of rows on the page.
    pub fn rows(&self) -> u16 {
        self.slot_count()
    }

    /// Free bytes remaining for one more row of length `len`.
    pub fn fits(&self, len: usize) -> bool {
        let used_top = self.free_off() as usize;
        let dir_bottom = PAGE_SIZE - SLOT * (self.slot_count() as usize + 1);
        used_top + len <= dir_bottom
    }

    /// Insert a row, returning its slot, or `None` if the page is full.
    pub fn insert(&mut self, row: &[u8]) -> Option<u16> {
        assert!(row.len() <= u16::MAX as usize, "row too large for a page");
        if !self.fits(row.len()) {
            return None;
        }
        let off = self.free_off();
        let slot = self.slot_count();
        self.data[off as usize..off as usize + row.len()].copy_from_slice(row);
        self.set_slot_entry(slot, off, row.len() as u16);
        self.set_free_off(off + row.len() as u16);
        self.set_slot_count(slot + 1);
        Some(slot)
    }

    /// Fetch a row by slot.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        Some(&self.data[off as usize..(off + len) as usize])
    }

    /// Iterate all rows on the page in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.slot_count()).map(move |s| self.get(s).expect("slot in range"))
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("rows", &self.slot_count())
            .field("free_off", &self.free_off())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.get(0).unwrap(), b"hello");
        assert_eq!(p.get(1).unwrap(), b"world!!");
        assert_eq!(p.get(2), None);
        assert_eq!(p.rows(), 2);
    }

    #[test]
    fn fills_until_capacity() {
        let mut p = Page::new();
        let row = [0xABu8; 16];
        let mut n = 0;
        while p.insert(&row).is_some() {
            n += 1;
        }
        // 16 data + 4 slot bytes per row, 4 header bytes.
        let expect = (PAGE_SIZE - HEADER) / (16 + SLOT);
        assert_eq!(n, expect);
        // Still readable after fill.
        assert_eq!(p.get(0).unwrap(), &row);
        assert_eq!(p.get((n - 1) as u16).unwrap(), &row);
    }

    #[test]
    fn iter_returns_all_in_order() {
        let mut p = Page::new();
        for i in 0..10u8 {
            p.insert(&[i; 8]).unwrap();
        }
        let rows: Vec<&[u8]> = p.iter().collect();
        assert_eq!(rows.len(), 10);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r, &[i as u8; 8]);
        }
    }

    #[test]
    fn variable_length_rows() {
        let mut p = Page::new();
        p.insert(b"a").unwrap();
        p.insert(b"longer row data").unwrap();
        p.insert(b"").unwrap();
        assert_eq!(p.get(0).unwrap(), b"a");
        assert_eq!(p.get(1).unwrap(), b"longer row data");
        assert_eq!(p.get(2).unwrap(), b"");
    }
}
