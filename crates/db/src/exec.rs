//! Volcano-style query operators: composable row iterators.
//!
//! The engine is deliberately minimal — sequential scan, index lookup,
//! filter, projection and a hash aggregate — which is all the E4
//! comparison needs, and enough to express the aggregate-analysis
//! queries both ways.

use crate::btree::BPlusTree;
use crate::heap::HeapFile;
use crate::value::{Row, Value};
use riskpipe_types::RiskResult;
use std::collections::HashMap;

/// Sequential scan of a heap file.
pub fn seq_scan(heap: &HeapFile) -> impl Iterator<Item = Row> + '_ {
    heap.scan().map(|(_, row)| row)
}

/// Index equality lookup: all rows whose indexed key equals `key`.
pub fn index_lookup<'a>(
    heap: &'a HeapFile,
    index: &'a BPlusTree,
    key: u64,
) -> RiskResult<Vec<Row>> {
    index
        .get_all(key)
        .into_iter()
        .map(|rid| heap.fetch(rid))
        .collect()
}

/// Filter combinator.
pub fn filter<'a, I>(rows: I, pred: impl Fn(&Row) -> bool + 'a) -> impl Iterator<Item = Row> + 'a
where
    I: Iterator<Item = Row> + 'a,
{
    rows.filter(move |r| pred(r))
}

/// Projection combinator (column indices).
pub fn project<'a, I>(rows: I, cols: Vec<usize>) -> impl Iterator<Item = Row> + 'a
where
    I: Iterator<Item = Row> + 'a,
{
    rows.map(move |r| cols.iter().map(|&c| r[c]).collect())
}

/// Hash aggregate: `SELECT group_col, SUM(sum_col) GROUP BY group_col`.
/// Group keys are u32-valued columns.
pub fn hash_aggregate_sum(
    rows: impl Iterator<Item = Row>,
    group_col: usize,
    sum_col: usize,
) -> HashMap<u32, f64> {
    let mut acc: HashMap<u32, f64> = HashMap::new();
    for r in rows {
        *acc.entry(r[group_col].as_u32()).or_insert(0.0) += r[sum_col].as_f64();
    }
    acc
}

/// Scalar aggregate: `SELECT SUM(col)`.
pub fn sum(rows: impl Iterator<Item = Row>, col: usize) -> f64 {
    rows.map(|r| r[col].as_f64()).sum()
}

/// Scalar aggregate: `SELECT COUNT(*)`.
pub fn count(rows: impl Iterator<Item = Row>) -> u64 {
    rows.count() as u64
}

/// Convenience: a `Value::U32` accessor predicate for filters.
pub fn col_eq_u32(col: usize, v: u32) -> impl Fn(&Row) -> bool {
    move |r: &Row| matches!(r[col], Value::U32(x) if x == v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapFile;
    use crate::value::{ColumnType, Schema};

    fn loaded_heap() -> (HeapFile, BPlusTree) {
        let schema = Schema::new(vec![
            ("trial", ColumnType::U32),
            ("event", ColumnType::U32),
            ("loss", ColumnType::F64),
        ]);
        let mut heap = HeapFile::new(schema);
        let mut index = BPlusTree::new();
        for t in 0..50u32 {
            for e in 0..4u32 {
                let rid = heap
                    .insert(&vec![
                        Value::U32(t),
                        Value::U32(e),
                        Value::F64((t * 10 + e) as f64),
                    ])
                    .unwrap();
                index.insert(t as u64, rid);
            }
        }
        (heap, index)
    }

    #[test]
    fn seq_scan_visits_everything() {
        let (heap, _) = loaded_heap();
        assert_eq!(count(seq_scan(&heap)), 200);
    }

    #[test]
    fn index_lookup_fetches_trial_rows() {
        let (heap, index) = loaded_heap();
        let rows = index_lookup(&heap, &index, 7).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r[0].as_u32(), 7);
        }
    }

    #[test]
    fn filter_and_project_compose() {
        let (heap, _) = loaded_heap();
        let out: Vec<Row> =
            project(filter(seq_scan(&heap), col_eq_u32(1, 2)), vec![0, 2]).collect();
        assert_eq!(out.len(), 50); // one event-2 row per trial
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[10][0].as_u32(), 10);
        assert_eq!(out[10][1].as_f64(), 102.0);
    }

    #[test]
    fn hash_aggregate_matches_manual_sum() {
        let (heap, _) = loaded_heap();
        let agg = hash_aggregate_sum(seq_scan(&heap), 0, 2);
        assert_eq!(agg.len(), 50);
        // trial t total = sum_e (t*10 + e) = 4*10t + 6.
        for t in 0..50u32 {
            assert_eq!(agg[&t], (40 * t + 6) as f64, "trial {t}");
        }
    }

    #[test]
    fn scalar_aggregates() {
        let (heap, _) = loaded_heap();
        let total = sum(seq_scan(&heap), 2);
        let expect: f64 = (0..50u32).map(|t| (40 * t + 6) as f64).sum();
        assert_eq!(total, expect);
    }
}
