//! Values, rows and schemas for the row store.

use bytes::{Buf, BufMut};
use riskpipe_types::{RiskError, RiskResult};

/// Column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 32-bit unsigned integer.
    U32,
    /// 64-bit unsigned integer.
    U64,
    /// 64-bit float.
    F64,
}

impl ColumnType {
    /// Fixed byte width of the type.
    pub const fn width(self) -> usize {
        match self {
            ColumnType::U32 => 4,
            ColumnType::U64 => 8,
            ColumnType::F64 => 8,
        }
    }
}

/// A single value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit unsigned integer.
    U32(u32),
    /// 64-bit unsigned integer.
    U64(u64),
    /// 64-bit float.
    F64(f64),
}

impl Value {
    /// The value's type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::U32(_) => ColumnType::U32,
            Value::U64(_) => ColumnType::U64,
            Value::F64(_) => ColumnType::F64,
        }
    }

    /// As u32 (panics on type mismatch — operator trees are typed by
    /// construction).
    pub fn as_u32(&self) -> u32 {
        match self {
            Value::U32(v) => *v,
            _ => panic!("expected U32, got {self:?}"),
        }
    }

    /// As u64.
    pub fn as_u64(&self) -> u64 {
        match self {
            Value::U64(v) => *v,
            Value::U32(v) => *v as u64,
            _ => panic!("expected integer, got {self:?}"),
        }
    }

    /// As f64.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            _ => panic!("expected F64, got {self:?}"),
        }
    }
}

/// A row of values.
pub type Row = Vec<Value>;

/// A table schema: named, typed, fixed-width columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Build from `(name, type)` pairs.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Self {
        Self {
            columns: columns
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> RiskResult<usize> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| RiskError::NotFound(format!("column {name}")))
    }

    /// The columns.
    pub fn columns(&self) -> &[(String, ColumnType)] {
        &self.columns
    }

    /// Bytes per encoded row.
    pub fn row_width(&self) -> usize {
        self.columns.iter().map(|(_, t)| t.width()).sum()
    }

    /// Encode a row (must match the schema).
    pub fn encode_row(&self, row: &Row) -> RiskResult<Vec<u8>> {
        if row.len() != self.arity() {
            return Err(RiskError::invalid(format!(
                "row arity {} != schema arity {}",
                row.len(),
                self.arity()
            )));
        }
        let mut buf = Vec::with_capacity(self.row_width());
        for (v, (name, t)) in row.iter().zip(&self.columns) {
            if v.column_type() != *t {
                return Err(RiskError::invalid(format!(
                    "column {name}: expected {t:?}, got {:?}",
                    v.column_type()
                )));
            }
            match v {
                Value::U32(x) => buf.put_u32_le(*x),
                Value::U64(x) => buf.put_u64_le(*x),
                Value::F64(x) => buf.put_f64_le(*x),
            }
        }
        Ok(buf)
    }

    /// Decode a row.
    pub fn decode_row(&self, mut data: &[u8]) -> RiskResult<Row> {
        if data.len() != self.row_width() {
            return Err(RiskError::corrupt(format!(
                "row is {} bytes, schema wants {}",
                data.len(),
                self.row_width()
            )));
        }
        let mut row = Vec::with_capacity(self.arity());
        for (_, t) in &self.columns {
            row.push(match t {
                ColumnType::U32 => Value::U32(data.get_u32_le()),
                ColumnType::U64 => Value::U64(data.get_u64_le()),
                ColumnType::F64 => Value::F64(data.get_f64_le()),
            });
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("trial", ColumnType::U32),
            ("event", ColumnType::U32),
            ("loss", ColumnType::F64),
        ])
    }

    #[test]
    fn row_round_trip() {
        let s = schema();
        let row = vec![Value::U32(7), Value::U32(99), Value::F64(123.5)];
        let bytes = s.encode_row(&row).unwrap();
        assert_eq!(bytes.len(), s.row_width());
        assert_eq!(s.decode_row(&bytes).unwrap(), row);
    }

    #[test]
    fn schema_lookups() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("loss").unwrap(), 2);
        assert!(s.column_index("nope").is_err());
        assert_eq!(s.row_width(), 16);
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = schema();
        let bad = vec![Value::F64(1.0), Value::U32(2), Value::F64(3.0)];
        assert!(s.encode_row(&bad).is_err());
        let short = vec![Value::U32(1)];
        assert!(s.encode_row(&short).is_err());
    }

    #[test]
    fn decode_validates_length() {
        let s = schema();
        assert!(s.decode_row(&[0u8; 5]).is_err());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::U32(5).as_u32(), 5);
        assert_eq!(Value::U32(5).as_u64(), 5);
        assert_eq!(Value::U64(9).as_u64(), 9);
        assert_eq!(Value::F64(2.5).as_f64(), 2.5);
    }

    #[test]
    #[should_panic]
    fn wrong_accessor_panics() {
        Value::F64(1.0).as_u32();
    }
}
