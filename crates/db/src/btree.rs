//! A B+-tree index from `u64` keys to [`RowId`]s, supporting duplicate
//! keys — built from scratch on a node arena.
//!
//! Structure: internal nodes hold separator keys and child indices;
//! leaves hold sorted `(key, RowId)` pairs and a next-leaf link for
//! range scans. Node fan-out is fixed at build time. Node visits are
//! counted: an index lookup's cost in node touches is part of the
//! random-access accounting of experiment E4.

use crate::heap::RowId;
use std::sync::atomic::{AtomicU64, Ordering};

const DEFAULT_ORDER: usize = 64;

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// Separator keys; child `i` holds keys < keys[i] (last child
        /// holds the rest).
        keys: Vec<u64>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<u64>,
        vals: Vec<RowId>,
        next: Option<u32>,
    },
}

/// The B+-tree.
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: u32,
    order: usize,
    len: u64,
    node_reads: AtomicU64,
}

impl BPlusTree {
    /// An empty tree with the default fan-out.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// An empty tree with a specific fan-out (≥ 4).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "order must be at least 4");
        Self {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            }],
            root: 0,
            order,
            len: 0,
            node_reads: AtomicU64::new(0),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node visits since the last counter reset.
    pub fn node_reads(&self) -> u64 {
        self.node_reads.load(Ordering::Relaxed)
    }

    /// Reset the visit counter.
    pub fn reset_io_counters(&self) {
        self.node_reads.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn touch(&self) {
        self.node_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert a key → row mapping (duplicates allowed).
    pub fn insert(&mut self, key: u64, val: RowId) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, val) {
            // Root split: grow a level.
            let new_root = Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.nodes.push(new_root);
            self.root = (self.nodes.len() - 1) as u32;
        }
        self.len += 1;
    }

    fn insert_rec(&mut self, node: u32, key: u64, val: RowId) -> Option<(u64, u32)> {
        match &mut self.nodes[node as usize] {
            Node::Leaf { keys, vals, .. } => {
                let pos = keys.partition_point(|&k| k <= key);
                keys.insert(pos, key);
                vals.insert(pos, val);
                if keys.len() > self.order {
                    return Some(self.split_leaf(node));
                }
                None
            }
            Node::Internal { keys, children } => {
                let child_pos = keys.partition_point(|&k| k <= key);
                let child = children[child_pos];
                if let Some((sep, right)) = self.insert_rec(child, key, val) {
                    // Re-borrow after recursion. The separator slots in at
                    // the descended child's position and the new right
                    // sibling immediately after it — positions must come
                    // from `child_pos`, not a key search, because with
                    // duplicate keys a search could land left of other
                    // equal separators and misplace the child.
                    if let Node::Internal { keys, children } = &mut self.nodes[node as usize] {
                        keys.insert(child_pos, sep);
                        children.insert(child_pos + 1, right);
                        if keys.len() > self.order {
                            return Some(self.split_internal(node));
                        }
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, node: u32) -> (u64, u32) {
        let right_idx = self.nodes.len() as u32;
        if let Node::Leaf { keys, vals, next } = &mut self.nodes[node as usize] {
            let mid = keys.len() / 2;
            let rk: Vec<u64> = keys.split_off(mid);
            let rv: Vec<RowId> = vals.split_off(mid);
            let sep = rk[0];
            let right = Node::Leaf {
                keys: rk,
                vals: rv,
                next: *next,
            };
            *next = Some(right_idx);
            self.nodes.push(right);
            (sep, right_idx)
        } else {
            unreachable!("split_leaf on internal node")
        }
    }

    fn split_internal(&mut self, node: u32) -> (u64, u32) {
        let right_idx = self.nodes.len() as u32;
        if let Node::Internal { keys, children } = &mut self.nodes[node as usize] {
            let mid = keys.len() / 2;
            let sep = keys[mid];
            let rk: Vec<u64> = keys.split_off(mid + 1);
            keys.pop(); // the separator moves up
            let rc: Vec<u32> = children.split_off(mid + 1);
            let right = Node::Internal {
                keys: rk,
                children: rc,
            };
            self.nodes.push(right);
            (sep, right_idx)
        } else {
            unreachable!("split_internal on leaf")
        }
    }

    /// Find the leftmost leaf that may contain `key`, counting node
    /// visits. Lower-bound descent (`k < key`) is required because a
    /// duplicate-key run can straddle a split separator: occurrences
    /// equal to the separator may sit at the tail of the left subtree,
    /// and `get_all`/`range` walk forward over leaf links from here.
    fn find_leaf(&self, key: u64) -> u32 {
        let mut node = self.root;
        loop {
            self.touch();
            match &self.nodes[node as usize] {
                Node::Leaf { .. } => return node,
                Node::Internal { keys, children } => {
                    let pos = keys.partition_point(|&k| k < key);
                    node = children[pos];
                }
            }
        }
    }

    /// All rows for an exact key (duplicates included), in insertion
    /// order within the key.
    pub fn get_all(&self, key: u64) -> Vec<RowId> {
        let mut out = Vec::new();
        let mut node = self.find_leaf(key);
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { keys, vals, next } => {
                    let start = keys.partition_point(|&k| k < key);
                    for i in start..keys.len() {
                        if keys[i] != key {
                            return out;
                        }
                        out.push(vals[i]);
                    }
                    // Key run may continue on the next leaf.
                    match next {
                        Some(n) => {
                            node = *n;
                            self.touch();
                        }
                        None => return out,
                    }
                }
                Node::Internal { .. } => unreachable!("find_leaf returns a leaf"),
            }
        }
    }

    /// All `(key, RowId)` pairs with `lo <= key < hi`, in key order.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, RowId)> {
        let mut out = Vec::new();
        if lo >= hi {
            return out;
        }
        let mut node = self.find_leaf(lo);
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { keys, vals, next } => {
                    let start = keys.partition_point(|&k| k < lo);
                    for i in start..keys.len() {
                        if keys[i] >= hi {
                            return out;
                        }
                        out.push((keys[i], vals[i]));
                    }
                    match next {
                        Some(n) => {
                            node = *n;
                            self.touch();
                        }
                        None => return out,
                    }
                }
                Node::Internal { .. } => unreachable!(),
            }
        }
    }

    /// Tree height (levels from root to leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for BPlusTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BPlusTree")
            .field("len", &self.len)
            .field("nodes", &self.nodes.len())
            .field("height", &self.height())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn rid(n: u32) -> RowId {
        RowId {
            page: n,
            slot: (n % 7) as u16,
        }
    }

    #[test]
    fn insert_and_get_unique_keys() {
        let mut t = BPlusTree::with_order(4);
        for k in 0..1_000u64 {
            t.insert(k * 3, rid(k as u32));
        }
        assert_eq!(t.len(), 1_000);
        for k in 0..1_000u64 {
            assert_eq!(t.get_all(k * 3), vec![rid(k as u32)], "key {}", k * 3);
            assert!(t.get_all(k * 3 + 1).is_empty());
        }
        assert!(t.height() > 2, "small order should force height");
    }

    #[test]
    fn duplicates_all_returned() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..100u32 {
            t.insert(42, rid(i));
        }
        t.insert(41, rid(900));
        t.insert(43, rid(901));
        let hits = t.get_all(42);
        assert_eq!(hits.len(), 100);
        assert_eq!(t.get_all(41), vec![rid(900)]);
    }

    #[test]
    fn range_scan_in_order() {
        let mut t = BPlusTree::with_order(6);
        for k in (0..500u64).rev() {
            t.insert(k, rid(k as u32));
        }
        let r = t.range(100, 200);
        assert_eq!(r.len(), 100);
        for (i, (k, v)) in r.iter().enumerate() {
            assert_eq!(*k, 100 + i as u64);
            assert_eq!(*v, rid((100 + i) as u32));
        }
        assert!(t.range(200, 100).is_empty());
        assert!(t.range(9_999, 10_000).is_empty());
    }

    #[test]
    fn node_reads_grow_with_lookups() {
        let mut t = BPlusTree::with_order(8);
        for k in 0..10_000u64 {
            t.insert(k, rid(k as u32));
        }
        t.reset_io_counters();
        t.get_all(5_000);
        let one = t.node_reads();
        assert!(one as usize >= t.height());
        for k in 0..100 {
            t.get_all(k * 50);
        }
        assert!(t.node_reads() > one * 50);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn behaves_like_btreemap_of_vecs(keys in prop::collection::vec(0u64..500, 1..2000)) {
            let mut ours = BPlusTree::with_order(8);
            let mut model: BTreeMap<u64, Vec<RowId>> = BTreeMap::new();
            for (i, &k) in keys.iter().enumerate() {
                let v = rid(i as u32);
                ours.insert(k, v);
                model.entry(k).or_default().push(v);
            }
            prop_assert_eq!(ours.len(), keys.len() as u64);
            // Exact lookups match (order within key = insertion order).
            for (k, vs) in &model {
                prop_assert_eq!(&ours.get_all(*k), vs);
            }
            // Range matches.
            let flat_model: Vec<(u64, RowId)> = model
                .range(100..400)
                .flat_map(|(k, vs)| vs.iter().map(move |v| (*k, *v)))
                .collect();
            prop_assert_eq!(ours.range(100, 400), flat_model);
        }
    }
}
