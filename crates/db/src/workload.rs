//! The E4 workload: aggregate analysis phrased against the relational
//! engine, both ways.
//!
//! A YELT (trial, event, day, loss) is loaded into a heap table with a
//! B+-tree index on trial. "Compute each trial's aggregate loss" is
//! then answered by:
//!
//! * **indexed random access** — the natural OLTP phrasing: for each
//!   trial, an index lookup, then row fetches wherever they landed
//!   (random page touches);
//! * **one streaming scan** — the paper's phrasing: a single pass with
//!   a hash aggregate.
//!
//! Both produce identical sums; the page/node counters differ by orders
//! of magnitude, which *is* the paper's argument rendered measurable.

use crate::btree::BPlusTree;
use crate::exec::{hash_aggregate_sum, seq_scan};
use crate::heap::HeapFile;
use crate::value::{ColumnType, Schema, Value};
use riskpipe_tables::Yelt;
use riskpipe_types::{RiskResult, TrialId};

/// A YELT loaded into the relational engine.
pub struct YeltTable {
    heap: HeapFile,
    trial_index: BPlusTree,
    trials: usize,
}

/// I/O cost of one strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCost {
    /// Heap pages touched.
    pub heap_pages: u64,
    /// Index nodes touched.
    pub index_nodes: u64,
}

impl YeltTable {
    /// Load a YELT into a fresh table with a trial index.
    pub fn load(yelt: &Yelt) -> RiskResult<Self> {
        let schema = Schema::new(vec![
            ("trial", ColumnType::U32),
            ("event", ColumnType::U32),
            ("day", ColumnType::U32),
            ("loss", ColumnType::F64),
        ]);
        let mut heap = HeapFile::new(schema);
        let mut trial_index = BPlusTree::new();
        let trials = yelt.trials();
        for t in 0..trials {
            let (events, days, losses) = yelt.trial_slices(TrialId::new(t as u32));
            for i in 0..events.len() {
                let rid = heap.insert(&vec![
                    Value::U32(t as u32),
                    Value::U32(events[i]),
                    Value::U32(days[i] as u32),
                    Value::F64(losses[i]),
                ])?;
                trial_index.insert(t as u64, rid);
            }
        }
        Ok(Self {
            heap,
            trial_index,
            trials,
        })
    }

    /// Rows stored.
    pub fn rows(&self) -> u64 {
        self.heap.rows()
    }

    /// Heap pages.
    pub fn pages(&self) -> usize {
        self.heap.pages()
    }

    /// Trials represented.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Per-trial aggregate loss via indexed random access.
    pub fn aggregate_by_trial_indexed(&self) -> RiskResult<(Vec<f64>, AccessCost)> {
        self.heap.reset_io_counters();
        self.trial_index.reset_io_counters();
        let mut out = Vec::with_capacity(self.trials);
        for t in 0..self.trials {
            let mut total = 0.0;
            for rid in self.trial_index.get_all(t as u64) {
                let row = self.heap.fetch(rid)?;
                total += row[3].as_f64();
            }
            out.push(total);
        }
        Ok((
            out,
            AccessCost {
                heap_pages: self.heap.pages_read(),
                index_nodes: self.trial_index.node_reads(),
            },
        ))
    }

    /// Per-trial aggregate loss via one streaming scan.
    pub fn aggregate_by_trial_scan(&self) -> (Vec<f64>, AccessCost) {
        self.heap.reset_io_counters();
        self.trial_index.reset_io_counters();
        let agg = hash_aggregate_sum(seq_scan(&self.heap), 0, 3);
        let mut out = vec![0.0; self.trials];
        for (t, v) in agg {
            out[t as usize] = v;
        }
        (
            out,
            AccessCost {
                heap_pages: self.heap.pages_read(),
                index_nodes: self.trial_index.node_reads(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_tables::elt::{EltBuilder, EltRecord};
    use riskpipe_tables::yet::{Occurrence, YetBuilder};
    use riskpipe_types::rng::{Rng64, SplitMix64};
    use riskpipe_types::EventId;

    fn sample_yelt(trials: usize) -> Yelt {
        let mut rng = SplitMix64::new(13);
        let mut b = EltBuilder::new();
        for e in 0..200u32 {
            let mean = 10.0 + rng.next_f64() * 100.0;
            b.push(EltRecord {
                event_id: EventId::new(e),
                mean_loss: mean,
                sigma_i: mean * 0.1,
                sigma_c: mean * 0.1,
                exposure: mean * 4.0,
            })
            .unwrap();
        }
        let elt = b.build().unwrap();
        let mut yb = YetBuilder::new();
        for _ in 0..trials {
            let n = (rng.next_u64() % 6) as usize;
            let mut occs: Vec<Occurrence> = (0..n)
                .map(|_| Occurrence {
                    event_id: EventId::new((rng.next_u64() % 200) as u32),
                    day: (rng.next_u64() % 365) as u16,
                    z: 0.5,
                })
                .collect();
            occs.sort_by_key(|o| o.day);
            yb.push_trial(&occs);
        }
        Yelt::from_yet_elt(&yb.build(), &elt)
    }

    #[test]
    fn both_strategies_agree_with_direct_scan() {
        let yelt = sample_yelt(500);
        let (direct, _) = yelt.scan_aggregate_by_trial();
        let table = YeltTable::load(&yelt).unwrap();
        let (indexed, _) = table.aggregate_by_trial_indexed().unwrap();
        let (scanned, _) = table.aggregate_by_trial_scan();
        assert_eq!(indexed.len(), direct.len());
        for t in 0..direct.len() {
            assert!((indexed[t] - direct[t]).abs() < 1e-9, "indexed trial {t}");
            assert!((scanned[t] - direct[t]).abs() < 1e-9, "scanned trial {t}");
        }
    }

    #[test]
    fn scan_touches_far_fewer_pages() {
        let yelt = sample_yelt(3_000);
        let table = YeltTable::load(&yelt).unwrap();
        let (_, indexed_cost) = table.aggregate_by_trial_indexed().unwrap();
        let (_, scan_cost) = table.aggregate_by_trial_scan();
        assert_eq!(scan_cost.heap_pages, table.pages() as u64);
        assert_eq!(scan_cost.index_nodes, 0);
        assert!(
            indexed_cost.heap_pages + indexed_cost.index_nodes
                > 5 * (scan_cost.heap_pages + scan_cost.index_nodes),
            "indexed {indexed_cost:?} vs scan {scan_cost:?}"
        );
    }

    #[test]
    fn table_metadata_consistent() {
        let yelt = sample_yelt(200);
        let table = YeltTable::load(&yelt).unwrap();
        assert_eq!(table.rows() as usize, yelt.rows());
        assert_eq!(table.trials(), 200);
        assert!(table.pages() >= 1);
    }
}
