//! Stress and failure-injection tests: the substrate under load and
//! under sabotage.

use riskpipe::exec::{par_reduce, ThreadPool};
use riskpipe::mapreduce::LocationRiskJob;
use riskpipe::simgpu::{BlockCtx, DeviceSpec, GlobalBuf, Kernel, LaunchConfig};
use riskpipe::tables::{shard, ShardedReader, ShardedWriter};
use riskpipe::types::{LocationId, RiskResult};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("riskpipe-stress-{tag}-{}-{n}", std::process::id()))
}

#[test]
fn pool_survives_a_hundred_thousand_tasks() {
    let pool = ThreadPool::new(4);
    let total = par_reduce(
        &pool,
        100_000,
        64,
        || 0u64,
        |range, acc| acc + range.map(|i| (i % 7) as u64).sum::<u64>(),
        |a, b| a + b,
    );
    let expect: u64 = (0..100_000u64).map(|i| i % 7).sum();
    assert_eq!(total, expect);
    assert!(pool.stats().tasks_executed() + pool.stats().helper_runs() >= 1_000);
}

struct BigLaunchKernel {
    out: GlobalBuf<u64>,
    n: usize,
}

impl Kernel for BigLaunchKernel {
    fn run_block(&self, ctx: &mut BlockCtx<'_>) -> RiskResult<()> {
        // Touch shared memory in every block to stress the arena path.
        let tile = ctx.shared.alloc_f64(256)?;
        std::hint::black_box(&tile);
        ctx.for_each_thread(|t| {
            let g = ctx.global_thread(t) as usize;
            if g < self.n {
                self.out
                    .write_uncounted(g, (g as u64).wrapping_mul(0x9E3779B9));
            }
        });
        Ok(())
    }
}

#[test]
fn simulated_gpu_handles_thousands_of_blocks() {
    let device = DeviceSpec::fermi_like();
    let pool = ThreadPool::new(4);
    let n = 500_000;
    let kernel = BigLaunchKernel {
        out: GlobalBuf::new(n),
        n,
    };
    let cfg = LaunchConfig::cover(n, 128);
    assert!(cfg.grid_blocks > 3_000);
    let stats = device.launch(&kernel, cfg, &pool).unwrap();
    assert_eq!(stats.blocks, cfg.grid_blocks);
    let out = kernel.out.into_vec();
    for (i, &v) in out.iter().enumerate().step_by(9973) {
        assert_eq!(v, (i as u64).wrapping_mul(0x9E3779B9));
    }
}

#[test]
fn sixty_four_shard_store_round_trips() {
    let dir = temp("manyshards");
    let mut w = ShardedWriter::create_with_chunk_rows(&dir, 64, 128).unwrap();
    let rows = 50_000u32;
    for t in 0..rows {
        w.push_row(t, t % 991, LocationId::new(t % 37), t as f64 * 0.5)
            .unwrap();
    }
    let manifest = w.finish().unwrap();
    assert_eq!(manifest.rows, rows as u64);
    let r = ShardedReader::open(&dir).unwrap();
    let mut seen = 0u64;
    let mut checksum = 0.0f64;
    for s in 0..64 {
        for chunk in r.read_shard(s).unwrap() {
            seen += chunk.rows() as u64;
            checksum += chunk.losses.iter().sum::<f64>();
        }
    }
    assert_eq!(seen, rows as u64);
    let expect: f64 = (0..rows).map(|t| t as f64 * 0.5).sum();
    assert!((checksum - expect).abs() < 1e-6 * expect);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mapreduce_fails_loudly_on_corrupted_shard() {
    let dir = temp("mrcorrupt");
    let mut w = ShardedWriter::create_with_chunk_rows(&dir, 2, 16).unwrap();
    for t in 0..200u32 {
        w.push_row(t, t % 5, LocationId::new(t % 3), 1.0).unwrap();
    }
    w.finish().unwrap();
    // Corrupt one shard's payload.
    let victim = shard::shard_path(&dir, 1);
    let mut data = std::fs::read(&victim).unwrap();
    let n = data.len();
    data[n / 2] ^= 0xAA;
    std::fs::write(&victim, data).unwrap();

    let reader = ShardedReader::open(&dir).unwrap();
    let pool = ThreadPool::new(2);
    let result = LocationRiskJob {
        trials: 200,
        alpha: 0.9,
    }
    .run(&reader, 2, &pool);
    assert!(result.is_err(), "corrupted shard must fail the job");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_pipelines_do_not_interfere() {
    use riskpipe::core::{RiskSession, ScenarioConfig};
    // Two scenarios with different seeds on one session's shared pool,
    // batched: results must equal their single-run references.
    let session = RiskSession::builder().pool_threads(4).build().unwrap();
    let (sa, sb) = (
        ScenarioConfig::small().with_seed(91).with_trials(400),
        ScenarioConfig::small().with_seed(92).with_trials(400),
    );
    let ra_ref = session.run(&sa).unwrap();
    let rb_ref = session.run(&sb).unwrap();
    let batch = session
        .sweep(&[sa, sb])
        .collect()
        .drive()
        .unwrap()
        .into_reports()
        .unwrap();
    assert_eq!(batch[0].ylt, ra_ref.ylt);
    assert_eq!(batch[1].ylt, rb_ref.ylt);
}

#[test]
fn warehouse_view_file_corruption_is_detected() {
    use riskpipe::warehouse::{
        encode_cuboid, load_views, save_views, Cuboid, FactTable, LevelSelect, Schema,
    };
    let schema = Schema::standard(40, 5, 30, 3, 8, 2).unwrap();
    let facts = FactTable::synthetic(&schema, 5_000, 31);
    let base = Cuboid::build(&schema, &facts, LevelSelect::BASE, None).unwrap();
    let mid = Cuboid::build(&schema, &facts, LevelSelect([1, 1, 1, 1]), None).unwrap();

    let path = temp("views").with_extension("bin");
    save_views(&path, &[&base, &mid]).unwrap();
    assert_eq!(load_views(&path, &schema).unwrap().len(), 2);

    // Flip one byte in the middle of the file: the CRC-checked frame
    // must refuse to load rather than return perturbed aggregates.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid_payload = bytes.len() / 2;
    bytes[mid_payload] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    assert!(load_views(&path, &schema).is_err());

    // Truncation after the first frame: the intact prefix is not
    // enough either (the partial second frame errors).
    let first_len = encode_cuboid(&base).unwrap().len();
    std::fs::write(&path, &std::fs::read(&path).unwrap()[..first_len + 7]).unwrap();
    assert!(load_views(&path, &schema).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn warehouse_key_packing_capacity_is_enforced() {
    use riskpipe::types::RiskError;
    use riskpipe::warehouse::{Dimension, KeyCodec, Level, LevelSelect, Schema};
    // Four dimensions of 2^20 codes each need 80 key bits — over the
    // 64-bit budget; the codec must refuse, like every other simulated
    // capacity in the pipeline.
    let wide = |name: &str| {
        Dimension::new(
            name,
            vec![Level {
                name: "base".into(),
                cardinality: 1 << 20,
            }],
            vec![],
        )
        .unwrap()
    };
    let schema = Schema::new(vec![wide("a"), wide("b"), wide("c"), wide("d")]).unwrap();
    let err = KeyCodec::new(&schema, LevelSelect::BASE).unwrap_err();
    assert!(matches!(err, RiskError::CapacityExceeded { .. }), "{err}");
    // Coarsening to "all" on two dimensions brings it inside 64 bits.
    assert!(KeyCodec::new(&schema, LevelSelect([0, 0, 1, 1])).is_ok());
}

#[test]
fn cloud_simulator_handles_degenerate_and_hostile_configs() {
    use riskpipe::cloud::{simulate, FixedPolicy, JobSpec, NodeSpec, Policy, SimConfig, Stage};
    let job = |tasks: u32| JobSpec {
        name: "j".into(),
        stage: Stage::AdHoc,
        arrival_ms: 0,
        tasks,
        task_ms: 10,
        max_parallel: 0,
        deadline_ms: Some(1),
        after: None,
    };
    let cfg = SimConfig {
        node: NodeSpec {
            cores: 1,
            boot_ms: 0,
        },
        tick_ms: 100,
        horizon_ms: 10_000,
        max_sim_ms: 20_000,
    };

    // A policy that boots a node and retires it every consultation:
    // thrash must not break accounting or completion.
    struct Thrasher;
    impl Policy for Thrasher {
        fn name(&self) -> &str {
            "thrasher"
        }
        fn act(&mut self, obs: &riskpipe::cloud::Observation) -> riskpipe::cloud::Action {
            riskpipe::cloud::Action {
                boot: u32::from(obs.ready_nodes + obs.booting_nodes < 2),
                retire_idle: 1,
            }
        }
    }
    let r = simulate(&[job(50)], &mut Thrasher, &cfg).unwrap();
    assert!(r.all_complete());
    assert_eq!(r.busy_core_ms, 500);
    assert!(r.retires > 0, "thrasher must actually thrash");

    // Impossible deadline (1 ms for 500 core-ms): completes, deadline
    // reported missed, nothing panics.
    let mut p = FixedPolicy::new(1);
    let r = simulate(&[job(50)], &mut p, &cfg).unwrap();
    assert!(r.all_complete());
    assert_eq!(r.deadline_attainment(), 0.0);

    // Zero-task validation still guards the entry point.
    let bad = JobSpec { tasks: 0, ..job(1) };
    assert!(simulate(&[bad], &mut FixedPolicy::new(1), &cfg).is_err());
}

// ---------------------------------------------------------------------
// Sharded-store concurrency: sessions spilling at once must not collide,
// and clear_runs must reclaim every per-run directory afterwards.
// ---------------------------------------------------------------------

#[test]
fn concurrent_sessions_spill_to_disjoint_stores_and_clean_up() {
    use riskpipe::core::{DataStrategy, RiskSession, ScenarioConfig};

    let parent = temp("concurrent-sessions");
    std::fs::create_dir_all(&parent).unwrap();
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let dir = parent.join(format!("session-{t}"));
            std::thread::spawn(move || -> RiskResult<PathBuf> {
                let session = RiskSession::builder()
                    .strategy(DataStrategy::ShardedFiles {
                        dir: dir.clone(),
                        shards: 2,
                    })
                    .pool_threads(2)
                    .build()?;
                let scenarios = [
                    ScenarioConfig::small().with_seed(500 + t).with_trials(200),
                    ScenarioConfig::small().with_seed(600 + t).with_trials(200),
                ];
                // A batch (run 0: batch-NNN under the base) then a solo
                // run (run 1: run-001), all while three sibling
                // sessions hammer their own directories.
                let reports = session
                    .sweep(&scenarios)
                    .collect()
                    .drive()?
                    .into_reports()
                    .expect("collection was requested");
                let solo = session.run(&scenarios[0])?;
                assert_eq!(solo.ylt, reports[0].ylt);
                for (i, r) in reports.iter().enumerate() {
                    let sub = dir.join(format!("batch-{i:03}"));
                    let reader = ShardedReader::open(&sub)?;
                    assert_eq!(reader.rows() as usize, r.yelt_rows, "{}", sub.display());
                }
                let reader = ShardedReader::open(dir.join("run-001"))?;
                assert_eq!(reader.rows() as usize, solo.yelt_rows);
                // Reclaim this session's spills; the session stays
                // usable and spills fresh directories afterwards.
                session.clear_store()?;
                assert!(ShardedReader::open(dir.join("run-001")).is_err());
                let again = session.run(&scenarios[1])?;
                assert_eq!(again.ylt, reports[1].ylt);
                assert!(ShardedReader::open(dir.join("run-002")).is_ok());
                Ok(dir)
            })
        })
        .collect();
    for h in handles {
        let dir = h.join().expect("session thread panicked").unwrap();
        assert!(dir.exists());
    }
    std::fs::remove_dir_all(&parent).unwrap();
}

#[test]
fn one_session_shared_across_threads_never_collides() {
    use riskpipe::core::{DataStrategy, RiskSession, ScenarioConfig};
    use std::sync::Arc;

    let dir = temp("shared-session");
    let session = Arc::new(
        RiskSession::builder()
            .strategy(DataStrategy::ShardedFiles {
                dir: dir.clone(),
                shards: 2,
            })
            .pool_threads(2)
            .build()
            .unwrap(),
    );
    // Eight concurrent run() calls on one session: the atomic run
    // counter gives each its own spill directory (run 0 takes the base
    // directory itself), so every spill stays readable.
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let session = Arc::clone(&session);
            std::thread::spawn(move || {
                session
                    .run(&ScenarioConfig::small().with_seed(700 + t).with_trials(200))
                    .unwrap()
                    .yelt_rows
            })
        })
        .collect();
    let rows: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let mut dirs = vec![dir.clone()];
    dirs.extend((1..8).map(|r| dir.join(format!("run-{r:03}"))));
    let mut read_rows: Vec<usize> = dirs
        .iter()
        .map(|d| ShardedReader::open(d).unwrap().rows() as usize)
        .collect();
    // Run ids are claim-ordered, not input-ordered: compare as multisets.
    read_rows.sort_unstable();
    let mut want = rows.clone();
    want.sort_unstable();
    assert_eq!(read_rows, want);
    // clear_store wipes all eight spills in one call.
    session.clear_store().unwrap();
    for d in &dirs {
        assert!(ShardedReader::open(d).is_err(), "{}", d.display());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
