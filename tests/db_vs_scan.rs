//! The E4 claim as an integration test: the relational engine gets the
//! same answers as the columnar scan, but its indexed (random-access)
//! plan touches far more pages — while the streaming plans agree on
//! cost shape.

use riskpipe::core::ScenarioConfig;
use riskpipe::db::YeltTable;
use riskpipe::tables::Yelt;

#[test]
fn relational_and_columnar_agree_and_costs_diverge() {
    let stage1 = ScenarioConfig::small()
        .with_seed(71)
        .build_stage1()
        .unwrap();
    let yelt = Yelt::from_yet_elt(&stage1.year_event_table(), &stage1.output.books[0].elt);

    // Columnar streaming reference.
    let (columnar, col_stats) = yelt.scan_aggregate_by_trial();

    // Relational engine, both plans.
    let table = YeltTable::load(&yelt).unwrap();
    let (indexed, indexed_cost) = table.aggregate_by_trial_indexed().unwrap();
    let (scanned, scan_cost) = table.aggregate_by_trial_scan();

    // All three agree (relative tolerance: the columnar scan uses
    // compensated summation, the row-store plans sum naively).
    for t in 0..columnar.len() {
        let tol = 1e-9 * columnar[t].abs().max(1.0);
        assert!(
            (columnar[t] - indexed[t]).abs() < tol,
            "trial {t} indexed: {} vs {}",
            columnar[t],
            indexed[t]
        );
        assert!(
            (columnar[t] - scanned[t]).abs() < tol,
            "trial {t} scanned: {} vs {}",
            columnar[t],
            scanned[t]
        );
    }

    // The paper's point: random access costs far more I/O than a scan.
    let random_io = indexed_cost.heap_pages + indexed_cost.index_nodes;
    let scan_io = scan_cost.heap_pages;
    assert!(
        random_io > 3 * scan_io,
        "random {random_io} vs scan {scan_io}: expected a wide gap"
    );

    // And the relational row-store is bulkier than the columnar layout.
    let columnar_bytes = col_stats.bytes;
    let rowstore_bytes = (table.pages() * riskpipe::db::PAGE_SIZE) as u64;
    assert!(
        rowstore_bytes > columnar_bytes,
        "row store {rowstore_bytes} vs columnar {columnar_bytes}"
    );
}
