//! Cross-crate property tests on the pipeline's core invariants.

use proptest::prelude::*;
use riskpipe::aggregate::{
    engines_agree, AggregateOptions, AggregateRunner, EngineKind, Layer, LayerTerms, Portfolio,
};
use riskpipe::exec::ThreadPool;
use riskpipe::metrics::{tvar, var};
use riskpipe::tables::elt::{EltBuilder, EltRecord};
use riskpipe::tables::yet::{Occurrence, YetBuilder};
use riskpipe::types::{EventId, LayerId};
use std::sync::Arc;

/// The stage-2 front end on the reference engine — integration tests go
/// through runners, never engine structs.
fn sequential(opts: &AggregateOptions) -> AggregateRunner {
    AggregateRunner::new(EngineKind::Sequential).with_options(*opts)
}

/// Strategy: a small random ELT.
fn arb_elt(max_events: u32) -> impl Strategy<Value = Vec<(u32, f64)>> {
    prop::collection::btree_map(0..max_events, 10.0..5_000.0f64, 1..60)
        .prop_map(|m| m.into_iter().collect())
}

/// Strategy: a random YET as (trial occurrence lists).
fn arb_yet(max_events: u32) -> impl Strategy<Value = Vec<Vec<(u32, f64)>>> {
    prop::collection::vec(
        prop::collection::vec((0..max_events, 0.001..0.999f64), 0..6),
        1..40,
    )
}

fn build_portfolio(rows: &[(u32, f64)], terms: LayerTerms) -> Portfolio {
    let mut b = EltBuilder::new();
    for &(e, mean) in rows {
        b.push(EltRecord {
            event_id: EventId::new(e),
            mean_loss: mean,
            sigma_i: mean * 0.3,
            sigma_c: mean * 0.1,
            exposure: mean * 6.0,
        })
        .unwrap();
    }
    let elt = Arc::new(b.build().unwrap());
    let mut p = Portfolio::new();
    p.push(Layer::new(LayerId::new(0), terms, elt).unwrap());
    p
}

fn build_yet(trials: &[Vec<(u32, f64)>]) -> riskpipe::tables::YearEventTable {
    let mut yb = YetBuilder::new();
    for t in trials {
        let occs: Vec<Occurrence> = t
            .iter()
            .enumerate()
            .map(|(i, &(e, z))| Occurrence {
                event_id: EventId::new(e),
                day: (i * 30 % 365) as u16,
                z,
            })
            .collect();
        yb.push_trial(&occs);
    }
    yb.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every engine equals the sequential reference on arbitrary
    /// inputs (not just the fixtures unit tests chose).
    #[test]
    fn engines_agree_on_arbitrary_inputs(
        rows in arb_elt(100),
        trials in arb_yet(120),
        ret in 0.0..2_000.0f64,
        lim in 100.0..50_000.0f64,
    ) {
        let portfolio = build_portfolio(&rows, LayerTerms::xl(ret, lim));
        let yet = build_yet(&trials);
        let opts = AggregateOptions::default();
        let agreed = engines_agree(&portfolio, &yet, &opts, Arc::new(ThreadPool::new(3)));
        prop_assert!(agreed.is_ok(), "engines diverged: {:?}", agreed.err());
    }

    /// Tightening occurrence terms can only reduce losses, trial by
    /// trial (monotonicity of the financial structure).
    #[test]
    fn tighter_terms_never_increase_losses(
        rows in arb_elt(60),
        trials in arb_yet(80),
        ret in 0.0..1_000.0f64,
    ) {
        let yet = build_yet(&trials);
        let loose = build_portfolio(&rows, LayerTerms::xl(ret, f64::INFINITY));
        let tight = build_portfolio(&rows, LayerTerms::xl(ret + 500.0, f64::INFINITY));
        let opts = AggregateOptions { secondary_uncertainty: false, ..AggregateOptions::default() };
        let ylt_loose = sequential(&opts).run(&loose, &yet).unwrap();
        let ylt_tight = sequential(&opts).run(&tight, &yet).unwrap();
        for t in 0..ylt_loose.trials() {
            prop_assert!(ylt_tight.agg_losses()[t] <= ylt_loose.agg_losses()[t] + 1e-9);
            prop_assert!(ylt_tight.max_occ_losses()[t] <= ylt_loose.max_occ_losses()[t] + 1e-9);
        }
    }

    /// YLT structural invariants hold on arbitrary inputs: the max
    /// occurrence loss never exceeds the aggregate, and zero-count
    /// trials have zero losses.
    #[test]
    fn ylt_invariants(rows in arb_elt(60), trials in arb_yet(80)) {
        let portfolio = build_portfolio(&rows, LayerTerms::pass_through());
        let yet = build_yet(&trials);
        let opts = AggregateOptions { secondary_uncertainty: false, ..AggregateOptions::default() };
        let ylt = sequential(&opts).run(&portfolio, &yet).unwrap();
        for t in 0..ylt.trials() {
            let agg = ylt.agg_losses()[t];
            let max = ylt.max_occ_losses()[t];
            let n = ylt.occ_counts()[t];
            prop_assert!(max <= agg + 1e-9, "max {max} > agg {agg}");
            if n == 0 {
                prop_assert_eq!(agg, 0.0);
                prop_assert_eq!(max, 0.0);
            } else {
                prop_assert!(agg > 0.0);
                // Aggregate is at most count × max.
                prop_assert!(agg <= n as f64 * max + 1e-9);
            }
        }
    }

    /// VaR/TVaR sanity on arbitrary samples: TVaR dominates VaR and both
    /// are monotone in alpha.
    #[test]
    fn risk_measures_ordering(
        losses in prop::collection::vec(0.0..1e6f64, 10..500),
        a1 in 0.5..0.8f64,
        a2 in 0.8..0.99f64,
    ) {
        prop_assert!(tvar(&losses, a1) >= var(&losses, a1) - 1e-9);
        prop_assert!(tvar(&losses, a2) >= var(&losses, a2) - 1e-9);
        prop_assert!(var(&losses, a2) >= var(&losses, a1) - 1e-9);
        prop_assert!(tvar(&losses, a2) >= tvar(&losses, a1) - 1e-9);
    }
}
