//! Metric validation against closed forms: the estimators the pipeline
//! reports (VaR, TVaR, PML) must converge to analytic values on known
//! distributions.

use riskpipe::metrics::{tvar, var, EpCurve, EpKind};
use riskpipe::types::dist::{Distribution, Exponential, LogNormal};
use riskpipe::types::rng::Pcg64;

#[test]
fn exponential_var_and_tvar_match_closed_form() {
    // Exp(rate λ): VaR_α = −ln(1−α)/λ; TVaR_α = VaR_α + 1/λ.
    let rate = 0.001;
    let d = Exponential::new(rate);
    let mut rng = Pcg64::new(81);
    let losses = d.sample_n(&mut rng, 400_000);
    for &alpha in &[0.9f64, 0.99] {
        let analytic_var = -(1.0 - alpha).ln() / rate;
        let analytic_tvar = analytic_var + 1.0 / rate;
        let est_var = var(&losses, alpha);
        let est_tvar = tvar(&losses, alpha);
        assert!(
            (est_var - analytic_var).abs() / analytic_var < 0.02,
            "VaR {alpha}: {est_var} vs {analytic_var}"
        );
        assert!(
            (est_tvar - analytic_tvar).abs() / analytic_tvar < 0.02,
            "TVaR {alpha}: {est_tvar} vs {analytic_tvar}"
        );
    }
}

#[test]
fn lognormal_pml_matches_quantile_formula() {
    // LN(mu, sigma): q_p = exp(mu + sigma Φ⁻¹(p)).
    let (mu, sigma) = (10.0, 1.2);
    let d = LogNormal::new(mu, sigma);
    let mut rng = Pcg64::new(82);
    let losses = d.sample_n(&mut rng, 400_000);
    let curve = EpCurve::from_losses(EpKind::Aep, losses);
    for &rp in &[10.0, 100.0] {
        let p = 1.0 - 1.0 / rp;
        let analytic = (mu + sigma * riskpipe::types::special::normal_icdf(p)).exp();
        let est = curve.pml(rp);
        assert!(
            (est - analytic).abs() / analytic < 0.03,
            "PML {rp}y: {est} vs {analytic}"
        );
    }
}

#[test]
fn ep_curve_probabilities_are_consistent_with_pml() {
    let d = Exponential::new(0.01);
    let mut rng = Pcg64::new(83);
    let curve = EpCurve::from_losses(EpKind::Aep, d.sample_n(&mut rng, 100_000));
    // P(loss > PML(T)) ≈ 1/T by construction.
    for &rp in &[5.0, 50.0] {
        let pml = curve.pml(rp);
        let p = curve.prob_exceed(pml);
        assert!(
            (p - 1.0 / rp).abs() < 0.2 / rp,
            "rp {rp}: prob {p} vs {}",
            1.0 / rp
        );
    }
}
