//! Persistence integration: every table survives the encode → file →
//! decode round trip, and corruption is detected, end to end.

use riskpipe::aggregate::{AggregateRunner, EngineKind};
use riskpipe::core::ScenarioConfig;
use riskpipe::tables::Yelt;
use riskpipe::tables::{codec, shard};
use std::fs;
use std::path::PathBuf;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("riskpipe-persist-{tag}-{}", std::process::id()))
}

#[test]
fn full_scenario_tables_round_trip_through_files() {
    let stage1 = ScenarioConfig::small()
        .with_seed(51)
        .build_stage1()
        .unwrap();
    let dir = temp("tables");
    fs::create_dir_all(&dir).unwrap();

    // ELT.
    let elt = &stage1.output.books[0].elt;
    let path = dir.join("book0.elt");
    shard::write_table_file(&path, &codec::encode_elt(elt)).unwrap();
    let elt_back = shard::read_elt_file(&path).unwrap();
    assert_eq!(elt_back.len(), elt.len());
    assert_eq!(elt_back.total_mean_loss(), elt.total_mean_loss());

    // YET.
    let yet = stage1.year_event_table();
    let path = dir.join("scenario.yet");
    shard::write_table_file(&path, &codec::encode_yet(&yet)).unwrap();
    let yet_back = shard::read_yet_file(&path).unwrap();
    assert_eq!(yet_back.trials(), yet.trials());
    assert_eq!(yet_back.total_occurrences(), yet.total_occurrences());

    // YELT built from the persisted inputs equals the in-memory join.
    let yelt_mem = Yelt::from_yet_elt(&yet, elt);
    let yelt_file = Yelt::from_yet_elt(&yet_back, &elt_back);
    assert_eq!(yelt_mem.rows(), yelt_file.rows());
    let path = dir.join("book0.yelt");
    shard::write_table_file(&path, &codec::encode_yelt(&yelt_mem)).unwrap();
    let yelt_back = shard::read_yelt_file(&path).unwrap();
    let (sums_a, _) = yelt_mem.scan_aggregate_by_trial();
    let (sums_b, _) = yelt_back.scan_aggregate_by_trial();
    assert_eq!(sums_a, sums_b);

    // YLT: the analysis of decoded inputs is bit-identical.
    let portfolio = stage1.portfolio();
    let ylt = AggregateRunner::new(EngineKind::Sequential)
        .run(&portfolio, &yet)
        .unwrap();
    let path = dir.join("portfolio.ylt");
    shard::write_table_file(&path, &codec::encode_ylt(&ylt)).unwrap();
    let ylt_back = shard::read_ylt_file(&path).unwrap();
    assert_eq!(ylt_back, ylt);

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_files_are_rejected_not_misread() {
    let stage1 = ScenarioConfig::small()
        .with_seed(52)
        .with_trials(200)
        .build_stage1()
        .unwrap();
    let dir = temp("corrupt");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.yet");
    shard::write_table_file(&path, &codec::encode_yet(&stage1.year_event_table())).unwrap();

    let original = fs::read(&path).unwrap();
    // Flip one byte at several positions: header, length, payload.
    for pos in [0usize, 5, 10, original.len() / 2, original.len() - 1] {
        let mut bad = original.clone();
        bad[pos] ^= 0x40;
        fs::write(&path, &bad).unwrap();
        assert!(
            shard::read_yet_file(&path).is_err(),
            "corruption at byte {pos} went undetected"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}
