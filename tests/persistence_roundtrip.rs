//! Persistence integration: every table survives the encode → file →
//! decode round trip, and corruption is detected, end to end.

use proptest::prelude::*;
use riskpipe::aggregate::{AggregateRunner, EngineKind};
use riskpipe::core::ScenarioConfig;
use riskpipe::tables::codec::HEADER_BYTES;
use riskpipe::tables::Yelt;
use riskpipe::tables::{codec, shard};
use riskpipe_types::{RiskError, RiskResult};
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("riskpipe-persist-{tag}-{}", std::process::id()))
}

#[test]
fn full_scenario_tables_round_trip_through_files() {
    let stage1 = ScenarioConfig::small()
        .with_seed(51)
        .build_stage1()
        .unwrap();
    let dir = temp("tables");
    fs::create_dir_all(&dir).unwrap();

    // ELT.
    let elt = &stage1.output.books[0].elt;
    let path = dir.join("book0.elt");
    shard::write_table_file(&path, &codec::encode_elt(elt)).unwrap();
    let elt_back = shard::read_elt_file(&path).unwrap();
    assert_eq!(elt_back.len(), elt.len());
    assert_eq!(elt_back.total_mean_loss(), elt.total_mean_loss());

    // YET.
    let yet = stage1.year_event_table();
    let path = dir.join("scenario.yet");
    shard::write_table_file(&path, &codec::encode_yet(&yet)).unwrap();
    let yet_back = shard::read_yet_file(&path).unwrap();
    assert_eq!(yet_back.trials(), yet.trials());
    assert_eq!(yet_back.total_occurrences(), yet.total_occurrences());

    // YELT built from the persisted inputs equals the in-memory join.
    let yelt_mem = Yelt::from_yet_elt(&yet, elt);
    let yelt_file = Yelt::from_yet_elt(&yet_back, &elt_back);
    assert_eq!(yelt_mem.rows(), yelt_file.rows());
    let path = dir.join("book0.yelt");
    shard::write_table_file(&path, &codec::encode_yelt(&yelt_mem)).unwrap();
    let yelt_back = shard::read_yelt_file(&path).unwrap();
    let (sums_a, _) = yelt_mem.scan_aggregate_by_trial();
    let (sums_b, _) = yelt_back.scan_aggregate_by_trial();
    assert_eq!(sums_a, sums_b);

    // YLT: the analysis of decoded inputs is bit-identical.
    let portfolio = stage1.portfolio();
    let ylt = AggregateRunner::new(EngineKind::Sequential)
        .run(&portfolio, &yet)
        .unwrap();
    let path = dir.join("portfolio.ylt");
    shard::write_table_file(&path, &codec::encode_ylt(&ylt)).unwrap();
    let ylt_back = shard::read_ylt_file(&path).unwrap();
    assert_eq!(ylt_back, ylt);

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_files_are_rejected_not_misread() {
    let stage1 = ScenarioConfig::small()
        .with_seed(52)
        .with_trials(200)
        .build_stage1()
        .unwrap();
    let dir = temp("corrupt");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.yet");
    shard::write_table_file(&path, &codec::encode_yet(&stage1.year_event_table())).unwrap();

    let original = fs::read(&path).unwrap();
    // Flip one byte at several positions: header, length, payload.
    for pos in [0usize, 5, 10, original.len() / 2, original.len() - 1] {
        let mut bad = original.clone();
        bad[pos] ^= 0x40;
        fs::write(&path, &bad).unwrap();
        assert!(
            shard::read_yet_file(&path).is_err(),
            "corruption at byte {pos} went undetected"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Exhaustive damage coverage over a persisted YLT: any truncation and
// any single-byte flip must surface as `RiskError::Corrupt` at load —
// never a panic, never a silently wrong table.
// ---------------------------------------------------------------------

/// The encoded YLT fixture, built once for the whole damage suite.
fn encoded_ylt() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let stage1 = ScenarioConfig::small()
            .with_seed(53)
            .with_trials(200)
            .build_stage1()
            .unwrap();
        let ylt = AggregateRunner::new(EngineKind::Sequential)
            .run(&stage1.portfolio(), &stage1.year_event_table())
            .unwrap();
        codec::encode_ylt(&ylt).to_vec()
    })
}

/// Write `bytes` to a scratch file and load it back as a YLT.
fn load_damaged(bytes: &[u8], tag: &str) -> RiskResult<riskpipe::tables::Ylt> {
    let path = temp(tag);
    fs::write(&path, bytes).unwrap();
    let result = shard::read_ylt_file(&path);
    fs::remove_file(&path).ok();
    result
}

#[test]
fn ylt_truncated_at_every_frame_boundary_is_corrupt() {
    let full = encoded_ylt();
    // The file is one frame: its boundaries are the empty prefix, the
    // header/payload seam, and every header field edge; a handful of
    // interior payload cuts ride along.
    let mut cuts = vec![
        0,
        1,
        4,
        6,
        8,
        16,
        HEADER_BYTES - 1,
        HEADER_BYTES,
        HEADER_BYTES + 1,
        full.len() / 2,
        full.len() - 1,
    ];
    cuts.dedup();
    for cut in cuts {
        let result = load_damaged(&full[..cut], "cutfix");
        assert!(
            matches!(result, Err(RiskError::Corrupt(_))),
            "truncation to {cut} bytes: {result:?}"
        );
    }
}

#[test]
fn ylt_one_flip_per_header_region_is_corrupt() {
    let full = encoded_ylt();
    // One representative byte per frame region: magic, version, kind,
    // length, checksum, payload (the pad byte is the one byte the
    // format does not authenticate).
    for (region, pos) in [
        ("magic", 0usize),
        ("version", 4),
        ("kind", 6),
        ("len", 12),
        ("crc", 16),
        ("payload", HEADER_BYTES + full.len() / 3),
    ] {
        let mut bad = full.to_vec();
        bad[pos] ^= 0x01;
        let result = load_damaged(&bad, "flipfix");
        assert!(
            matches!(result, Err(RiskError::Corrupt(_))),
            "flip in {region} (byte {pos}): {result:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at *any* offset is corrupt, never a panic and never
    /// a shorter-but-readable table.
    #[test]
    fn ylt_truncated_anywhere_is_corrupt(cut_raw in any::<u64>()) {
        let full = encoded_ylt();
        let cut = (cut_raw % full.len() as u64) as usize;
        let result = load_damaged(&full[..cut], "cut");
        prop_assert!(
            matches!(result, Err(RiskError::Corrupt(_))),
            "truncation to {} bytes: {:?}", cut, result
        );
    }

    /// Any single-bit flip outside the unauthenticated pad byte is
    /// corrupt — including flips in the length field, which must not
    /// panic however implausible the resulting length is.
    #[test]
    fn ylt_single_bit_flip_is_corrupt(
        pos_raw in any::<u64>(),
        bit in 0u8..8,
    ) {
        let full = encoded_ylt();
        let pos = (pos_raw % full.len() as u64) as usize;
        // Byte 7 is the header pad: ignored by design, not covered by
        // the payload checksum.
        prop_assume!(pos != 7);
        let mut bad = full.to_vec();
        bad[pos] ^= 1 << bit;
        let result = load_damaged(&bad, "flip");
        prop_assert!(
            matches!(result, Err(RiskError::Corrupt(_))),
            "flip at byte {} bit {}: {:?}", pos, bit, result
        );
    }
}
