//! Cross-engine equivalence: the sequential, CPU-parallel and both
//! simulated-GPU engines must produce bit-identical Year-Loss Tables on
//! the same inputs — the property that makes the speedup comparisons of
//! experiment E1 meaningful.

use riskpipe::aggregate::{engines_agree, AggregateOptions, QuantileMode};
use riskpipe::core::ScenarioConfig;
use riskpipe::exec::ThreadPool;
use std::sync::Arc;

#[test]
fn all_engines_agree_on_scenario_with_secondary_uncertainty() {
    let stage1 = ScenarioConfig::small()
        .with_seed(31)
        .build_stage1()
        .unwrap();
    let pool = Arc::new(ThreadPool::new(4));
    let ylt = engines_agree(
        &stage1.portfolio(),
        &stage1.year_event_table(),
        &AggregateOptions::default(),
        pool,
    )
    .expect("engines diverged");
    assert_eq!(ylt.trials(), 2_000);
    assert!(ylt.mean_annual_loss() > 0.0);
}

#[test]
fn all_engines_agree_without_secondary_uncertainty() {
    let stage1 = ScenarioConfig::small()
        .with_seed(32)
        .build_stage1()
        .unwrap();
    let pool = Arc::new(ThreadPool::new(2));
    engines_agree(
        &stage1.portfolio(),
        &stage1.year_event_table(),
        &AggregateOptions {
            secondary_uncertainty: false,
            ..AggregateOptions::default()
        },
        pool,
    )
    .expect("engines diverged");
}

#[test]
fn all_engines_agree_with_exact_quantiles() {
    // The exact beta-inverse path is slower, so shrink the scenario.
    let stage1 = ScenarioConfig::small()
        .with_seed(33)
        .with_trials(300)
        .build_stage1()
        .unwrap();
    let pool = Arc::new(ThreadPool::new(4));
    engines_agree(
        &stage1.portfolio(),
        &stage1.year_event_table(),
        &AggregateOptions {
            secondary_uncertainty: true,
            quantile_mode: QuantileMode::Exact,
        },
        pool,
    )
    .expect("engines diverged");
}
