//! Golden regression test: exact (bit-level) YLT summary metrics for a
//! fixed seed, identical across all four `EngineKind`s and any thread
//! count. A refactor that silently breaks bit-identity fails here
//! loudly instead of drifting.
//!
//! The pipeline is deterministic by construction — counter-based RNG
//! streams keyed by `(seed, trial)`, one-draw inversion samplers, and
//! fixed reduction orders — so these constants are reproducible on any
//! platform with IEEE-754 doubles. If an intentional numerical change
//! moves them, re-pin via the `print_golden_values` probe below.

use riskpipe::aggregate::EngineKind;
use riskpipe::core::{PipelineReport, RiskSession, ScenarioConfig};
use riskpipe::types::RiskResult;

fn golden_scenario() -> ScenarioConfig {
    ScenarioConfig::small().with_seed(0x601D).with_trials(500)
}

/// Order-sensitive FNV-1a over every YLT column's bit patterns: any
/// single-bit drift in any trial changes it.
fn ylt_checksum(report: &PipelineReport) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
    };
    let (agg, max_occ, counts) = report.ylt.columns();
    for &x in agg {
        fold(x.to_bits());
    }
    for &x in max_occ {
        fold(x.to_bits());
    }
    for &c in counts {
        fold(c as u64);
    }
    h
}

// Pinned from the Sequential reference engine (seed 0x601D, 500
// trials); see the module docs for when re-pinning is legitimate.
const GOLDEN_YLT_CHECKSUM: u64 = 0x2ABB_D67D_238C_A309;
const GOLDEN_ELT_ROWS: usize = 3_040;
const GOLDEN_YET_OCCURRENCES: usize = 9_953;
const GOLDEN_YELT_ROWS: usize = 3_457;
const GOLDEN_MEAN_BITS: u64 = 0x418C_0268_7CC1_4D50; // 58_739_983.594…
const GOLDEN_SD_BITS: u64 = 0x4182_1D8D_EB50_1EB9; // 37_990_845.414…
const GOLDEN_VAR99_BITS: u64 = 0x41A3_46E9_61CE_AC2F; // 161_707_184.904…
const GOLDEN_TVAR99_BITS: u64 = 0x41A7_ABEB_4E97_BBBA; // 198_571_431.296…
const GOLDEN_VAR996_BITS: u64 = 0x41A5_892F_4BE7_96E4; // 180_656_037.952…
const GOLDEN_OEP_PML100_BITS: u64 = 0x4191_5DA1_FAF6_78DE; // 72_837_246.741…

fn assert_golden(report: &PipelineReport, context: &str) {
    assert_eq!(
        ylt_checksum(report),
        GOLDEN_YLT_CHECKSUM,
        "{context}: YLT checksum drifted"
    );
    assert_eq!(report.elt_rows, GOLDEN_ELT_ROWS, "{context}: ELT rows");
    assert_eq!(
        report.yet_occurrences, GOLDEN_YET_OCCURRENCES,
        "{context}: YET occurrences"
    );
    assert_eq!(report.yelt_rows, GOLDEN_YELT_ROWS, "{context}: YELT rows");
    let m = &report.measures;
    for (name, got, want) in [
        ("mean", m.mean.to_bits(), GOLDEN_MEAN_BITS),
        ("sd", m.sd.to_bits(), GOLDEN_SD_BITS),
        ("var99", m.var99.to_bits(), GOLDEN_VAR99_BITS),
        ("tvar99", m.tvar99.to_bits(), GOLDEN_TVAR99_BITS),
        ("var996", m.var996.to_bits(), GOLDEN_VAR996_BITS),
        ("oep_pml100", m.oep_pml100.to_bits(), GOLDEN_OEP_PML100_BITS),
    ] {
        assert_eq!(
            got,
            want,
            "{context}: {name} drifted (got bits 0x{got:016X}, f64 {})",
            f64::from_bits(got)
        );
    }
}

#[test]
fn golden_metrics_pinned_across_every_engine() -> RiskResult<()> {
    let scenario = golden_scenario();
    for kind in EngineKind::ALL {
        for threads in [1usize, 4] {
            let session = RiskSession::builder()
                .engine(kind)
                .pool_threads(threads)
                .build()?;
            let report = session.run(&scenario)?;
            assert_golden(&report, &format!("{kind:?} on {threads} threads"));
        }
    }
    Ok(())
}

#[test]
fn golden_metrics_hold_through_streaming_and_cache() -> RiskResult<()> {
    // The new execution paths must not perturb the pinned numbers:
    // stream a same-key sweep (cache hits) and check every report.
    let session = RiskSession::builder().pool_threads(4).build()?;
    let sweep: Vec<ScenarioConfig> = (0..3).map(|_| golden_scenario()).collect();
    let delivered = session.run_stream(&sweep, |i, report| {
        assert_golden(&report, &format!("stream slot {i}"));
        Ok(())
    })?;
    assert_eq!(delivered, 3);
    assert!(session.stage1_cache_stats().hits >= 2);
    Ok(())
}

// Pooled sweep analytics over GOLDEN_SWEEP_SCENARIOS copies of the
// golden scenario (1500 pooled trials — inside the sketch's exact
// path), pinned from the same reference run.
const GOLDEN_SWEEP_SCENARIOS: usize = 3;
const GOLDEN_POOLED_VAR99_BITS: u64 = 0x41A3_46E9_61CE_AC2F; // 161_707_184.903…
const GOLDEN_POOLED_TVAR99_BITS: u64 = 0x41A7_ABEB_4E97_BBBA; // 198_571_431.296…
const GOLDEN_POOLED_PML100_BITS: u64 = 0x41A3_46E9_61CE_AC2F; // 161_707_184.903…

#[test]
fn golden_pooled_sweep_analytics_pinned() -> RiskResult<()> {
    // The pooled sweep distribution must be as reproducible as the
    // per-scenario metrics: same bits on any thread count, streaming
    // or batch, with no per-scenario YLT retained by the summary.
    for threads in [1usize, 4] {
        let session = RiskSession::builder().pool_threads(threads).build()?;
        let sweep: Vec<ScenarioConfig> = (0..GOLDEN_SWEEP_SCENARIOS)
            .map(|_| golden_scenario())
            .collect();
        let mut summary = riskpipe::core::SweepSummary::new();
        session.run_stream(&sweep, &mut summary)?;
        assert_eq!(summary.trials(), 1500);
        assert!(summary.analytics_exact());
        let context = format!("pooled sweep on {threads} threads");
        for (name, got, want) in [
            (
                "pooled_var99",
                summary.pooled_var99().unwrap().to_bits(),
                GOLDEN_POOLED_VAR99_BITS,
            ),
            (
                "pooled_tvar99",
                summary.pooled_tvar99().unwrap().to_bits(),
                GOLDEN_POOLED_TVAR99_BITS,
            ),
            (
                "pooled_pml100",
                summary.pooled_pml(100.0).unwrap().to_bits(),
                GOLDEN_POOLED_PML100_BITS,
            ),
        ] {
            assert_eq!(
                got,
                want,
                "{context}: {name} drifted (got bits 0x{got:016X}, f64 {})",
                f64::from_bits(got)
            );
        }
    }
    Ok(())
}

#[test]
#[ignore = "probe: prints the golden values to pin after an intentional numerical change"]
fn print_golden_values() -> RiskResult<()> {
    let session = RiskSession::builder()
        .engine(EngineKind::Sequential)
        .pool_threads(2)
        .build()?;
    let r = session.run(&golden_scenario())?;
    println!("checksum        0x{:016X}", ylt_checksum(&r));
    println!("elt_rows        {}", r.elt_rows);
    println!("yet_occurrences {}", r.yet_occurrences);
    println!("yelt_rows       {}", r.yelt_rows);
    for (name, v) in [
        ("mean", r.measures.mean),
        ("sd", r.measures.sd),
        ("var99", r.measures.var99),
        ("tvar99", r.measures.tvar99),
        ("var996", r.measures.var996),
        ("oep_pml100", r.measures.oep_pml100),
    ] {
        println!("{name:15} 0x{:016X} // {v:?}", v.to_bits());
    }
    let sweep: Vec<ScenarioConfig> = (0..GOLDEN_SWEEP_SCENARIOS)
        .map(|_| golden_scenario())
        .collect();
    let mut summary = riskpipe::core::SweepSummary::new();
    session.run_stream(&sweep, &mut summary)?;
    for (name, v) in [
        ("pooled_var99", summary.pooled_var99().unwrap()),
        ("pooled_tvar99", summary.pooled_tvar99().unwrap()),
        ("pooled_pml100", summary.pooled_pml(100.0).unwrap()),
    ] {
        println!("{name:15} 0x{:016X} // {v:?}", v.to_bits());
    }
    Ok(())
}
