//! Property tests for non-finite propagation and merge equivalence in
//! the statistics primitives behind sweep analytics: `quantile_sorted`
//! / `tail_mean_sorted` (total_cmp ordering must surface NaN/inf, not
//! hide it), `RunningStats::merge` (chunked == single-stream, poison
//! propagates), and the `QuantileSketch` (exact-path bit-equivalence
//! to the sorted helpers under any chunking, deterministic sketched
//! path within its tracked rank-error bound).
//!
//! The vendored proptest shim derives its case stream from the test
//! name, so these are deterministic: a passing run passes everywhere.

use proptest::prelude::*;
use riskpipe::metrics::QuantileSketch;
use riskpipe::types::stats::{quantile_sorted, sort_f64, tail_mean_sorted};
use riskpipe::types::RunningStats;

/// Deterministic pseudo-random finite losses (heavy-ish tail).
fn losses(n: usize, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = ((i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(salt)
                >> 33) as f64;
            (x % 100_003.0) * 1.7
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // ---- quantile_sorted / tail_mean_sorted -------------------------

    #[test]
    fn nan_sorts_last_and_owns_the_top_quantile(
        n in 2usize..60,
        nans in 1usize..4,
        salt in any::<u64>(),
    ) {
        let mut xs = losses(n, salt);
        xs.extend(std::iter::repeat_n(f64::NAN, nans));
        sort_f64(&mut xs);
        // total_cmp puts every NaN at the end…
        prop_assert!(xs[xs.len() - nans..].iter().all(|x| x.is_nan()));
        prop_assert!(xs[..xs.len() - nans].iter().all(|x| !x.is_nan()));
        // …so the maximum quantile is NaN (poison is visible)…
        prop_assert!(quantile_sorted(&xs, 1.0).is_nan());
        // …while quantiles strictly inside the finite block are clean.
        let clean_q = (n as f64 - 1.5) / (xs.len() - 1) as f64;
        prop_assert!(!quantile_sorted(&xs, clean_q.max(0.0)).is_nan());
        // Any tail window reaching the NaN block is NaN, including the
        // whole-sample mean.
        prop_assert!(tail_mean_sorted(&xs, 0.0).is_nan());
        prop_assert!(tail_mean_sorted(&xs, 1.0).is_nan());
    }

    #[test]
    fn infinity_dominates_top_quantiles_without_poisoning_low_ones(
        n in 4usize..60,
        salt in any::<u64>(),
    ) {
        let mut xs = losses(n, salt);
        xs.push(f64::INFINITY);
        xs.push(f64::NEG_INFINITY);
        sort_f64(&mut xs);
        prop_assert_eq!(quantile_sorted(&xs, 0.0), f64::NEG_INFINITY);
        prop_assert_eq!(quantile_sorted(&xs, 1.0), f64::INFINITY);
        prop_assert!(quantile_sorted(&xs, 0.5).is_finite());
        // A tail containing +inf has an infinite conditional mean.
        prop_assert_eq!(tail_mean_sorted(&xs, 1.0), f64::INFINITY);
    }

    // ---- RunningStats::merge ---------------------------------------

    #[test]
    fn running_stats_merge_matches_single_stream_for_any_chunking(
        n in 1usize..400,
        chunk in 1usize..97,
        salt in any::<u64>(),
    ) {
        let xs = losses(n, salt);
        let whole: RunningStats = xs.iter().copied().collect();
        let mut merged = RunningStats::new();
        for part in xs.chunks(chunk) {
            let s: RunningStats = part.iter().copied().collect();
            merged.merge(&s);
        }
        prop_assert_eq!(merged.count(), whole.count());
        let scale = whole.mean().abs().max(1.0);
        prop_assert!((merged.mean() - whole.mean()).abs() / scale < 1e-10);
        prop_assert!(
            (merged.variance() - whole.variance()).abs() / scale.powi(2).max(1.0) < 1e-8
        );
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
    }

    #[test]
    fn running_stats_nan_poisons_mean_in_any_merge_order(
        n in 1usize..50,
        salt in any::<u64>(),
    ) {
        let clean: RunningStats = losses(n, salt).into_iter().collect();
        let mut poisoned = RunningStats::new();
        poisoned.push(f64::NAN);
        // Pushing NaN makes the mean NaN…
        prop_assert!(poisoned.mean().is_nan());
        // …and merge propagates it regardless of direction.
        let mut a = clean;
        a.merge(&poisoned);
        prop_assert!(a.mean().is_nan());
        let mut b = poisoned;
        b.merge(&clean);
        prop_assert!(b.mean().is_nan());
    }

    // ---- QuantileSketch --------------------------------------------

    #[test]
    fn exact_sketch_equals_sorted_helpers_under_any_chunking(
        n in 1usize..500,
        chunk in 1usize..120,
        q in 0.0..1.0f64,
        salt in any::<u64>(),
    ) {
        let xs = losses(n, salt);
        let mut sorted = xs.clone();
        sort_f64(&mut sorted);
        // Merge per-chunk sketches (any chunking) into one.
        let mut merged = QuantileSketch::new(1024);
        for part in xs.chunks(chunk) {
            let mut sk = QuantileSketch::new(1024);
            sk.extend(part);
            merged.merge(&sk);
        }
        // 500 < 1024: the union never compacts, so the sketch is exact
        // and BIT-identical to the batch helpers however it was fed.
        prop_assert!(merged.is_exact());
        prop_assert_eq!(
            merged.quantile(q).to_bits(),
            quantile_sorted(&sorted, q).to_bits()
        );
        prop_assert_eq!(
            merged.tail_mean(q).to_bits(),
            tail_mean_sorted(&sorted, q).to_bits()
        );
    }

    #[test]
    fn sketched_path_is_deterministic_and_within_its_bound(
        chunk in 16usize..300,
        q in 0.0..1.0f64,
        salt in any::<u64>(),
    ) {
        let n = 6_000usize;
        let xs = losses(n, salt);
        let build = || {
            let mut whole = QuantileSketch::new(64);
            for part in xs.chunks(chunk) {
                let mut sk = QuantileSketch::new(64);
                sk.extend(part);
                whole.merge(&sk);
            }
            whole
        };
        let a = build();
        // Same pushes + same merge order: bit-identical estimates.
        prop_assert_eq!(a.quantile(q).to_bits(), build().quantile(q).to_bits());
        prop_assert_eq!(a.count(), n as u64);
        prop_assert!(!a.is_exact());
        // The estimate's true rank honours the tracked worst-case
        // bound.
        let mut sorted = xs.clone();
        sort_f64(&mut sorted);
        let est = a.quantile(q);
        let lo = sorted.partition_point(|&v| v < est) as f64;
        let hi = sorted.partition_point(|&v| v <= est) as f64;
        let want = q * (n - 1) as f64;
        let bound = a.rank_error_bound() * n as f64 + 1.0;
        // The true rank of `est` is anywhere in [lo, hi] (ties).
        let err = if want < lo { lo - want } else if want > hi { want - hi } else { 0.0 };
        prop_assert!(err <= bound, "q={q}: rank err {err} > bound {bound}");
    }

    #[test]
    fn sketch_propagates_non_finite_like_the_batch_helpers(
        n in 1usize..200,
        salt in any::<u64>(),
    ) {
        let mut sk = QuantileSketch::new(64);
        sk.extend(&losses(n, salt));
        sk.push(f64::NAN);
        sk.push(f64::INFINITY);
        prop_assert!(sk.max().is_nan());
        prop_assert!(sk.quantile(1.0).is_nan());
        prop_assert!(sk.tail_mean(1.0).is_nan());
        prop_assert!(sk.quantile(0.0).is_finite());
    }
}
