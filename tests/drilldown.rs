//! Drill-down determinism: the stage-3 subsystem's contract is that
//! every cell-level tail metric is **bit-identical** across thread
//! counts and across the live-sink vs rebuild-from-store paths, and
//! that rollups compose (a parent cell is exactly the merge of its
//! children). Golden VaR99/TVaR99 cell values for the fixture sweep
//! are pinned below; re-pin via the `print_drilldown_golden` probe
//! after an intentional numerical change.

use proptest::prelude::*;
use riskpipe::core::{PersistingSink, ShardedFilesStore};
use riskpipe::prelude::*;
use riskpipe::warehouse::{dim, LevelSelect, SketchCell, SketchCuboid, SketchRow};
use riskpipe_types::stats::sort_f64;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("riskpipe-ddtest-{tag}-{}-{n}", std::process::id()))
}

/// The fixture sweep: 2 regions × 2 perils × 2 attachment points,
/// 200 trials each. Scenarios sharing a (region, peril) book share a
/// stage-1 key, so the sweep also exercises the cache.
fn fixture() -> (Vec<ScenarioConfig>, Vec<ScenarioDims>) {
    let mut scenarios = Vec::new();
    let mut dims = Vec::new();
    for region in 0..2u32 {
        for peril in 0..2u32 {
            for attach in 0..2u32 {
                let factor = 0.25 + 0.25 * attach as f64;
                let scenario = ScenarioConfig::small()
                    .with_seed(0xD211 + (region * 2 + peril) as u64)
                    .with_trials(200)
                    .with_attachment_factor(factor)
                    .with_name(format!("r{region}-p{peril}-a{attach}"));
                dims.push(ScenarioDims::for_scenario(region, peril, &scenario));
                scenarios.push(scenario);
            }
        }
    }
    (scenarios, dims)
}

/// The three acceptance query shapes.
fn queries() -> [Query; 3] {
    [
        // Rollup: pooled per region × peril.
        Query::group_by(LevelSelect([0, 0, 3, 1])),
        // Slice: region 1 only, peril × attachment band.
        Query::group_by(LevelSelect([0, 0, 1, 1])).filter(Filter::slice(dim::GEO, 1)),
        // Dice: tail bands (≥50y) only, per region × peril.
        Query::group_by(LevelSelect([0, 0, 3, 0])).filter(Filter {
            dim: dim::TIME,
            codes: vec![5, 6],
        }),
    ]
}

/// One cell reduced to comparable bits: codes, count, VaR99, TVaR99.
type CellSig = ([u32; 4], u64, u64, u64);

/// A query result reduced to a comparable bit-level signature.
fn signature(rows: &[SketchRow]) -> Vec<CellSig> {
    rows.iter()
        .map(|r| {
            (
                r.codes,
                r.cell.count,
                r.cell.var99().expect("non-empty cell").to_bits(),
                r.cell.tvar99().expect("non-empty cell").to_bits(),
            )
        })
        .collect()
}

// The deprecated sweep_to_warehouse shim feeds the golden pins below
// on purpose: it must keep producing bit-identical cells until
// removal (tests/sweep_plan.rs pins the plan path against it).
#[allow(deprecated)]
fn warehouse_on(threads: usize) -> Drilldown {
    let (scenarios, dims) = fixture();
    let session = RiskSession::builder()
        .pool_threads(threads)
        .build()
        .unwrap();
    let layout = DrilldownLayout::new(dims, session.engine()).unwrap();
    let mut wh = session
        .analytics(layout)
        .sweep_to_warehouse(&scenarios)
        .unwrap();
    wh.materialize_budget(256 * 1024).unwrap();
    wh
}

// Golden rollup cells (region × peril, pooled over layers and bands)
// for the fixture sweep, pinned from the 1-thread reference run. The
// pipeline and the drill-down fold are deterministic by construction,
// so these bits are reproducible on any platform with IEEE-754
// doubles.
const GOLDEN_ROLLUP: [CellSig; 4] = [
    ([0, 0, 0, 0], 400, 0x41A3004036E3467C, 0x41A62EDCA0846502),
    ([0, 1, 0, 0], 400, 0x41A19FE7698A7F00, 0x41A4C0E9CC2D5F07),
    ([1, 0, 0, 0], 400, 0x41A35E094F348706, 0x41A3F791AFA41306),
    ([1, 1, 0, 0], 400, 0x41A4C65000922BCF, 0x41A995A51EAEDFEB),
];

#[test]
fn drilldown_cells_bit_identical_across_threads_and_pinned() {
    let reference: Vec<Vec<CellSig>> = {
        let wh = warehouse_on(1);
        queries()
            .iter()
            .map(|q| signature(&wh.answer(q).unwrap().0))
            .collect()
    };
    // Pin the rollup query's cells bit-exactly.
    assert_eq!(
        reference[0],
        GOLDEN_ROLLUP.to_vec(),
        "golden rollup cells drifted; re-pin via print_drilldown_golden \
         only after an intentional numerical change"
    );
    // Every query shape must agree bit-for-bit on 2 and 8 threads.
    for threads in [2usize, 8] {
        let wh = warehouse_on(threads);
        for (i, q) in queries().iter().enumerate() {
            let sig = signature(&wh.answer(q).unwrap().0);
            assert_eq!(sig, reference[i], "query {i} drifted on {threads} threads");
        }
    }
}

#[test]
#[allow(deprecated)] // sweep_to_warehouse must stay bit-identical until removal
fn live_sink_store_decorator_and_rebuild_agree_bitwise() {
    let (scenarios, dims) = fixture();
    let session = RiskSession::builder().pool_threads(2).build().unwrap();
    let layout = DrilldownLayout::new(dims, session.engine()).unwrap();
    let handle = session.analytics(layout.clone());

    // Path A: live WarehouseSink.
    let live = handle.sweep_to_warehouse(&scenarios).unwrap();

    // Path B: PersistingSink over a WarehouseStore decorating a
    // ShardedFilesStore — durable spill + cubes for free.
    let dir = temp("spill");
    let files = Arc::new(ShardedFilesStore::new(&dir, 2).unwrap());
    let decorated = Arc::new(WarehouseStore::new(
        files.clone(),
        WarehouseSink::new(layout.clone()).unwrap(),
    ));
    let mut sink = PersistingSink::new(decorated.clone());
    session.run_stream(&scenarios, &mut sink).unwrap();
    assert_eq!(sink.reports_persisted(), scenarios.len() as u64);
    let from_decorator = decorated.drilldown().unwrap();

    // Path C: rebuild from the spill alone.
    let rebuilt = handle.rebuild_from_store(&files, 0).unwrap();
    assert_eq!(rebuilt.ingest_stats().reports, scenarios.len() as u64);

    for q in queries() {
        let want = signature(&live.answer(&q).unwrap().0);
        for (label, wh) in [("decorator", &from_decorator), ("rebuild", &rebuilt)] {
            let got = signature(&wh.answer(&q).unwrap().0);
            assert_eq!(got, want, "{label} path drifted for {q:?}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budget_selection_respects_budget_and_serves_queries() {
    let mut wh = warehouse_on(2);
    let total_lattice_bytes: u64 = {
        // A huge budget materialises whatever helps; measure its spend.
        let sel = wh.materialize_budget(u64::MAX).unwrap();
        assert!(!sel.picked.is_empty());
        wh.memory_bytes() as u64
    };
    let budget = total_lattice_bytes / 4;
    let sel = wh.materialize_budget(budget).unwrap();
    let views_bytes = wh.memory_bytes() as u64 - wh.base().memory_bytes() as u64;
    assert!(views_bytes <= budget, "{views_bytes} > budget {budget}");
    assert!(sel.cost_after <= sel.cost_before);
    // Queries still answer (from views or the base) with no fact scan.
    for q in queries() {
        let (rows, cost) = wh.answer(&q).unwrap();
        assert!(!rows.is_empty());
        assert_eq!(cost.facts_read, 0);
    }
}

#[test]
#[ignore = "probe: prints the golden drill-down cells to pin after an intentional numerical change"]
fn print_drilldown_golden() {
    let wh = warehouse_on(1);
    let (rows, _) = wh.answer(&queries()[0]).unwrap();
    for (codes, count, var, tvar) in signature(&rows) {
        println!("    ({codes:?}, {count}, 0x{var:016X}, 0x{tvar:016X}),");
    }
}

// ---------------------------------------------------------------------
// Rollup composition property: any rollup of child cells merges to the
// parent cell's sketch.
// ---------------------------------------------------------------------

fn prop_layout() -> DrilldownLayout {
    let dims = vec![
        ScenarioDims {
            region: 0,
            peril: 0,
            attachment_band: 1,
        },
        ScenarioDims {
            region: 0,
            peril: 1,
            attachment_band: 2,
        },
        ScenarioDims {
            region: 1,
            peril: 0,
            attachment_band: 1,
        },
        ScenarioDims {
            region: 1,
            peril: 1,
            attachment_band: 2,
        },
    ];
    DrilldownLayout::new(dims, EngineKind::CpuParallel)
        .unwrap()
        .with_sketch_k(4096)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_rollup_of_child_cells_merges_to_the_parent_sketch(
        columns in prop::collection::vec(
            prop::collection::vec(0.0f64..1e9, 0..40),
            32
        ),
        target_geo in 0u8..2, target_event in 0u8..2,
        target_contract in 0u8..4, target_time in 0u8..2,
        mid_scale in 0.0f64..1.0,
    ) {
        let layout = prop_layout();
        let schema = layout.schema().clone();
        let codec = riskpipe::warehouse::KeyCodec::new(&schema, LevelSelect::BASE).unwrap();

        // Base cells: (slot 0..4) × (band 0..8) each with a generated
        // loss column.
        let mut entries = Vec::new();
        for (i, column) in columns.iter().enumerate() {
            if column.is_empty() {
                continue;
            }
            let slot = (i / 8) as u32;
            let band = (i % 8) as u32;
            let d = layout.dims()[slot as usize];
            let mut sorted = column.clone();
            sort_f64(&mut sorted);
            let mut cell = SketchCell::empty(layout.sketch_k());
            cell.absorb_sorted(&sorted);
            entries.push((codec.encode([d.region, d.peril, slot, band]), cell));
        }
        let base = SketchCuboid::from_entries(&schema, LevelSelect::BASE, entries).unwrap();

        let target = LevelSelect([target_geo, target_event, target_contract, target_time]);
        // An intermediate select somewhere between base and target.
        let mid = LevelSelect([
            (target_geo as f64 * mid_scale) as u8,
            (target_event as f64 * mid_scale) as u8,
            (target_contract as f64 * mid_scale) as u8,
            (target_time as f64 * mid_scale) as u8,
        ]);

        let direct = base.rollup(&schema, target).unwrap();
        let via_mid = base.rollup(&schema, mid).unwrap().rollup(&schema, target).unwrap();

        prop_assert_eq!(direct.cells(), via_mid.cells());
        prop_assert_eq!(direct.total_count(), base.total_count());
        for i in 0..direct.cells() {
            let (codes_a, a) = direct.cell_at(i);
            let (codes_b, b) = via_mid.cell_at(i);
            prop_assert_eq!(codes_a, codes_b);
            prop_assert_eq!(a.count, b.count);
            prop_assert_eq!(a.max.to_bits(), b.max.to_bits());
            // Exact path (k = 4096 ≫ pooled sizes): the pooled multiset
            // determines every quantile bit, however the merge grouped.
            prop_assert!(a.sketch.is_exact() && b.sketch.is_exact());
            for q in [0.0, 0.5, 0.99, 1.0] {
                prop_assert_eq!(
                    a.sketch.quantile(q).to_bits(),
                    b.sketch.quantile(q).to_bits()
                );
            }
            // Sums associate differently through the intermediate level.
            prop_assert!((a.sum - b.sum).abs() <= 1e-9 * b.sum.abs().max(1.0));
        }
    }
}
