//! The `RiskSession` facade contract: builder defaults, engine and
//! store equivalence (bit-identical YLTs through every configuration),
//! and batch determinism on any thread count.

use riskpipe::aggregate::EngineKind;
use riskpipe::core::{DataStrategy, RiskSession, ScenarioConfig};
use riskpipe::types::RiskResult;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("riskpipe-sapi-{tag}-{}-{n}", std::process::id()))
}

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig::small().with_seed(seed).with_trials(400)
}

#[test]
fn builder_defaults_are_sensible() -> RiskResult<()> {
    let session = RiskSession::builder().build()?;
    assert_eq!(session.engine(), EngineKind::CpuParallel);
    assert_eq!(session.store_name(), "in-memory");
    assert!(session.pool().thread_count() >= 1);

    let sized = RiskSession::builder().pool_threads(3).build()?;
    assert_eq!(sized.pool().thread_count(), 3);
    Ok(())
}

#[test]
fn every_engine_and_store_yields_the_same_ylt() -> RiskResult<()> {
    let scenario = scenario(8);
    let reference = RiskSession::builder()
        .engine(EngineKind::Sequential)
        .pool_threads(2)
        .build()?
        .run(&scenario)?;

    for kind in EngineKind::ALL {
        // In-memory store.
        let report = RiskSession::builder()
            .engine(kind)
            .pool_threads(2)
            .build()?
            .run(&scenario)?;
        assert_eq!(report.ylt, reference.ylt, "{kind:?} (in-memory) diverged");
        assert_eq!(report.yelt_file_bytes, 0);

        // Sharded-files store: same YLT, bytes on disk.
        let dir = temp("equiv");
        let report = RiskSession::builder()
            .engine(kind)
            .strategy(DataStrategy::ShardedFiles {
                dir: dir.clone(),
                shards: 3,
            })
            .pool_threads(2)
            .build()?
            .run(&scenario)?;
        assert_eq!(report.ylt, reference.ylt, "{kind:?} (sharded) diverged");
        assert!(report.yelt_file_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(())
}

#[test]
#[allow(deprecated)] // the run_batch shim's contract must hold until removal
fn run_batch_matches_sequential_runs_on_any_thread_count() -> RiskResult<()> {
    let scenarios = [scenario(21), scenario(22), scenario(23)];

    // Reference: each scenario alone on a single-threaded session.
    let single = RiskSession::builder().pool_threads(1).build()?;
    let reference: Vec<_> = scenarios
        .iter()
        .map(|s| single.run(s))
        .collect::<RiskResult<_>>()?;

    for threads in [1, 2, 8] {
        let session = RiskSession::builder().pool_threads(threads).build()?;
        let batch = session.run_batch(&scenarios)?;
        assert_eq!(batch.len(), scenarios.len());
        for (i, (got, want)) in batch.iter().zip(&reference).enumerate() {
            assert_eq!(
                got.ylt, want.ylt,
                "batch slot {i} diverged on {threads} threads"
            );
            assert_eq!(got.measures, want.measures);
        }
    }
    Ok(())
}

#[test]
#[allow(deprecated)] // the run_batch shim's contract must hold until removal
fn run_batch_keeps_input_order() -> RiskResult<()> {
    let session = RiskSession::builder().pool_threads(4).build()?;
    let scenarios: Vec<ScenarioConfig> = (0..6)
        .map(|i| ScenarioConfig::small().with_seed(100 + i).with_trials(200))
        .collect();
    let reports = session.run_batch(&scenarios)?;
    for (s, r) in scenarios.iter().zip(&reports) {
        // Names match slot-for-slot, and each slot equals its own
        // solo run.
        assert_eq!(r.scenario_name, s.name);
        assert_eq!(session.run(s)?.ylt, r.ylt);
    }
    Ok(())
}

#[test]
#[allow(deprecated)] // the run_batch shim's contract must hold until removal
fn one_session_serves_many_scenarios_and_stores_stay_isolated() -> RiskResult<()> {
    let dir = temp("iso");
    let session = RiskSession::builder()
        .strategy(DataStrategy::ShardedFiles {
            dir: dir.clone(),
            shards: 2,
        })
        .pool_threads(2)
        .build()?;
    let reports = session.run_batch(&[scenario(31), scenario(32)])?;
    // Distinct seeds → distinct YLTs, each slot's spill readable on its
    // own.
    assert_ne!(reports[0].ylt, reports[1].ylt);
    for (i, r) in reports.iter().enumerate() {
        let reader = riskpipe::tables::ShardedReader::open(dir.join(format!("batch-{i:03}")))?;
        assert_eq!(reader.rows() as usize, r.yelt_rows);
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
