//! The streaming execution contract: `run_stream` (and the iterator
//! adapter) deliver input-ordered reports bit-identical to `run_batch`
//! and to solo `run` calls on any thread count, the shared stage-1
//! cache rebuilds the model run exactly once per distinct key, and
//! sweep sinks (`SweepSummary`, `PersistingSink`) produce pooled
//! analytics / durable artifacts without retaining per-scenario YLTs.
//!
//! `run_batch` is deprecated in favour of the declarative `SweepPlan`
//! (see `tests/sweep_plan.rs`), but its contract — pinned here — must
//! keep holding until the shim is removed.
#![allow(deprecated)]

use riskpipe::core::{
    PersistingSink, ReportStream, RiskSession, ScenarioConfig, ShardedFilesStore, SweepSummary,
};
use riskpipe::types::{RiskError, RiskResult};
use std::sync::Arc;

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig::small().with_seed(seed).with_trials(300)
}

/// An attachment-factor sweep: every scenario shares one stage-1 key.
fn pricing_sweep(seed: u64, points: usize) -> Vec<ScenarioConfig> {
    (0..points)
        .map(|i| {
            ScenarioConfig::small()
                .with_seed(seed)
                .with_trials(300)
                .with_name(format!("attach-{i}"))
                .with_attachment_factor(0.25 + 0.25 * i as f64)
        })
        .collect()
}

#[test]
fn run_stream_is_bit_identical_to_batch_and_solo_on_any_thread_count() -> RiskResult<()> {
    let scenarios = [scenario(81), scenario(82), scenario(83), scenario(84)];

    // Reference: each scenario alone on a single-threaded,
    // cache-disabled session (the most conservative configuration).
    let single = RiskSession::builder()
        .pool_threads(1)
        .stage1_cache(false)
        .build()?;
    let reference: Vec<_> = scenarios
        .iter()
        .map(|s| single.run(s))
        .collect::<RiskResult<_>>()?;

    for threads in [1, 2, 8] {
        let session = RiskSession::builder().pool_threads(threads).build()?;
        let batch = session.run_batch(&scenarios)?;

        let mut streamed = Vec::new();
        let delivered = session.run_stream(&scenarios, |i, report| {
            streamed.push((i, report));
            Ok(())
        })?;
        assert_eq!(delivered, scenarios.len());
        assert_eq!(streamed.len(), scenarios.len());

        for (i, want) in reference.iter().enumerate() {
            let (slot, got) = &streamed[i];
            assert_eq!(*slot, i, "stream delivered out of input order");
            assert_eq!(got.scenario_name, scenarios[i].name);
            assert_eq!(got.ylt, want.ylt, "stream slot {i} on {threads} threads");
            assert_eq!(got.measures, want.measures);
            assert_eq!(
                batch[i].ylt, want.ylt,
                "batch slot {i} on {threads} threads"
            );
        }
    }
    Ok(())
}

#[test]
fn caching_never_changes_results() -> RiskResult<()> {
    let scenarios = pricing_sweep(91, 4);
    let cached = RiskSession::builder().pool_threads(4).build()?;
    let uncached = RiskSession::builder()
        .pool_threads(4)
        .stage1_cache(false)
        .build()?;
    let a = cached.run_batch(&scenarios)?;
    let b = uncached.run_batch(&scenarios)?;
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.ylt, y.ylt);
        assert_eq!(x.measures, y.measures);
    }
    assert!(cached.stage1_cache_stats().hits > 0);
    assert_eq!(uncached.stage1_cache_stats().hits, 0);
    Ok(())
}

#[test]
fn shared_key_sweep_builds_stage1_exactly_once() -> RiskResult<()> {
    // 6 scenarios, one catalogue, 4 workers racing on the same key: the
    // per-key lock must still serialise to a single build.
    let scenarios = pricing_sweep(92, 6);
    let key = scenarios[0].stage1_key();
    for s in &scenarios {
        assert_eq!(s.stage1_key(), key, "sweep must share one stage-1 key");
    }
    let session = RiskSession::builder().pool_threads(4).build()?;
    let reports = session.run_batch(&scenarios)?;
    assert_eq!(reports.len(), 6);
    let stats = session.stage1_cache_stats();
    assert_eq!(stats.misses, 1, "stage 1 must build exactly once per key");
    assert_eq!(stats.hits, 5);
    assert_eq!(stats.entries, 1);
    // Distinct attachments genuinely price differently.
    assert_ne!(reports[0].ylt, reports[5].ylt);
    Ok(())
}

#[test]
fn distinct_keys_each_build_once() -> RiskResult<()> {
    let mut scenarios = Vec::new();
    for seed in [101, 102] {
        scenarios.extend(pricing_sweep(seed, 3));
    }
    let session = RiskSession::builder().pool_threads(4).build()?;
    session.run_batch(&scenarios)?;
    let stats = session.stage1_cache_stats();
    assert_eq!(stats.misses, 2, "one build per distinct key");
    assert_eq!(stats.hits, 4);
    assert_eq!(stats.entries, 2);
    Ok(())
}

#[test]
fn iterator_adapter_matches_run_stream() -> RiskResult<()> {
    let scenarios = [scenario(111), scenario(112), scenario(113)];
    let session = Arc::new(RiskSession::builder().pool_threads(2).build()?);
    let reference = session.run_batch(&scenarios)?;

    let stream: ReportStream = session.stream(scenarios.to_vec());
    let collected: Vec<_> = stream.collect::<RiskResult<Vec<_>>>()?;
    assert_eq!(collected.len(), reference.len());
    for (got, want) in collected.iter().zip(&reference) {
        assert_eq!(got.scenario_name, want.scenario_name);
        assert_eq!(got.ylt, want.ylt);
    }
    Ok(())
}

#[test]
fn dropping_the_iterator_early_cancels_cleanly() -> RiskResult<()> {
    let session = Arc::new(RiskSession::builder().pool_threads(2).build()?);
    let scenarios: Vec<ScenarioConfig> = (0..8).map(|i| scenario(120 + i)).collect();
    let mut stream = session.stream(scenarios);
    let first = stream.next().expect("at least one report")?;
    assert_eq!(first.ylt.trials(), 300);
    drop(stream); // must neither hang nor panic
                  // The session stays fully usable afterwards.
    let report = session.run(&scenario(120))?;
    assert_eq!(report.ylt, first.ylt);
    Ok(())
}

#[test]
fn stream_propagates_scenario_errors_in_input_order() -> RiskResult<()> {
    let session = RiskSession::builder().pool_threads(4).build()?;
    let mut bad = scenario(130);
    bad.trials = 0;
    let scenarios = [scenario(131), bad, scenario(132)];
    let mut delivered = Vec::new();
    let err = session.run_stream(&scenarios, |i, _| {
        delivered.push(i);
        Ok(())
    });
    assert!(err.is_err());
    // Only the slot before the failure was delivered.
    assert_eq!(delivered, vec![0]);
    Ok(())
}

#[test]
fn iterator_surfaces_errors_in_band() -> RiskResult<()> {
    let session = Arc::new(RiskSession::builder().pool_threads(2).build()?);
    let mut bad = scenario(140);
    bad.trials = 0;
    let results: Vec<Result<_, RiskError>> = session.stream(vec![scenario(141), bad]).collect();
    assert_eq!(results.len(), 2);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
    Ok(())
}

#[test]
fn sweep_summary_accumulates_without_retaining_reports() -> RiskResult<()> {
    let scenarios = pricing_sweep(150, 5);
    let session = RiskSession::builder().pool_threads(2).build()?;
    // A SweepSummary *is* a ReportSink: pass it straight in.
    let mut summary = SweepSummary::new();
    session.run_stream(&scenarios, &mut summary)?;
    assert_eq!(summary.scenarios(), 5);
    assert_eq!(summary.trials(), 5 * 300);
    assert!(summary.mean_tvar99() > 0.0);
    let (worst, tvar) = summary.worst().expect("non-empty sweep");
    // Lower attachments retain more loss: attach-0 is the worst book.
    assert_eq!(worst, "attach-0");
    assert!(tvar >= summary.mean_tvar99());
    // Pooled analytics over all 1500 trials came along for free.
    assert!(summary.analytics_exact());
    assert!(summary.pooled_tvar99().unwrap() >= summary.pooled_var99().unwrap());
    let text = summary.to_string();
    assert!(text.contains("scenarios"), "{text}");
    assert!(text.contains("pooled TVaR99"), "{text}");
    Ok(())
}

/// The tentpole contract: a sweep of >= 8 scenarios yields pooled
/// AEP/OEP points, VaR99/TVaR99 and PML over the pooled distribution
/// through `SweepSummary`, bit-identical on 1/2/8 threads, and equal
/// to the exact computation over the concatenated (batch-collected)
/// losses — while the streaming path dropped every report after its
/// sink call.
#[test]
fn pooled_sweep_analytics_bit_identical_across_threads() -> RiskResult<()> {
    use riskpipe::types::stats::{quantile_sorted, sort_f64, tail_mean_sorted};
    let scenarios = pricing_sweep(170, 8);

    // Exact reference: pool every trial of every report from a batch
    // run (which retains YLTs) and sort once.
    let reference_session = RiskSession::builder().pool_threads(1).build()?;
    let reports = reference_session.run_batch(&scenarios)?;
    let mut pooled: Vec<f64> = reports
        .iter()
        .flat_map(|r| r.ylt.agg_losses().iter().copied())
        .collect();
    sort_f64(&mut pooled);
    let want_var99 = quantile_sorted(&pooled, 0.99).to_bits();
    let want_tvar99 = tail_mean_sorted(&pooled, 0.99).to_bits();
    let want_pml100 = quantile_sorted(&pooled, 1.0 - 1.0 / 100.0).to_bits();

    struct PooledBits {
        var99: u64,
        tvar99: u64,
        pml100: u64,
        aep: Vec<u64>,
        oep: Vec<u64>,
    }
    let mut seen: Vec<PooledBits> = Vec::new();
    for threads in [1, 2, 8] {
        let session = RiskSession::builder().pool_threads(threads).build()?;
        let mut summary = SweepSummary::new();
        let delivered = session.run_stream(&scenarios, &mut summary)?;
        assert_eq!(delivered, 8);
        assert_eq!(summary.scenarios(), 8);
        assert_eq!(summary.trials(), 8 * 300);
        // 2400 pooled trials stay under the sketch's exact threshold.
        assert!(summary.analytics_exact());
        assert_eq!(summary.rank_error_bound(), 0.0);
        let aep: Vec<u64> = summary
            .aep_points()
            .iter()
            .map(|p| p.loss.to_bits())
            .collect();
        let oep: Vec<u64> = summary
            .oep_points()
            .iter()
            .map(|p| p.loss.to_bits())
            .collect();
        assert_eq!(aep.len(), 8, "2400 trials resolve all standard RPs");
        seen.push(PooledBits {
            var99: summary.pooled_var99().unwrap().to_bits(),
            tvar99: summary.pooled_tvar99().unwrap().to_bits(),
            pml100: summary.pooled_pml(100.0).unwrap().to_bits(),
            aep,
            oep,
        });
    }
    // Identical across thread counts…
    for other in &seen[1..] {
        assert_eq!(seen[0].var99, other.var99);
        assert_eq!(seen[0].tvar99, other.tvar99);
        assert_eq!(seen[0].pml100, other.pml100);
        assert_eq!(seen[0].aep, other.aep);
        assert_eq!(seen[0].oep, other.oep);
    }
    // …and bit-identical to the exact pooled computation.
    assert_eq!(seen[0].var99, want_var99);
    assert_eq!(seen[0].tvar99, want_tvar99);
    assert_eq!(seen[0].pml100, want_pml100);
    Ok(())
}

#[test]
fn persisting_sink_spills_each_report_and_pools_analytics() -> RiskResult<()> {
    let dir = std::env::temp_dir().join(format!("riskpipe-psink-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(ShardedFilesStore::new(&dir, 2)?);
    let scenarios = pricing_sweep(180, 4);
    // The session itself keeps intermediates in memory; the *sink*
    // persists each completed report as it arrives, then drops it.
    let session = RiskSession::builder().pool_threads(2).build()?;
    let mut sink = PersistingSink::new(store.clone());
    session.run_stream(&scenarios, &mut sink)?;
    assert_eq!(sink.reports_persisted(), 4);
    assert!(sink.bytes_persisted() > 0);
    let summary = sink.summary();
    assert_eq!(summary.scenarios(), 4);
    assert!(summary.pooled_tvar99().is_some());

    // Every slot produced a decodable YLT plus rendered measures.
    let solo = session.run(&scenarios[2])?;
    let slot_dir = dir.join("batch-002");
    let encoded = std::fs::read(slot_dir.join(ShardedFilesStore::YLT_FILE))?;
    let ylt = riskpipe::tables::codec::decode_ylt(&encoded)?;
    assert_eq!(ylt, solo.ylt, "persisted YLT must round-trip bit-exactly");
    let measures = std::fs::read_to_string(slot_dir.join(ShardedFilesStore::MEASURES_FILE))?;
    assert!(measures.contains("TVaR 99%"), "{measures}");

    // clear_runs reclaims the persisted-report artifacts too.
    store.clear_runs()?;
    assert!(!slot_dir.exists());
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

#[test]
fn persisting_sink_through_default_store_is_memory_only() -> RiskResult<()> {
    // InMemoryStore's persist_report default keeps nothing durable but
    // the sink still pools analytics.
    let session = RiskSession::builder().pool_threads(2).build()?;
    let scenarios = pricing_sweep(190, 3);
    let mut sink = PersistingSink::new(Arc::new(riskpipe::core::InMemoryStore));
    session.run_stream(&scenarios, &mut sink)?;
    assert_eq!(sink.reports_persisted(), 3);
    assert_eq!(sink.bytes_persisted(), 0);
    assert_eq!(sink.into_summary().scenarios(), 3);
    Ok(())
}

#[test]
fn run_after_stream_reuses_the_cache() -> RiskResult<()> {
    let scenarios = pricing_sweep(160, 3);
    let session = RiskSession::builder().pool_threads(2).build()?;
    session.run_stream(&scenarios, |_, _| Ok(()))?;
    let misses_after_sweep = session.stage1_cache_stats().misses;
    assert_eq!(misses_after_sweep, 1);
    // A solo run over the same catalogue is a pure hit.
    session.run(&scenarios[0])?;
    let stats = session.stage1_cache_stats();
    assert_eq!(stats.misses, misses_after_sweep);
    assert!(stats.hits >= 3);
    Ok(())
}
