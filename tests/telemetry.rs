//! The telemetry contract: a session built with a [`Telemetry`] handle
//! records a span for every stage of a driven plan (stage-1 builds,
//! stage-2 scenarios, per-sink deliveries, shuffle tasks, durable
//! writes), its metrics registry snapshots **bit-identically across
//! thread counts** (timings are spans-only, never metrics), a session
//! built without one records nothing anywhere, and the JSON export
//! schema stays pinned at version 1.

use riskpipe::analytics::{DrilldownLayout, ScenarioDims, SweepPlanAnalytics};
use riskpipe::core::{RiskSession, ScenarioConfig, ShardedFilesStore};
use riskpipe::obs::JSON_SCHEMA_VERSION;
use riskpipe::prelude::{MetricsSnapshot, RiskResult, Telemetry};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("riskpipe-obs-{tag}-{}-{n}", std::process::id()))
}

/// A 2-region × 2-peril grid (distinct stage-1 keys) for plans that
/// exercise every consumer.
fn grid(seed: u64) -> (Vec<ScenarioConfig>, Vec<ScenarioDims>) {
    let mut scenarios = Vec::new();
    let mut dims = Vec::new();
    for region in 0..2u32 {
        for peril in 0..2u32 {
            let s = ScenarioConfig::small()
                .with_seed(seed + (region * 2 + peril) as u64)
                .with_trials(300)
                .with_name(format!("r{region}-p{peril}"));
            dims.push(ScenarioDims::for_scenario(region, peril, &s));
            scenarios.push(s);
        }
    }
    (scenarios, dims)
}

/// Drive the full summary + persist + warehouse plan on a fresh
/// telemetry-bearing session and return the registry snapshot.
fn drive_full_plan(threads: usize, seed: u64) -> RiskResult<MetricsSnapshot> {
    let telemetry = Telemetry::new();
    let (scenarios, dims) = grid(seed);
    let dir = temp("metrics");
    let store = Arc::new(ShardedFilesStore::new(&dir, 2)?);
    let session = RiskSession::builder()
        .pool_threads(threads)
        .telemetry(telemetry.clone())
        .build()?;
    let layout = DrilldownLayout::new(dims, session.engine())?;
    let outcome = session
        .sweep(&scenarios)
        .summary()
        .persist_to(store)
        .warehouse(layout)
        .drive()?;
    assert_eq!(outcome.delivered(), scenarios.len());
    let metrics = telemetry.snapshot().metrics().clone();
    std::fs::remove_dir_all(&dir).ok();
    Ok(metrics)
}

/// The headline determinism guarantee: the metrics registry holds only
/// deterministic integer quantities, so the same logical sweep yields
/// **bit-identical** snapshots on 1, 2 and 8 threads.
#[test]
fn metrics_snapshots_are_bit_identical_across_thread_counts() -> RiskResult<()> {
    let seen: Vec<MetricsSnapshot> = [1usize, 2, 8]
        .iter()
        .map(|&threads| drive_full_plan(threads, 0x0B5))
        .collect::<RiskResult<_>>()?;
    assert_eq!(seen[0], seen[1], "1-thread vs 2-thread metrics diverged");
    assert_eq!(seen[1], seen[2], "2-thread vs 8-thread metrics diverged");

    // And the snapshot is substantive, not vacuously equal: every
    // pipeline layer contributed.
    let m = &seen[0];
    assert_eq!(m.counter("stage1.builds"), 4, "one build per distinct key");
    assert_eq!(m.counter("stage1.misses"), 4);
    assert_eq!(m.counter("stage2.scenarios"), 4);
    assert_eq!(m.counter("sweep.delivered"), 4);
    assert!(m.counter("sink.deliveries") >= 4, "fan-out delivered");
    assert_eq!(m.counter("warehouse.reports"), 4);
    assert!(m.counter("warehouse.trials") > 0);
    assert!(m.counter("shuffle.map_tasks") > 0);
    assert!(m.counter("shuffle.reduce_tasks") > 0);
    assert!(m.counter("shuffle.records") > 0);
    assert!(m.counter("durable.writes") > 0, "persistence wrote files");
    assert!(m.counter("durable.bytes") > 0);
    let trials = m
        .histograms
        .get("stage2.trials")
        .expect("stage2 trial histogram registered");
    assert_eq!(trials.total, 4, "one histogram sample per scenario");
    assert_eq!(trials.sum, 4 * 300);
    Ok(())
}

/// One telemetry-enabled drive of a summary + persist + warehouse plan
/// records a span for every stage the ISSUE names: stage-1 builds,
/// stage-2 engine runs per scenario, per-sink deliveries, shuffle
/// map/reduce tasks, and durable write/fsync.
#[test]
fn span_tree_covers_every_stage_of_a_full_plan() -> RiskResult<()> {
    let telemetry = Telemetry::new();
    let (scenarios, dims) = grid(0x0B6);
    let dir = temp("spans");
    let store = Arc::new(ShardedFilesStore::new(&dir, 2)?);
    let session = RiskSession::builder()
        .pool_threads(2)
        .telemetry(telemetry.clone())
        .build()?;
    let layout = DrilldownLayout::new(dims, session.engine())?;
    let outcome = session
        .sweep(&scenarios)
        .summary()
        .persist_to(store)
        .warehouse(layout)
        .drive()?;

    // The outcome carries the snapshot; the flight recorder lost
    // nothing at this scale.
    let snap = outcome.telemetry().expect("session has telemetry");
    assert_eq!(snap.dropped(), 0);

    // Exactly-once stages pin their counts; fan-in stages just have to
    // be present (task splits vary with thread count).
    let n = scenarios.len();
    let exact = [
        ("sweep.drive", 1),
        ("sweep.run_stream", 1),
        ("sweep.scenario", n),
        ("stage1.acquire", n),
        ("stage1.build", n), // distinct seeds → one build each
        ("stage2.engine", n),
        ("stage2.persist_yelt", n),
        ("stage3.dfa", n),
        ("warehouse.ingest", n),
    ];
    for (name, want) in exact {
        assert_eq!(
            snap.spans_named(name).count(),
            want,
            "span count for {name}"
        );
    }
    let present = [
        "pool.task",
        "sink.deliver",
        "shuffle.map",
        "shuffle.reduce",
        "durable.write",
        "durable.fsync",
    ];
    for name in present {
        assert!(
            snap.spans_named(name).count() > 0,
            "no {name} span recorded"
        );
    }

    // Stitched order is deterministic: thread-then-sequence.
    let spans = snap.spans();
    assert!(spans
        .windows(2)
        .all(|w| (w[0].thread, w[0].seq) < (w[1].thread, w[1].seq)));

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

/// A session built *without* a telemetry handle records nothing: the
/// outcome carries no snapshot, and a bystander handle that was never
/// installed stays empty even though the sweep ran on this thread.
#[test]
fn disabled_recorder_emits_nothing() -> RiskResult<()> {
    let bystander = Telemetry::new();
    let (scenarios, _) = grid(0x0B7);
    let session = RiskSession::builder().pool_threads(2).build()?;
    let outcome = session.sweep(&scenarios).summary().drive()?;
    assert_eq!(outcome.delivered(), scenarios.len());
    assert!(outcome.telemetry().is_none(), "no handle, no snapshot");

    let snap = bystander.snapshot();
    assert!(snap.spans().is_empty());
    assert_eq!(snap.dropped(), 0);
    assert_eq!(snap.metrics(), &MetricsSnapshot::default());
    Ok(())
}

/// `SweepOutcome::telemetry` is cumulative over the session handle;
/// `Telemetry::reset` opens a fresh window, after which a re-drive of
/// the same scenarios shows cache hits instead of builds.
#[test]
fn reset_windows_cumulative_telemetry() -> RiskResult<()> {
    let telemetry = Telemetry::new();
    let (scenarios, _) = grid(0x0B8);
    let session = RiskSession::builder()
        .pool_threads(2)
        .telemetry(telemetry.clone())
        .build()?;

    let first = session.sweep(&scenarios).summary().drive()?;
    let m1 = first.telemetry().expect("telemetry requested").metrics();
    assert_eq!(m1.counter("stage1.builds"), 4);
    assert_eq!(m1.counter("stage1.hits"), 0);

    telemetry.reset();
    let second = session.sweep(&scenarios).summary().drive()?;
    let m2 = second.telemetry().expect("telemetry requested").metrics();
    assert_eq!(m2.counter("stage1.builds"), 0, "warm cache: no rebuilds");
    assert_eq!(m2.counter("stage1.hits"), 4);
    assert_eq!(m2.counter("stage2.scenarios"), 4, "fresh window counts");
    Ok(())
}

/// The export schema is pinned: version 1, fixed key order, spans in
/// stitched order, metrics name-ordered; the chrome trace is complete
/// ("ph":"X") events.
#[test]
fn json_export_schema_is_pinned() -> RiskResult<()> {
    assert_eq!(JSON_SCHEMA_VERSION, 1);

    let telemetry = Telemetry::new();
    let (scenarios, _) = grid(0x0B9);
    let session = RiskSession::builder()
        .pool_threads(2)
        .telemetry(telemetry.clone())
        .build()?;
    session.sweep(&scenarios).summary().drive()?;

    let snap = telemetry.snapshot();
    let json = snap.to_json();
    assert!(json.starts_with("{\"version\":1,\"dropped\":0,\"spans\":["));
    assert!(json.contains("\"metrics\":{\"counters\":{"));
    assert!(json.contains("\"stage1.builds\":4"));
    assert!(json.contains("\"stage2.scenarios\":4"));
    assert!(json.contains("\"name\":\"sweep.run_stream\""));
    assert!(json.contains("\"histograms\":{"));
    assert!(json.ends_with("}}}"));
    // Counters serialise in name order (BTreeMap), so stage1.builds
    // precedes stage2.scenarios which precedes sweep.delivered.
    let a = json.find("\"stage1.builds\"").unwrap();
    let b = json.find("\"stage2.scenarios\"").unwrap();
    let c = json.find("\"sweep.delivered\"").unwrap();
    assert!(a < b && b < c, "counters must be name-ordered");

    let trace = snap.to_chrome_trace();
    assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(trace.contains("\"name\":\"stage2.engine\""));
    assert!(trace.ends_with("]}"));
    Ok(())
}
