//! Property tests for `riskpipe_types::dist`: sample-moment bounds on
//! arbitrary parameters (not just the fixtures unit tests chose),
//! alias-table weight fidelity, and same-seed determinism.
//!
//! Tolerances are Monte-Carlo aware: a sample mean of `n` draws from a
//! distribution with standard deviation `σ` errs by ~`σ/√n`, so every
//! bound allows several times that. The vendored proptest shim derives
//! its case stream from the test name, so these never flake: a passing
//! run passes identically everywhere.

use proptest::prelude::*;
use riskpipe::types::dist::{
    AliasTable, Beta, Distribution, Exponential, Gamma, LogNormal, Normal, Poisson, Uniform,
};
use riskpipe::types::{Pcg64, RunningStats};

/// Sample `n` draws and accumulate running moments.
fn moments(d: &impl Distribution, n: usize, seed: u64) -> RunningStats {
    let mut rng = Pcg64::new(seed);
    let mut st = RunningStats::new();
    for _ in 0..n {
        st.push(d.sample(&mut rng));
    }
    st
}

/// Allowed |sample mean − true mean| for `n` draws at std dev `sd`.
fn mean_tolerance(sd: f64, n: usize) -> f64 {
    6.0 * sd / (n as f64).sqrt() + 1e-9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn uniform_bounds_and_mean(lo in -1_000.0..1_000.0f64, span in 0.1..500.0f64) {
        let hi = lo + span;
        let d = Uniform::new(lo, hi);
        let n = 20_000;
        let mut rng = Pcg64::new(1);
        for _ in 0..n {
            let x = d.sample(&mut rng);
            prop_assert!((lo..hi).contains(&x), "{x} outside [{lo}, {hi})");
        }
        let st = moments(&d, n, 2);
        let sd = span / 12f64.sqrt();
        prop_assert!(
            (st.mean() - (lo + hi) / 2.0).abs() < mean_tolerance(sd, n),
            "mean {} for [{lo}, {hi})", st.mean()
        );
    }

    #[test]
    fn normal_moment_bounds(mean in -500.0..500.0f64, sd in 0.1..50.0f64) {
        let n = 20_000;
        let st = moments(&Normal::new(mean, sd), n, 3);
        prop_assert!(
            (st.mean() - mean).abs() < mean_tolerance(sd, n),
            "mean {} vs {mean} (sd {sd})", st.mean()
        );
        // Sample sd errs by ~sd/√(2n); allow 10x.
        prop_assert!(
            (st.sd() - sd).abs() < 10.0 * sd / (2.0 * n as f64).sqrt() + 1e-9,
            "sd {} vs {sd}", st.sd()
        );
    }

    #[test]
    fn lognormal_mean_cv_moment_bounds(mean in 1.0..10_000.0f64, cv in 0.1..1.5f64) {
        let n = 40_000;
        let st = moments(&LogNormal::from_mean_cv(mean, cv), n, 4);
        let sd = cv * mean;
        prop_assert!(
            (st.mean() - mean).abs() < mean_tolerance(sd, n),
            "mean {} vs {mean} (cv {cv})", st.mean()
        );
        let mut rng = Pcg64::new(5);
        let d = LogNormal::from_mean_cv(mean, cv);
        for _ in 0..1_000 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn exponential_moment_bounds(rate in 0.001..10.0f64) {
        let n = 20_000;
        let st = moments(&Exponential::new(rate), n, 6);
        let mean = 1.0 / rate;
        prop_assert!(
            (st.mean() - mean).abs() < mean_tolerance(mean, n),
            "mean {} vs {mean} (rate {rate})", st.mean()
        );
    }

    #[test]
    fn gamma_moment_bounds(shape in 0.2..10.0f64, scale in 0.1..10.0f64) {
        let n = 20_000;
        let st = moments(&Gamma::new(shape, scale), n, 7);
        let mean = shape * scale;
        let sd = shape.sqrt() * scale;
        prop_assert!(
            (st.mean() - mean).abs() < mean_tolerance(sd, n),
            "mean {} vs {mean} (k {shape}, θ {scale})", st.mean()
        );
    }

    #[test]
    fn poisson_moment_bounds(lambda in 0.0..50.0f64) {
        let d = Poisson::new(lambda);
        let n = 10_000;
        let mut rng = Pcg64::new(8);
        let mut st = RunningStats::new();
        for _ in 0..n {
            st.push(d.sample_count(&mut rng) as f64);
        }
        prop_assert!(
            (st.mean() - lambda).abs() < mean_tolerance(lambda.sqrt(), n).max(0.01),
            "mean {} vs λ {lambda}", st.mean()
        );
    }

    #[test]
    fn beta_bounds_and_mean(mean in 0.05..0.95f64, sd in 0.01..0.5f64) {
        let b = Beta::from_mean_sd_clamped(mean, sd);
        let n = 4_000;
        let mut rng = Pcg64::new(9);
        let mut st = RunningStats::new();
        for _ in 0..n {
            let x = b.sample(&mut rng);
            prop_assert!((0.0..=1.0).contains(&x), "{x} outside the unit interval");
            st.push(x);
        }
        // The fit may clamp the requested sd; bound against the sample's
        // own spread, which the clamp keeps below mean·(1−mean).
        prop_assert!(
            (st.mean() - b.mean()).abs() < mean_tolerance(st.sd().max(1e-3), n),
            "mean {} vs {}", st.mean(), b.mean()
        );
    }

    /// Empirical alias-table frequencies match the normalised weights.
    #[test]
    fn alias_table_weight_fidelity(weights in prop::collection::vec(0.01..10.0f64, 1..20)) {
        let t = AliasTable::new(&weights).unwrap();
        prop_assert_eq!(t.len(), weights.len());
        let total: f64 = weights.iter().sum();
        let n = 50_000usize;
        let mut counts = vec![0u64; weights.len()];
        let mut rng = Pcg64::new(10);
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / n as f64;
            let tol = 6.0 * (expect * (1.0 - expect) / n as f64).sqrt() + 2e-3;
            prop_assert!(
                (got - expect).abs() < tol,
                "category {i}: {got} vs {expect} (tol {tol})"
            );
        }
    }

    /// Identical seeds reproduce identical bit streams for every
    /// sampler family — including the variable-draw ones (Gamma,
    /// Poisson, AliasTable) whose consumption per variate varies.
    #[test]
    fn same_seed_determinism(seed in any::<u64>(), k in 0.3..5.0f64) {
        let gamma = Gamma::new(k, 2.0);
        let lognormal = LogNormal::from_mean_cv(100.0 * k, 0.9);
        let poisson = Poisson::new(10.0 * k);
        let alias = AliasTable::new(&[1.0, k, 2.0 * k]).unwrap();

        let mut a = Pcg64::new(seed);
        let mut b = Pcg64::new(seed);
        for _ in 0..200 {
            prop_assert_eq!(
                gamma.sample(&mut a).to_bits(),
                gamma.sample(&mut b).to_bits()
            );
            prop_assert_eq!(
                lognormal.sample(&mut a).to_bits(),
                lognormal.sample(&mut b).to_bits()
            );
            prop_assert_eq!(poisson.sample_count(&mut a), poisson.sample_count(&mut b));
            prop_assert_eq!(alias.sample(&mut a), alias.sample(&mut b));
        }
        // And the streams actually advance (not a constant sampler).
        let first = lognormal.sample(&mut Pcg64::new(seed));
        let again = lognormal.sample(&mut a);
        prop_assert!(first.is_finite() && again.is_finite());
    }
}
