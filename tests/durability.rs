//! Crash-safety acceptance: interrupted or damaged persistence is
//! *detectably* absent or corrupt — never a panic, never a silently
//! shorter rebuild — and the disk-backed stage-1 cache tier lets a
//! cold session replay a sweep with zero stage-1 builds, bit-exactly.

use riskpipe::analytics::{DrilldownLayout, ScenarioDims, SessionAnalytics, SweepPlanAnalytics};
use riskpipe::core::{
    DiskStage1Cache, RiskSession, ScenarioConfig, ShardedFilesStore, SweepSummary,
};
use riskpipe::prelude::{LevelSelect, Query};
use riskpipe_types::RiskError;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("riskpipe-durab-{tag}-{}-{n}", std::process::id()))
}

/// A 2-region × 2-peril grid: four scenarios, four distinct stage-1
/// keys.
fn grid(seed: u64) -> (Vec<ScenarioConfig>, Vec<ScenarioDims>) {
    let mut scenarios = Vec::new();
    let mut dims = Vec::new();
    for region in 0..2u32 {
        for peril in 0..2u32 {
            let s = ScenarioConfig::small()
                .with_seed(seed + (region * 2 + peril) as u64)
                .with_trials(300)
                .with_name(format!("r{region}-p{peril}"));
            dims.push(ScenarioDims::for_scenario(region, peril, &s));
            scenarios.push(s);
        }
    }
    (scenarios, dims)
}

/// Pooled analytics as comparable bits.
fn summary_bits(s: &SweepSummary) -> Vec<u64> {
    vec![
        s.trials(),
        s.scenarios() as u64,
        s.pooled_var99().unwrap().to_bits(),
        s.pooled_tvar99().unwrap().to_bits(),
        s.pooled_pml(100.0).unwrap().to_bits(),
    ]
}

/// Every base warehouse cell as comparable bits.
fn warehouse_bits(wh: &riskpipe::analytics::Drilldown) -> Vec<(Vec<u32>, u64, u64)> {
    let (rows, _) = wh.answer(&Query::group_by(LevelSelect::BASE)).unwrap();
    rows.iter()
        .map(|r| {
            (
                r.codes.to_vec(),
                r.cell.count,
                r.cell.tvar99().unwrap().to_bits(),
            )
        })
        .collect()
}

/// Persist the grid sweep through a fresh store, returning the store.
fn persist_grid(dir: &PathBuf, seed: u64) -> Arc<ShardedFilesStore> {
    let (scenarios, _) = grid(seed);
    let store = Arc::new(ShardedFilesStore::new(dir, 2).unwrap());
    let session = RiskSession::builder().pool_threads(2).build().unwrap();
    session
        .sweep(&scenarios)
        .persist_to(store.clone())
        .drive()
        .unwrap();
    store
}

// ---------------------------------------------------------------------
// Gap detection: the run manifest promises N slots, and rebuilds must
// surface any missing one as corrupt — not a smaller result.
// ---------------------------------------------------------------------

#[test]
fn deleted_middle_slot_is_corrupt_not_a_smaller_rebuild() {
    let dir = temp("gap");
    let store = persist_grid(&dir, 0xD0);
    let (scenarios, dims) = grid(0xD0);

    // The manifest still promises every slot...
    assert_eq!(store.persisted_report_slots(0).unwrap(), scenarios.len());

    // ...so losing a *middle* slot must poison the rebuild, not
    // shorten it.
    fs::remove_file(dir.join("batch-001").join(ShardedFilesStore::YLT_FILE)).unwrap();
    let session = RiskSession::builder().pool_threads(2).build().unwrap();
    let layout = DrilldownLayout::new(dims, session.engine()).unwrap();
    let err = session
        .analytics(layout.clone())
        .rebuild_from_store(&store, 0)
        .expect_err("a lost slot must not rebuild");
    assert!(matches!(err, RiskError::Corrupt(_)), "{err:?}");

    // Removing the slot's whole directory is just as detectable.
    fs::remove_dir_all(dir.join("batch-001")).unwrap();
    let err = session
        .analytics(layout)
        .rebuild_from_store(&store, 0)
        .expect_err("a lost slot directory must not rebuild");
    assert!(matches!(err, RiskError::Corrupt(_)), "{err:?}");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_run_manifest_means_sweep_never_completed() {
    let dir = temp("manifest");
    let store = persist_grid(&dir, 0xD1);
    let (_, dims) = grid(0xD1);
    let session = RiskSession::builder().pool_threads(2).build().unwrap();
    let layout = DrilldownLayout::new(dims, session.engine()).unwrap();

    // A crash between the last slot write and the manifest write
    // leaves every slot present but no manifest: the run must read as
    // incomplete, not as "whatever slots happen to exist".
    fs::remove_file(dir.join(ShardedFilesStore::RUN_MANIFEST_FILE)).unwrap();
    let err = store
        .persisted_report_slots(0)
        .expect_err("no manifest, no run");
    assert!(matches!(err, RiskError::Corrupt(_)), "{err:?}");
    assert!(session
        .analytics(layout)
        .rebuild_from_store(&store, 0)
        .is_err());

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_run_manifest_is_corrupt_never_panics() {
    let dir = temp("badmanifest");
    let store = persist_grid(&dir, 0xD2);
    let manifest_path = dir.join(ShardedFilesStore::RUN_MANIFEST_FILE);
    let original = fs::read(&manifest_path).unwrap();

    // Truncate at every length and flip every byte: always corrupt.
    for cut in 0..original.len() {
        fs::write(&manifest_path, &original[..cut]).unwrap();
        let err = store
            .persisted_report_slots(0)
            .expect_err("truncated manifest accepted");
        assert!(matches!(err, RiskError::Corrupt(_)), "cut {cut}: {err:?}");
    }
    for pos in 0..original.len() {
        if pos == 7 {
            continue; // the header pad byte is unauthenticated
        }
        let mut bad = original.clone();
        bad[pos] ^= 0x10;
        fs::write(&manifest_path, &bad).unwrap();
        let err = store
            .persisted_report_slots(0)
            .expect_err("damaged manifest accepted");
        assert!(matches!(err, RiskError::Corrupt(_)), "byte {pos}: {err:?}");
    }

    // Restoring the true manifest restores the run.
    fs::write(&manifest_path, &original).unwrap();
    assert_eq!(store.persisted_report_slots(0).unwrap(), 4);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_write_leftovers_are_inert_and_reclaimed() {
    let dir = temp("leftover");
    let store = persist_grid(&dir, 0xD3);
    let (scenarios, dims) = grid(0xD3);

    // Simulate a crash mid-write: a stale atomic-write tmp file and an
    // in-flight shard file appear next to the completed artifacts.
    let tmp = dir.join("YLT.bin.999-7.rptmp");
    let inflight = dir.join("shard-0000.rpt.inflight");
    fs::write(&tmp, b"torn half-written bytes").unwrap();
    fs::write(&inflight, b"unrenamed shard").unwrap();

    // Leftovers are invisible to every load path.
    assert_eq!(store.persisted_report_slots(0).unwrap(), scenarios.len());
    let session = RiskSession::builder().pool_threads(2).build().unwrap();
    let layout = DrilldownLayout::new(dims, session.engine()).unwrap();
    let rebuilt = session
        .analytics(layout)
        .rebuild_from_store(&store, 0)
        .unwrap();
    assert_eq!(rebuilt.ingest_stats().reports, scenarios.len() as u64);

    // And reclamation sweeps them with the run artifacts.
    store.clear_runs().unwrap();
    assert!(!tmp.exists(), "stale tmp file survived clear_runs");
    assert!(!inflight.exists(), "in-flight shard survived clear_runs");

    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// The disk-backed stage-1 tier: cold sessions replay warm sweeps with
// zero stage-1 builds and bit-identical results.
// ---------------------------------------------------------------------

#[test]
fn cold_session_over_warm_disk_tier_builds_nothing_and_matches_bitwise() {
    let tier = temp("tier");
    let (scenarios, dims) = grid(0xD4);
    let distinct_keys = {
        let mut keys: Vec<u64> = scenarios.iter().map(|s| s.stage1_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len() as u64
    };

    let run = |threads: usize, ram_cache: bool| {
        let session = RiskSession::builder()
            .pool_threads(threads)
            .stage1_cache(ram_cache)
            .stage1_disk_cache(&tier)
            .build()
            .unwrap();
        let layout = DrilldownLayout::new(dims.clone(), session.engine()).unwrap();
        let outcome = session
            .sweep(&scenarios)
            .summary()
            .warehouse(layout)
            .drive()
            .unwrap();
        let bits = (
            summary_bits(outcome.summary().unwrap()),
            warehouse_bits(outcome.drilldown()),
        );
        (bits, session.stage1_cache_stats())
    };

    // First session: every key is built once and written through.
    let (reference, stats) = run(2, true);
    assert_eq!(stats.builds, distinct_keys);
    assert_eq!(stats.disk_writes, distinct_keys);
    assert_eq!(stats.disk_hits, 0);
    assert_eq!(
        DiskStage1Cache::new(&tier).unwrap().entries().unwrap(),
        distinct_keys as usize
    );

    // A fresh session (cold RAM cache — the in-process stand-in for a
    // cold process) replays the sweep from the tier alone.
    let (replay, stats) = run(4, true);
    assert_eq!(stats.builds, 0, "warm tier must eliminate stage-1 builds");
    assert_eq!(stats.disk_hits, distinct_keys);
    assert_eq!(stats.disk_writes, 0);
    assert_eq!(replay, reference, "disk-tier replay drifted");

    // Even with the RAM cache disabled the tier serves every lookup.
    let (no_ram, stats) = run(2, false);
    assert_eq!(stats.builds, 0);
    assert_eq!(stats.disk_hits, scenarios.len() as u64);
    assert_eq!(no_ram, reference, "RAM-less disk-tier replay drifted");

    fs::remove_dir_all(&tier).ok();
}

#[test]
fn corrupt_disk_tier_entry_self_heals_with_identical_results() {
    let tier = temp("heal");
    let (scenarios, _) = grid(0xD5);
    let n_keys = scenarios.len() as u64;

    let sweep = |label: &str| {
        let session = RiskSession::builder()
            .pool_threads(2)
            .stage1_disk_cache(&tier)
            .build()
            .unwrap();
        let outcome = session.sweep(&scenarios).summary().drive().unwrap();
        let bits = summary_bits(outcome.summary().unwrap());
        println!("{label}: {:?}", session.stage1_cache_stats());
        (bits, session.stage1_cache_stats())
    };

    let (reference, _) = sweep("warm-up");

    // Flip one payload byte in one tier entry.
    let entry = fs::read_dir(&tier)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "rps"))
        .expect("tier holds entries");
    let mut bytes = fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(&entry, &bytes).unwrap();

    // The damaged entry reads as a miss (self-heal): exactly one key
    // rebuilds, the rest serve from disk, and the results are the same
    // bits as before the damage.
    let (healed, stats) = sweep("healing");
    assert_eq!(stats.builds, 1, "only the damaged key may rebuild");
    assert_eq!(stats.disk_hits, n_keys - 1);
    assert_eq!(stats.disk_writes, 1, "the healed entry is rewritten");
    assert_eq!(healed, reference, "self-heal changed the answer");

    // The rewrite repaired the tier: the next cold session builds
    // nothing again.
    let (after, stats) = sweep("repaired");
    assert_eq!(stats.builds, 0);
    assert_eq!(stats.disk_hits, n_keys);
    assert_eq!(after, reference);

    fs::remove_dir_all(&tier).ok();
}

#[test]
fn disk_tier_sweeps_stale_tmp_files_on_open() {
    let tier = temp("tiertmp");
    fs::create_dir_all(&tier).unwrap();
    let stale = tier.join("stage1-00deadbeef.rps.42-1.rptmp");
    fs::write(&stale, b"half a cache entry").unwrap();
    let cache = DiskStage1Cache::new(&tier).unwrap();
    assert!(!stale.exists(), "stale tmp survived tier open");
    assert_eq!(cache.entries().unwrap(), 0);
    fs::remove_dir_all(&tier).ok();
}
