//! Warehouse integration: the OLAP layer over *real* pipeline data
//! (stage-1 location-level losses), cross-checked against the tables
//! crate's own streaming scans.

use riskpipe::catmodel::{
    simulate_yet, CatalogConfig, EltGenConfig, EventCatalog, ExposureConfig, ExposurePortfolio,
    GroundUpModel, YetConfig,
};
use riskpipe::exec::ThreadPool;
use riskpipe::mapreduce::CubeBuildJob;
use riskpipe::tables::{ShardedReader, ShardedWriter, Yelt};
use riskpipe::types::{EventId, LocationId, TrialId};
use riskpipe::warehouse::{
    dim, Cuboid, FactBuilder, FactTable, Filter, LevelSelect, Query, Schema, Source, Warehouse,
};

const LOCATIONS: u32 = 150;
const EVENTS: u32 = 1_500;
const BOOKS: u32 = 2;
const TRIALS: usize = 800;

/// Build the warehouse fact table from real stage-1/stage-2 artifacts:
/// for every trial occurrence and every book whose ELT covers the
/// event, split the loss to locations exactly as the catastrophe model
/// does. Returns the facts plus the per-book (ELT-joined) YELTs used
/// for cross-checking.
fn pipeline_facts() -> (Schema, FactTable, Vec<Yelt>) {
    let pool = ThreadPool::new(2);
    let catalog = EventCatalog::generate(&CatalogConfig {
        events: EVENTS as usize,
        total_annual_rate: 25.0,
        seed: 301,
        ..CatalogConfig::default()
    })
    .unwrap();
    let yet = simulate_yet(
        &catalog,
        &YetConfig {
            trials: TRIALS,
            seed: 302,
        },
        &pool,
    )
    .unwrap();

    let schema = Schema::standard(LOCATIONS, 5, EVENTS, 3, BOOKS, 2).unwrap();
    let mut builder = FactBuilder::new(&schema);
    builder.set_trials(TRIALS as u32);
    let mut yelts = Vec::new();

    for book in 0..BOOKS {
        let exposure = ExposurePortfolio::generate(&ExposureConfig {
            locations: LOCATIONS as usize,
            seed: 310 + book as u64,
            ..ExposureConfig::default()
        })
        .unwrap();
        let model = GroundUpModel::new(&catalog, &exposure, EltGenConfig::default());
        let elt = model.generate_elt(&pool).unwrap();
        for t in 0..TRIALS {
            let (events, days, _zs) = yet.trial_slices(TrialId::new(t as u32));
            for (k, &e) in events.iter().enumerate() {
                if elt.row_of(EventId::new(e)).is_none() {
                    continue; // below the ELT threshold, as in the YELT join
                }
                let day = days[k].min(364) as u32;
                model.for_each_location_loss(e as usize, |loc, loss| {
                    builder.push([loc.raw(), e, book, day], loss).unwrap();
                });
            }
        }
        yelts.push(Yelt::from_yet_elt(&yet, &elt));
    }
    (schema, builder.build(), yelts)
}

#[test]
fn warehouse_totals_match_yelt_joins() {
    let (schema, facts, yelts) = pipeline_facts();
    assert!(facts.rows() > 10_000, "fixture too small: {}", facts.rows());

    // Apex cell == the sum of both books' YELT losses (location split
    // conserves each event's mean loss).
    let apex = Cuboid::build(&schema, &facts, LevelSelect::apex(&schema), None).unwrap();
    let (_, cell) = apex.cell_at(0);
    let want: f64 = yelts
        .iter()
        .flat_map(|y| (0..y.trials()).map(move |t| y.trial_slices(TrialId::new(t as u32)).2))
        .flatten()
        .sum();
    let rel = (cell.sum - want).abs() / want;
    assert!(
        rel < 1e-6,
        "apex {} vs yelt-join {} (rel {rel})",
        cell.sum,
        want
    );
}

#[test]
fn per_book_slice_matches_single_yelt() {
    let (schema, facts, yelts) = pipeline_facts();
    let w = Warehouse::new(schema, facts);
    for (book, yelt) in yelts.iter().enumerate() {
        let q = Query::group_by(LevelSelect([2, 2, 0, 3]))
            .filter(Filter::slice(dim::CONTRACT, book as u32));
        let (rows, cost) = w.answer(&q).unwrap();
        assert_eq!(cost.source, Source::FactScan);
        assert_eq!(rows.len(), 1);
        let (sums, _) = yelt.scan_aggregate_by_trial();
        let want: f64 = sums.iter().sum();
        let got = rows[0].cell.sum;
        let rel = (got - want).abs() / want;
        assert!(rel < 1e-6, "book {book}: {got} vs {want}");
    }
}

#[test]
fn seasonality_rollup_matches_yelt_scan() {
    let (schema, facts, yelts) = pipeline_facts();
    let mut w = Warehouse::new(schema, facts);
    w.materialize(LevelSelect([1, 1, 0, 1]), None).unwrap();

    // Warehouse months (summed over both books) vs the YELT's own
    // seasonality scan.
    let q = Query::group_by(LevelSelect([2, 2, 2, 1]));
    let (rows, cost) = w.answer(&q).unwrap();
    assert!(matches!(cost.source, Source::Materialized(_)));

    let mut want = [0.0f64; 12];
    for y in &yelts {
        let (m, _) = y.scan_seasonality();
        for (i, v) in m.iter().enumerate() {
            want[i] += v;
        }
    }
    for r in &rows {
        let month = r.codes[dim::TIME] as usize;
        let rel_base = want[month].abs().max(1.0);
        assert!(
            (r.cell.sum - want[month]).abs() < 1e-6 * rel_base,
            "month {month}: {} vs {}",
            r.cell.sum,
            want[month]
        );
    }
    // Every loss-bearing month is present.
    let covered: usize = want.iter().filter(|&&v| v > 0.0).count();
    assert_eq!(rows.len(), covered);
}

#[test]
fn event_contribution_topk_matches_manual_ranking() {
    let (schema, facts, _yelts) = pipeline_facts();
    // Manual: total loss per event across books.
    let mut totals = std::collections::HashMap::<u32, f64>::new();
    for row in 0..facts.rows() {
        let codes = facts.row_codes(row);
        *totals.entry(codes[dim::EVENT]).or_insert(0.0) += facts.losses()[row];
    }
    let mut ranked: Vec<(u32, f64)> = totals.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let w = Warehouse::new(schema, facts);
    let q = Query::group_by(LevelSelect([2, 0, 2, 3])).top(10);
    let (rows, _) = w.answer(&q).unwrap();
    assert_eq!(rows.len(), 10.min(ranked.len()));
    for (r, (event, total)) in rows.iter().zip(ranked.iter()) {
        assert_eq!(r.codes[dim::EVENT], *event);
        let rel = (r.cell.sum - total).abs() / total;
        assert!(rel < 1e-9, "event {event}: {} vs {total}", r.cell.sum);
    }
}

#[test]
fn distributed_cube_build_matches_in_memory_warehouse() {
    // The same loss facts held two ways — in memory (warehouse) and as
    // a sharded YELLT on disk (distributed file space) — must produce
    // identical region × peril cubes: the "parallel data warehousing"
    // technique is strategy-agnostic.
    let schema = Schema::standard(60, 4, 300, 3, 1, 1).unwrap();
    let facts_rows = 30_000usize;
    let synthetic = FactTable::synthetic(&schema, facts_rows, 1234);

    let dir = std::env::temp_dir().join(format!("riskpipe-dcube-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = ShardedWriter::create(&dir, 4).unwrap();
    for row in 0..synthetic.rows() {
        let codes = synthetic.row_codes(row);
        writer
            .push_row(
                row as u32 % 500, // synthetic trial id; the cube ignores it
                codes[dim::EVENT],
                LocationId::new(codes[dim::GEO]),
                synthetic.losses()[row],
            )
            .unwrap();
    }
    writer.finish().unwrap();

    // Distributed build: region × peril via the hierarchy LUTs.
    let geo = schema.dim(dim::GEO);
    let ev = schema.dim(dim::EVENT);
    let geo_map: Vec<u32> = (0..geo.cardinality(0)).map(|c| geo.code_at(1, c)).collect();
    let event_map: Vec<u32> = (0..ev.cardinality(0)).map(|c| ev.code_at(1, c)).collect();
    let pool = ThreadPool::new(2);
    let reader = ShardedReader::open(&dir).unwrap();
    let (cells, _) = CubeBuildJob {
        geo_map: Some(geo_map),
        event_map: Some(event_map),
    }
    .run(&reader, 4, &pool)
    .unwrap();

    // In-memory build at the equivalent lattice point.
    let apex_contract = (schema.dim(dim::CONTRACT).level_count() - 1) as u8;
    let apex_time = (schema.dim(dim::TIME).level_count() - 1) as u8;
    let cub = Cuboid::build(
        &schema,
        &synthetic,
        LevelSelect([1, 1, apex_contract, apex_time]),
        None,
    )
    .unwrap();

    assert_eq!(cells.len(), cub.cells());
    for (i, cell) in cells.iter().enumerate() {
        let (codes, c) = cub.cell_at(i);
        assert_eq!((cell.geo, cell.event), (codes[dim::GEO], codes[dim::EVENT]));
        assert_eq!(cell.count, c.count);
        let rel = (cell.sum - c.sum).abs() / c.sum.abs().max(1.0);
        assert!(rel < 1e-9, "cell {i}: {} vs {}", cell.sum, c.sum);
        assert_eq!(cell.max, c.max);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn materialized_pipeline_warehouse_serves_all_query_shapes() {
    let (schema, facts, _) = pipeline_facts();
    let pool = ThreadPool::new(2);
    let cold = Warehouse::new(schema.clone(), facts.clone());
    let mut warm = Warehouse::new(schema, facts);
    warm.materialize_all(&[LevelSelect::BASE, LevelSelect([1, 1, 1, 1])], Some(&pool))
        .unwrap();
    let queries = [
        Query::group_by(LevelSelect([1, 1, 2, 2])),
        Query::group_by(LevelSelect([1, 2, 1, 3])).filter(Filter::slice(dim::GEO, 1)),
        Query::group_by(LevelSelect([2, 1, 1, 1])).top(5),
    ];
    for q in &queries {
        let (a, ca) = cold.answer(q).unwrap();
        let (b, cb) = warm.answer(q).unwrap();
        assert_eq!(ca.source, Source::FactScan);
        assert!(matches!(cb.source, Source::Materialized(_)));
        assert!(cb.rows_read() < ca.rows_read());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.codes, y.codes);
            assert_eq!(x.cell.count, y.cell.count);
            let rel = (x.cell.sum - y.cell.sum).abs() / x.cell.sum.abs().max(1.0);
            assert!(rel < 1e-9);
        }
    }
}
