//! End-to-end pipeline integration: stage 1 → 2 → 3 with coherent
//! numbers at every hand-off, through the `RiskSession` facade.

use riskpipe::core::{RiskSession, ScenarioConfig};
use riskpipe::metrics::{EpCurve, RiskMeasures};

fn session(threads: usize) -> RiskSession {
    RiskSession::builder()
        .pool_threads(threads)
        .build()
        .expect("session builds")
}

#[test]
fn pipeline_produces_coherent_report() {
    let report = session(4)
        .run(&ScenarioConfig::small().with_seed(41))
        .unwrap();

    // Stage hand-offs are consistent.
    assert_eq!(report.ylt.trials(), 2_000);
    assert!(report.elt_rows > 0);
    assert!(report.yet_occurrences > 0);
    assert!(report.yelt_rows <= report.yet_occurrences);

    // Risk measures are internally ordered.
    let m = &report.measures;
    assert!(m.mean > 0.0);
    assert!(
        m.var99 >= m.mean,
        "99% VaR below the mean is impossible here"
    );
    assert!(m.tvar99 >= m.var99);
    assert!(m.var996 >= m.var99);

    // The occurrence PML never exceeds the aggregate PML.
    let aep = EpCurve::aggregate(&report.ylt);
    let oep = EpCurve::occurrence(&report.ylt);
    assert!(oep.pml(100.0) <= aep.pml(100.0) + 1e-9);

    // Stage-3 metrics exist and are sane.
    assert!(report.prob_ruin >= 0.0 && report.prob_ruin < 0.5);
    assert!(report.economic_capital > 0.0);
}

#[test]
fn trial_count_scales_tail_resolution() {
    // More trials → deeper return periods become available, and the
    // measured metrics stay statistically consistent. One session
    // serves both runs.
    let session = session(4);
    let small = session
        .run(&ScenarioConfig::small().with_seed(42).with_trials(500))
        .unwrap();
    let large = session
        .run(&ScenarioConfig::small().with_seed(42).with_trials(4_000))
        .unwrap();
    let m_small = RiskMeasures::from_ylt(&small.ylt);
    let m_large = RiskMeasures::from_ylt(&large.ylt);
    // The mean is the most stable metric: within 20% across sizes.
    let rel = (m_small.mean - m_large.mean).abs() / m_large.mean;
    assert!(rel < 0.2, "means diverged: {rel}");
    // 500-trial EP curve cannot quote the 500-year point; 4000 can.
    let ep = EpCurve::aggregate(&large.ylt);
    assert!(ep.standard_points().len() >= 7);
}

#[test]
fn different_seeds_give_different_but_similar_portfolios() {
    let session = session(2);
    let a = session.run(&ScenarioConfig::small().with_seed(1)).unwrap();
    let b = session.run(&ScenarioConfig::small().with_seed(2)).unwrap();
    assert_ne!(a.ylt, b.ylt);
    // Same generating process: means within a factor of 3.
    let ratio = a.measures.mean / b.measures.mean;
    assert!(ratio > 1.0 / 3.0 && ratio < 3.0, "ratio {ratio}");
}
