//! Elasticity integration: the E10 cost/attainment comparison as
//! assertions, plus cross-checks between the discrete-event simulator
//! and the E6 analytic elasticity model.

use riskpipe::cloud::{
    peak_deadline_demand, pipeline_week, simulate, total_work_core_ms, FixedPolicy,
    PipelineWeekSpec, ReactivePolicy, ScheduledPolicy, SimConfig, Stage, DAY_MS, HOUR_MS, WEEK_MS,
};
use riskpipe::cloud::{JobSpec, NodeSpec};

fn peak_nodes(jobs: &[JobSpec], cfg: &SimConfig) -> u32 {
    ((peak_deadline_demand(jobs, WEEK_MS) as f64 * 1.25) as u64).div_ceil(cfg.node.cores as u64)
        as u32
}

#[test]
fn fixed_average_misses_the_reporting_deadline() {
    let jobs = pipeline_week(&PipelineWeekSpec::default()).unwrap();
    let cfg = SimConfig::default();
    let avg_nodes =
        ((total_work_core_ms(&jobs) as f64 / cfg.horizon_ms as f64 / cfg.node.cores as f64).ceil()
            as u32)
            .max(1);
    let mut p = FixedPolicy::new(avg_nodes);
    let r = simulate(&jobs, &mut p, &cfg).unwrap();
    let rollup = r
        .jobs
        .iter()
        .find(|j| j.stage == Stage::PortfolioRollup)
        .unwrap();
    // The average-sized cluster finishes the work eventually…
    assert!(r.all_complete());
    // …but blows the stage-2 reporting window: that is the paper's
    // case against static provisioning.
    assert_eq!(rollup.deadline_met(), Some(false));
}

#[test]
fn elastic_policies_match_peak_attainment_at_fraction_of_cost() {
    let jobs = pipeline_week(&PipelineWeekSpec::default()).unwrap();
    let cfg = SimConfig::default();
    let peak = peak_nodes(&jobs, &cfg);

    let mut fixed = FixedPolicy::new(peak);
    let rf = simulate(&jobs, &mut fixed, &cfg).unwrap();
    assert!(rf.all_complete());
    assert!(rf.deadline_attainment() > 0.99);

    let mut reactive = ReactivePolicy::new(2, peak);
    let rr = simulate(&jobs, &mut reactive, &cfg).unwrap();
    assert!(rr.all_complete());
    assert!(
        rr.deadline_attainment() > 0.99,
        "reactive attainment {}",
        rr.deadline_attainment()
    );

    let burst = 4 * DAY_MS + 17 * HOUR_MS;
    let mut sched = ScheduledPolicy {
        windows: vec![(burst, burst + 14 * HOUR_MS, peak)],
        base_nodes: 2,
    };
    let rs = simulate(&jobs, &mut sched, &cfg).unwrap();
    assert!(rs.all_complete());
    assert!(rs.deadline_attainment() > 0.99);

    // The elastic runs pay well under a quarter of the fixed-peak
    // bill for the same outcomes — the quantified "cloud is
    // attractive" claim.
    assert!(rr.core_hours() < 0.25 * rf.core_hours());
    assert!(rs.core_hours() < 0.25 * rf.core_hours());
    // And use their capacity much better.
    assert!(rr.utilization() > 2.0 * rf.utilization());
}

#[test]
fn busy_core_time_is_conserved_across_policies() {
    let jobs = pipeline_week(&PipelineWeekSpec::default()).unwrap();
    let cfg = SimConfig::default();
    let total = total_work_core_ms(&jobs);
    let peak = peak_nodes(&jobs, &cfg);
    for mut p in [
        Box::new(FixedPolicy::new(peak)) as Box<dyn riskpipe::cloud::Policy>,
        Box::new(ReactivePolicy::new(2, peak)),
    ] {
        let r = simulate(&jobs, p.as_mut(), &cfg).unwrap();
        assert!(r.all_complete());
        // Exactly the workload's core-time is executed, no more, no
        // less, regardless of who provisioned what.
        assert_eq!(r.busy_core_ms, total, "policy {}", r.policy);
        assert!(r.capacity_core_ms >= r.busy_core_ms);
    }
}

#[test]
fn boot_latency_visible_in_reactive_wait_times() {
    let jobs = pipeline_week(&PipelineWeekSpec::default()).unwrap();
    let slow = SimConfig {
        node: NodeSpec {
            cores: 8,
            boot_ms: 20 * 60_000, // 20-minute instances
        },
        ..SimConfig::default()
    };
    let fast = SimConfig::default(); // 2-minute boots
    let peak = peak_nodes(&jobs, &fast);
    let run = |cfg: &SimConfig| {
        let mut p = ReactivePolicy::new(2, peak);
        simulate(&jobs, &mut p, cfg).unwrap()
    };
    let r_slow = run(&slow);
    let r_fast = run(&fast);
    let span = |r: &riskpipe::cloud::SimResult| {
        r.jobs
            .iter()
            .find(|j| j.stage == Stage::PortfolioRollup)
            .unwrap()
            .span_ms()
            .unwrap()
    };
    // Slower boots stretch the burst job.
    assert!(span(&r_slow) >= span(&r_fast));
}

#[test]
fn stage1_fits_on_a_handful_of_nodes_all_week() {
    // The paper: "in the first stage less than ten processors may be
    // sufficient". Run *only* the stage-1 jobs on a 1-node cluster and
    // watch every daily deadline hold.
    let jobs: Vec<JobSpec> = pipeline_week(&PipelineWeekSpec::default())
        .unwrap()
        .into_iter()
        .filter(|j| j.stage == Stage::RiskModelling)
        .map(|mut j| {
            j.after = None; // dependencies pointed at filtered-out jobs
            j
        })
        .collect();
    assert_eq!(jobs.len(), 7);
    let cfg = SimConfig::default(); // 8-core node
    let mut p = FixedPolicy::new(1);
    let r = simulate(&jobs, &mut p, &cfg).unwrap();
    assert!(r.all_complete());
    assert!((r.deadline_attainment() - 1.0).abs() < 1e-12);
}
