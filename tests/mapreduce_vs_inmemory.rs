//! The paper's two data-management strategies must agree: YELLT
//! analytics computed in accumulated memory and over distributed file
//! space (MapReduce) give the same answers.

use riskpipe::catmodel::{
    simulate_yet, CatalogConfig, EltGenConfig, EventCatalog, ExposureConfig, ExposurePortfolio,
    GroundUpModel, YetConfig,
};
use riskpipe::exec::ThreadPool;
use riskpipe::mapreduce::{EventContributionJob, LocationRiskJob};
use riskpipe::tables::{ShardedReader, ShardedWriter, Yellt};
use riskpipe::types::{RiskResult, TrialId};
use std::collections::HashMap;
use std::path::PathBuf;

struct Fixture {
    yellt: Yellt,
    store_dir: PathBuf,
    trials: usize,
}

/// Build the same YELLT twice: once in memory, once as a sharded store.
fn build_fixture(seed: u64) -> RiskResult<Fixture> {
    let pool = ThreadPool::new(4);
    let trials = 400usize;
    let catalog = EventCatalog::generate(&CatalogConfig {
        events: 1_000,
        total_annual_rate: 15.0,
        seed,
        ..CatalogConfig::default()
    })?;
    let exposure = ExposurePortfolio::generate(&ExposureConfig {
        locations: 80,
        seed: seed ^ 1,
        ..ExposureConfig::default()
    })?;
    let model = GroundUpModel::new(&catalog, &exposure, EltGenConfig::default());
    let yet = simulate_yet(
        &catalog,
        &YetConfig {
            trials,
            seed: seed ^ 2,
        },
        &pool,
    )?;

    let store_dir =
        std::env::temp_dir().join(format!("riskpipe-mrvm-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut writer = ShardedWriter::create(&store_dir, 4)?;
    let mut yellt = Yellt::new();
    for t in 0..trials {
        let (events, _days, _zs) = yet.trial_slices(TrialId::new(t as u32));
        for &e in events {
            model.for_each_location_loss(e as usize, |loc, loss| {
                yellt.push(t as u32, e, loc, loss);
                let _ = writer.push_row(t as u32, e, loc, loss);
            });
        }
    }
    writer.finish()?;
    Ok(Fixture {
        yellt,
        store_dir,
        trials,
    })
}

#[test]
fn location_totals_agree_between_memory_and_mapreduce() {
    let f = build_fixture(61).unwrap();
    let pool = ThreadPool::new(4);

    // In-memory: streaming chunk scan.
    let (mem_by_loc, _) = f.yellt.scan_loss_by_location();

    // Distributed-file-space: MapReduce job (mean × trials = total).
    let reader = ShardedReader::open(&f.store_dir).unwrap();
    let job = LocationRiskJob {
        trials: f.trials,
        alpha: 0.99,
    };
    let (rows, stats) = job.run(&reader, 3, &pool).unwrap();

    assert_eq!(rows.len(), mem_by_loc.len());
    for row in &rows {
        let mem_total = mem_by_loc[&row.location.raw()];
        let mr_total = row.mean_annual_loss * f.trials as f64;
        assert!(
            (mem_total - mr_total).abs() < 1e-6 * mem_total.max(1.0),
            "location {}: memory {mem_total} vs mapreduce {mr_total}",
            row.location
        );
    }
    assert_eq!(stats.input_rows, f.yellt.rows());
    std::fs::remove_dir_all(&f.store_dir).unwrap();
}

#[test]
fn event_contributions_agree_between_memory_and_mapreduce() {
    let f = build_fixture(62).unwrap();
    let pool = ThreadPool::new(2);

    // In-memory reference.
    let mut mem: HashMap<u32, f64> = HashMap::new();
    for chunk in f.yellt.chunks() {
        for i in 0..chunk.rows() {
            *mem.entry(chunk.events[i]).or_insert(0.0) += chunk.losses[i];
        }
    }

    let reader = ShardedReader::open(&f.store_dir).unwrap();
    let (rows, _) = EventContributionJob.run(&reader, 4, &pool).unwrap();
    assert_eq!(rows.len(), mem.len());
    for (e, total) in &rows {
        let mem_total = mem[e];
        assert!(
            (mem_total - total).abs() < 1e-6 * mem_total.max(1.0),
            "event {e}"
        );
    }
    // Sorted descending.
    for w in rows.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
    std::fs::remove_dir_all(&f.store_dir).unwrap();
}
