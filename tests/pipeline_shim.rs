//! The deprecated `Pipeline` shim's compatibility contract, enforced at
//! the integration level: every configuration knob must delegate to the
//! session and produce results bit-identical to the facade it fronts.

#![allow(deprecated)]

use riskpipe::aggregate::EngineKind;
use riskpipe::core::{Pipeline, PipelineConfig, RiskSession, ScenarioConfig};
use riskpipe::exec::ThreadPool;
use riskpipe::types::RiskResult;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("riskpipe-shim-{tag}-{}-{n}", std::process::id()))
}

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig::small().with_seed(seed).with_trials(300)
}

#[test]
fn shim_defaults_match_a_default_session() -> RiskResult<()> {
    let pool = Arc::new(ThreadPool::new(2));
    let shim = Pipeline::new(scenario(201)).run(Arc::clone(&pool))?;
    let facade = RiskSession::builder()
        .pool(pool)
        .build()?
        .run(&scenario(201))?;
    assert_eq!(shim.ylt, facade.ylt);
    assert_eq!(shim.measures, facade.measures);
    assert_eq!(shim.scenario_name, facade.scenario_name);
    assert_eq!(shim.yelt_file_bytes, 0, "default shim stays in memory");
    Ok(())
}

#[test]
fn shim_engine_choice_delegates_per_engine() -> RiskResult<()> {
    let pool = Arc::new(ThreadPool::new(2));
    for kind in EngineKind::ALL {
        let shim = Pipeline::new(scenario(202))
            .with_engine(kind)
            .run(Arc::clone(&pool))?;
        let facade = RiskSession::builder()
            .engine(kind)
            .pool(Arc::clone(&pool))
            .build()?
            .run(&scenario(202))?;
        assert_eq!(shim.ylt, facade.ylt, "{kind:?} diverged through the shim");
    }
    Ok(())
}

#[test]
fn shim_sharded_files_keeps_its_historical_layout() -> RiskResult<()> {
    // Pre-facade callers read the spill from the exact directory they
    // configured — the session's run-0 layout preserves that.
    let dir = temp("layout");
    let report = Pipeline::new(scenario(203))
        .with_sharded_files(dir.clone(), 3)
        .run(Arc::new(ThreadPool::new(2)))?;
    assert!(report.yelt_file_bytes > 0);
    let reader = riskpipe::tables::ShardedReader::open(&dir)?;
    assert_eq!(reader.rows() as usize, report.yelt_rows);
    assert_eq!(reader.shard_count(), 3);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

#[test]
fn shim_is_reusable_and_deterministic() -> RiskResult<()> {
    // Each run() builds a fresh one-shot session, so repeated runs (and
    // different pool widths) must agree bit-for-bit.
    let pipeline = Pipeline::new(scenario(204));
    let a = pipeline.run(Arc::new(ThreadPool::new(1)))?;
    let b = pipeline.run(Arc::new(ThreadPool::new(4)))?;
    assert_eq!(a.ylt, b.ylt);
    assert_eq!(a.measures, b.measures);
    Ok(())
}

#[test]
fn pipeline_config_alias_still_compiles_and_runs() -> RiskResult<()> {
    // The pre-facade name for ScenarioConfig remains usable.
    let cfg: PipelineConfig = PipelineConfig::small().with_seed(205).with_trials(200);
    let report = Pipeline::new(cfg).run(Arc::new(ThreadPool::new(2)))?;
    assert_eq!(report.ylt.trials(), 200);
    Ok(())
}

#[test]
fn shim_rejects_invalid_scenarios_like_the_session() {
    let mut bad = scenario(206);
    bad.events = 0;
    let shim = Pipeline::new(bad.clone()).run(Arc::new(ThreadPool::new(2)));
    assert!(shim.is_err());
    let facade = RiskSession::builder().pool_threads(2).build().unwrap();
    assert!(facade.run(&bad).is_err());
}
