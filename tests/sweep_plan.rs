//! The `SweepPlan` contract: one declared plan drives one streaming
//! pass, every attached consumer receives the full input-ordered
//! report stream, and each consumer's artifact is **bit-identical** to
//! what the pre-redesign single-sink path produced — on any thread
//! count, with any combination of other consumers attached. Also
//! proptests the `FanoutSink` combinator: delivery order and per-sink
//! results are independent of how many sinks ride the sweep.

use proptest::prelude::*;
use riskpipe::analytics::{DrilldownLayout, ScenarioDims, SessionAnalytics, SweepPlanAnalytics};
use riskpipe::core::{
    FanoutSink, PersistingSink, PipelineReport, ReportSink, RiskSession, ScenarioConfig,
    ShardedFilesStore, StageTiming, SweepSummary,
};
use riskpipe::metrics::RiskMeasures;
use riskpipe::prelude::{LevelSelect, Query, RiskResult};
use riskpipe::types::TrialId;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("riskpipe-plan-{tag}-{}-{n}", std::process::id()))
}

/// An attachment-factor sweep: every scenario shares one stage-1 key.
fn pricing_sweep(seed: u64, points: usize) -> Vec<ScenarioConfig> {
    (0..points)
        .map(|i| {
            ScenarioConfig::small()
                .with_seed(seed)
                .with_trials(300)
                .with_name(format!("attach-{i}"))
                .with_attachment_factor(0.25 + 0.25 * i as f64)
        })
        .collect()
}

/// A 2-region × 2-peril grid for warehouse-bearing plans.
fn grid(seed: u64) -> (Vec<ScenarioConfig>, Vec<ScenarioDims>) {
    let mut scenarios = Vec::new();
    let mut dims = Vec::new();
    for region in 0..2u32 {
        for peril in 0..2u32 {
            let s = ScenarioConfig::small()
                .with_seed(seed + (region * 2 + peril) as u64)
                .with_trials(300)
                .with_name(format!("r{region}-p{peril}"));
            dims.push(ScenarioDims::for_scenario(region, peril, &s));
            scenarios.push(s);
        }
    }
    (scenarios, dims)
}

/// Every pooled number a summary answers, as bits — including the new
/// per-return-period-band OEP tail means.
fn summary_bits(s: &SweepSummary) -> Vec<u64> {
    let mut bits = vec![
        s.trials(),
        s.scenarios() as u64,
        s.pooled_var99().unwrap().to_bits(),
        s.pooled_tvar99().unwrap().to_bits(),
        s.pooled_pml(100.0).unwrap().to_bits(),
    ];
    bits.extend(s.aep_points().iter().map(|p| p.loss.to_bits()));
    bits.extend(s.oep_points().iter().map(|p| p.loss.to_bits()));
    for (lo, hi) in [(5.0, 25.0), (25.0, 100.0), (100.0, f64::INFINITY)] {
        bits.push(s.tail_mean_between(lo, hi).map(f64::to_bits).unwrap_or(0));
    }
    bits
}

/// One base cell as comparable bits: (codes, count, var99, tvar99).
type CellBits = (Vec<u32>, u64, u64, u64);

/// Every base cell of a warehouse, as comparable bits.
fn warehouse_bits(wh: &riskpipe::analytics::Drilldown) -> Vec<CellBits> {
    let (rows, _) = wh.answer(&Query::group_by(LevelSelect::BASE)).unwrap();
    rows.iter()
        .map(|r| {
            (
                r.codes.to_vec(),
                r.cell.count,
                r.cell.var99().unwrap().to_bits(),
                r.cell.tvar99().unwrap().to_bits(),
            )
        })
        .collect()
}

/// Per-slot persisted artifacts (encoded YLT + rendered measures) of a
/// `ShardedFilesStore` run.
fn persisted_artifacts(dir: &std::path::Path, slots: usize) -> Vec<(Vec<u8>, String)> {
    (0..slots)
        .map(|i| {
            let slot_dir = dir.join(format!("batch-{i:03}"));
            (
                std::fs::read(slot_dir.join(ShardedFilesStore::YLT_FILE)).unwrap(),
                std::fs::read_to_string(slot_dir.join(ShardedFilesStore::MEASURES_FILE)).unwrap(),
            )
        })
        .collect()
}

// Golden pooled values for 3 copies of the golden scenario (seed
// 0x601D, 500 trials), pinned in tests/golden_metrics.rs from the
// pre-redesign single-sink reference run — the plan path must
// reproduce them bit for bit.
const GOLDEN_SWEEP_SCENARIOS: usize = 3;
const GOLDEN_POOLED_VAR99_BITS: u64 = 0x41A3_46E9_61CE_AC2F;
const GOLDEN_POOLED_TVAR99_BITS: u64 = 0x41A7_ABEB_4E97_BBBA;
const GOLDEN_POOLED_PML100_BITS: u64 = 0x41A3_46E9_61CE_AC2F;

#[test]
fn summary_only_plan_matches_hand_composed_sink_and_goldens() -> RiskResult<()> {
    let scenarios = pricing_sweep(0x51, 8);
    let mut seen: Vec<Vec<u64>> = Vec::new();
    for threads in [1usize, 2, 8] {
        // Hand-composed pre-redesign path: the summary as the only
        // run_stream sink.
        let session = RiskSession::builder().pool_threads(threads).build()?;
        let mut hand = SweepSummary::new();
        session.run_stream(&scenarios, &mut hand)?;

        // Plan path, fresh session (fresh cache) for a clean
        // comparison.
        let session = RiskSession::builder().pool_threads(threads).build()?;
        let outcome = session.sweep(&scenarios).summary().drive()?;
        assert_eq!(outcome.delivered(), scenarios.len());
        let plan = outcome.summary().expect("summary was requested");
        assert!(
            outcome.persisted().is_none(),
            "persistence was not requested"
        );
        assert!(outcome.reports().is_none(), "collection was not requested");

        assert_eq!(
            summary_bits(plan),
            summary_bits(&hand),
            "plan vs hand-composed summary on {threads} threads"
        );
        seen.push(summary_bits(plan));
    }
    assert!(
        seen.windows(2).all(|w| w[0] == w[1]),
        "pooled analytics must be thread-count independent"
    );

    // Golden pins: the plan path reproduces the pre-redesign pooled
    // golden values bit for bit.
    let golden: Vec<ScenarioConfig> = (0..GOLDEN_SWEEP_SCENARIOS)
        .map(|_| ScenarioConfig::small().with_seed(0x601D).with_trials(500))
        .collect();
    let session = RiskSession::builder().pool_threads(4).build()?;
    let outcome = session.sweep(&golden).summary().drive()?;
    let summary = outcome.into_summary().unwrap();
    assert_eq!(summary.trials(), 1500);
    assert_eq!(
        summary.pooled_var99().unwrap().to_bits(),
        GOLDEN_POOLED_VAR99_BITS
    );
    assert_eq!(
        summary.pooled_tvar99().unwrap().to_bits(),
        GOLDEN_POOLED_TVAR99_BITS
    );
    assert_eq!(
        summary.pooled_pml(100.0).unwrap().to_bits(),
        GOLDEN_POOLED_PML100_BITS
    );
    Ok(())
}

#[test]
fn summary_persist_plan_matches_hand_composed_persisting_sink() -> RiskResult<()> {
    let scenarios = pricing_sweep(0x52, 4);
    for threads in [1usize, 2, 8] {
        // Hand-composed pre-redesign path: a PersistingSink (embedded
        // summary) as the only sink.
        let hand_dir = temp("hand");
        let hand_store = Arc::new(ShardedFilesStore::new(&hand_dir, 2)?);
        let session = RiskSession::builder().pool_threads(threads).build()?;
        let mut hand = PersistingSink::new(hand_store.clone());
        session.run_stream(&scenarios, &mut hand)?;

        // Plan path into its own directory.
        let plan_dir = temp("plan");
        let plan_store = Arc::new(ShardedFilesStore::new(&plan_dir, 2)?);
        let session = RiskSession::builder().pool_threads(threads).build()?;
        let outcome = session
            .sweep(&scenarios)
            .summary()
            .persist_to(plan_store.clone())
            .drive()?;

        let persisted = outcome.persisted().expect("persistence was requested");
        assert_eq!(persisted.reports(), hand.reports_persisted());
        assert_eq!(persisted.bytes(), hand.bytes_persisted());
        assert_eq!(persisted.run(), 0);
        assert_eq!(
            summary_bits(outcome.summary().unwrap()),
            summary_bits(hand.summary()),
            "plan vs PersistingSink summary on {threads} threads"
        );
        // Durable artifacts are byte-identical, slot for slot.
        assert_eq!(
            persisted_artifacts(&plan_dir, scenarios.len()),
            persisted_artifacts(&hand_dir, scenarios.len()),
            "persisted artifacts diverged on {threads} threads"
        );
        // And the spill reloads bit-exactly through the plan's handle.
        let reloaded = plan_store.load_report_ylt(Some(2), persisted.run())?;
        let solo = session.run(&scenarios[2])?;
        assert_eq!(reloaded, solo.ylt);

        for dir in [hand_dir, plan_dir] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    Ok(())
}

#[test]
fn summary_warehouse_plan_matches_single_sink_paths() -> RiskResult<()> {
    let (scenarios, dims) = grid(0x53);
    let mut seen: Vec<Vec<CellBits>> = Vec::new();
    for threads in [1usize, 2, 8] {
        // Hand-composed pre-redesign warehouse path (the deprecated
        // single-sink shim must stay bit-identical until removal).
        let session = RiskSession::builder().pool_threads(threads).build()?;
        let layout = DrilldownLayout::new(dims.clone(), session.engine())?;
        #[allow(deprecated)]
        let hand_wh = session
            .analytics(layout.clone())
            .sweep_to_warehouse(&scenarios)?;
        // Hand-composed summary.
        let mut hand_summary = SweepSummary::new();
        let session = RiskSession::builder().pool_threads(threads).build()?;
        session.run_stream(&scenarios, &mut hand_summary)?;

        // Plan path: both consumers on one pass.
        let session = RiskSession::builder().pool_threads(threads).build()?;
        let outcome = session
            .sweep(&scenarios)
            .summary()
            .warehouse(layout)
            .drive()?;
        assert_eq!(outcome.delivered(), scenarios.len());
        assert_eq!(
            summary_bits(outcome.summary().unwrap()),
            summary_bits(&hand_summary),
            "summary perturbed by the warehouse consumer on {threads} threads"
        );
        let bits = warehouse_bits(outcome.drilldown());
        assert_eq!(
            bits,
            warehouse_bits(&hand_wh),
            "warehouse cells diverged from the single-sink path on {threads} threads"
        );
        seen.push(bits);
    }
    assert!(
        seen.windows(2).all(|w| w[0] == w[1]),
        "warehouse cells must be thread-count independent"
    );
    Ok(())
}

/// The acceptance shape: ONE `drive()` call produces pooled summary
/// metrics, a persisted `ShardedFilesStore` spill, and a queryable
/// `Drilldown` — each bit-identical to its pre-redesign single-sink
/// path — while the scenarios execute exactly once.
#[test]
fn one_drive_feeds_summary_persistence_and_warehouse_from_one_pass() -> RiskResult<()> {
    let (scenarios, dims) = grid(0x54);

    // --- the single plan drive (2 threads) ---
    let plan_dir = temp("accept");
    let plan_store = Arc::new(ShardedFilesStore::new(&plan_dir, 2)?);
    let session = RiskSession::builder().pool_threads(2).build()?;
    let layout = DrilldownLayout::new(dims.clone(), session.engine())?;
    // A fourth, ad-hoc consumer rides the same pass via drive_with.
    let mut extra = SweepSummary::new();
    let outcome = session
        .sweep(&scenarios)
        .summary()
        .persist_to(plan_store.clone())
        .warehouse(layout.clone())
        .materialize_budget(256 * 1024)
        .drive_with(&mut extra)?;
    assert_eq!(outcome.delivered(), scenarios.len());
    assert!(outcome.selection().is_some(), "budget was requested");
    assert_eq!(
        summary_bits(&extra),
        summary_bits(outcome.summary().unwrap()),
        "the drive_with extra sink must see the same stream"
    );
    // One pass: the shared-key stage-1 gating saw each distinct
    // catalogue exactly once despite three consumers.
    assert_eq!(
        session.stage1_cache_stats().misses as usize,
        {
            let mut keys: Vec<u64> = scenarios.iter().map(|s| s.stage1_key()).collect();
            keys.sort_unstable();
            keys.dedup();
            keys.len()
        },
        "consumers must share one sweep, not re-run it"
    );

    // --- pre-redesign single-sink references (1 thread, so the
    //     comparison also pins cross-thread identity) ---
    let session = RiskSession::builder().pool_threads(1).build()?;
    let mut ref_summary = SweepSummary::new();
    session.run_stream(&scenarios, &mut ref_summary)?;
    assert_eq!(
        summary_bits(outcome.summary().unwrap()),
        summary_bits(&ref_summary)
    );

    let ref_dir = temp("accept-ref");
    let ref_store = Arc::new(ShardedFilesStore::new(&ref_dir, 2)?);
    let session = RiskSession::builder().pool_threads(1).build()?;
    let mut ref_sink = PersistingSink::new(ref_store.clone());
    session.run_stream(&scenarios, &mut ref_sink)?;
    assert_eq!(
        persisted_artifacts(&plan_dir, scenarios.len()),
        persisted_artifacts(&ref_dir, scenarios.len()),
        "the plan's spill must match the PersistingSink path byte for byte"
    );

    let session = RiskSession::builder().pool_threads(1).build()?;
    #[allow(deprecated)]
    let ref_wh = session
        .analytics(layout.clone())
        .sweep_to_warehouse(&scenarios)?;
    assert_eq!(warehouse_bits(outcome.drilldown()), warehouse_bits(&ref_wh));

    // The plan's spill even rebuilds the same warehouse.
    let session = RiskSession::builder().pool_threads(2).build()?;
    let rebuilt = session
        .analytics(layout)
        .rebuild_from_store(&plan_store, 0)?;
    assert_eq!(
        warehouse_bits(outcome.drilldown()),
        warehouse_bits(&rebuilt)
    );

    for dir in [plan_dir, ref_dir] {
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(())
}

#[test]
fn collect_plan_matches_deprecated_run_batch() -> RiskResult<()> {
    let scenarios = pricing_sweep(0x55, 4);
    let session = RiskSession::builder().pool_threads(2).build()?;
    #[allow(deprecated)]
    let batch = session.run_batch(&scenarios)?;
    let collected = session
        .sweep(&scenarios)
        .collect()
        .drive()?
        .into_reports()
        .expect("collection was requested");
    assert_eq!(collected.len(), batch.len());
    for (got, want) in collected.iter().zip(&batch) {
        assert_eq!(got.scenario_name, want.scenario_name);
        assert_eq!(got.ylt, want.ylt);
        assert_eq!(got.measures, want.measures);
        // The historical memory contract: collected reports drop the
        // shared sorted columns.
        assert!(got.agg_sorted.is_empty() && got.occ_sorted.is_empty());
    }
    Ok(())
}

#[test]
fn plan_errors_propagate_and_empty_plans_run_dry() -> RiskResult<()> {
    let session = RiskSession::builder().pool_threads(2).build()?;
    // A consumer-less plan still sweeps (side effects only).
    let outcome = session.sweep(&pricing_sweep(0x56, 2)).drive()?;
    assert_eq!(outcome.delivered(), 2);
    assert!(outcome.summary().is_none());
    // Scenario errors abort the drive exactly as run_stream does.
    let mut bad = ScenarioConfig::small().with_seed(0x57).with_trials(300);
    bad.trials = 0;
    let err = session
        .sweep(&[
            ScenarioConfig::small().with_seed(0x58).with_trials(300),
            bad,
        ])
        .summary()
        .drive();
    assert!(err.is_err());
    Ok(())
}

// ---------------------------------------------------------------------
// FanoutSink properties over synthetic reports.
// ---------------------------------------------------------------------

/// A minimal report carrying the given YLT column (occurrence column
/// = half the aggregate, as elsewhere in the suite).
fn synthetic_report(name: &str, losses: &[f64]) -> PipelineReport {
    let mut ylt = riskpipe::tables::Ylt::zeroed(losses.len());
    for (t, &x) in losses.iter().enumerate() {
        ylt.set_trial(TrialId::new(t as u32), x, x / 2.0, 1);
    }
    let agg_sorted = ylt.sorted_agg_losses();
    let occ_sorted = ylt.sorted_max_occ_losses();
    let stage = |n| StageTiming {
        stage: n,
        elapsed: Duration::ZERO,
    };
    PipelineReport {
        scenario_name: name.into(),
        timings: [stage(1), stage(2), stage(3)],
        elt_rows: 0,
        yet_occurrences: 0,
        yelt_rows: losses.len(),
        yelt_memory_bytes: 0,
        yelt_file_bytes: 0,
        ylt_encoded_bytes: 0,
        measures: RiskMeasures {
            mean: 0.0,
            sd: 0.0,
            var99: 0.0,
            tvar99: 1.0,
            var996: 0.0,
            oep_pml100: 0.0,
        },
        pml_100: None,
        prob_ruin: 0.0,
        mean_net_income: 0.0,
        economic_capital: 0.0,
        agg_sorted,
        occ_sorted,
        ylt,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fan-out invariants: every sink sees every slot in input order,
    /// and each sink's accumulated result is bit-identical to what it
    /// would produce alone — independent of how many siblings ride
    /// the same delivery.
    #[test]
    fn fanout_order_and_results_independent_of_sink_count(
        nsinks in 1usize..=6,
        nreports in 1usize..=4,
        seed in 0u64..512,
    ) {
        let reports: Vec<PipelineReport> = (0..nreports)
            .map(|r| {
                let losses: Vec<f64> = (0..40)
                    .map(|i| (((seed + r as u64) * 61 + i) % 509) as f64 * 0.75)
                    .collect();
                synthetic_report(&format!("r{r}"), &losses)
            })
            .collect();

        // Reference: one summary fed alone.
        let mut reference = SweepSummary::new();
        for report in &reports {
            reference.push(report);
        }

        // nsinks summaries plus an order-recording closure (which
        // exercises the clone-fallback shared path) on one fan-out.
        let mut summaries = vec![SweepSummary::new(); nsinks];
        let mut order: Vec<usize> = Vec::new();
        {
            let mut fan = FanoutSink::new();
            for s in summaries.iter_mut() {
                fan.push(s);
            }
            fan.push(|slot, _report: PipelineReport| {
                order.push(slot);
                Ok(())
            });
            prop_assert_eq!(fan.len(), nsinks + 1);
            for (slot, report) in reports.iter().enumerate() {
                fan.accept(slot, report.clone()).unwrap();
            }
        }
        prop_assert_eq!(order, (0..nreports).collect::<Vec<_>>());
        for s in &summaries {
            prop_assert_eq!(s.trials(), reference.trials());
            prop_assert_eq!(
                s.pooled_var99().unwrap().to_bits(),
                reference.pooled_var99().unwrap().to_bits()
            );
            prop_assert_eq!(
                s.pooled_tvar99().unwrap().to_bits(),
                reference.pooled_tvar99().unwrap().to_bits()
            );
        }
    }

    /// Tee ownership: the second sink receives the very report the
    /// first read shared — same slots, same bits, no perturbation.
    #[test]
    fn tee_delivers_shared_then_owned(seed in 0u64..512) {
        let reports: Vec<PipelineReport> = (0..3)
            .map(|r| {
                let losses: Vec<f64> = (0..30)
                    .map(|i| (((seed + r as u64) * 37 + i) % 211) as f64)
                    .collect();
                synthetic_report(&format!("t{r}"), &losses)
            })
            .collect();
        let mut reference = SweepSummary::new();
        for report in &reports {
            reference.push(report);
        }

        let mut shared = SweepSummary::new();
        let mut owned: Vec<(usize, PipelineReport)> = Vec::new();
        {
            let mut tee = ReportSink::tee(&mut shared, |slot, report: PipelineReport| {
                owned.push((slot, report));
                Ok(())
            });
            for (slot, report) in reports.iter().enumerate() {
                tee.accept(slot, report.clone()).unwrap();
            }
        }
        prop_assert_eq!(
            shared.pooled_tvar99().unwrap().to_bits(),
            reference.pooled_tvar99().unwrap().to_bits()
        );
        prop_assert_eq!(owned.len(), reports.len());
        for (i, (slot, report)) in owned.iter().enumerate() {
            prop_assert_eq!(*slot, i);
            prop_assert_eq!(&report.ylt, &reports[i].ylt);
            // Ownership passed through untouched: the shared sorted
            // columns are still attached (only `collect()` clears
            // them).
            prop_assert_eq!(report.agg_sorted.len(), reports[i].ylt.trials());
        }
    }
}
