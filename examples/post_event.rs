//! Rapid post-event loss estimation: an actual catastrophe has just
//! happened; estimate the book's loss and the hardest-hit locations in
//! milliseconds — the real-time companion workflow to the batch
//! pipeline (the paper's reference [2]).
//!
//! ```text
//! cargo run --release --example post_event
//! ```

use riskpipe_catmodel::{
    postevent::{rapid_estimate, ObservedEvent},
    EltGenConfig, ExposureConfig, ExposurePortfolio, GeoPoint, Peril,
};
use riskpipe_types::RiskResult;
use std::time::Instant;

fn main() -> RiskResult<()> {
    // The live exposure database (in production: loaded, not generated).
    let exposure = ExposurePortfolio::generate(&ExposureConfig {
        locations: 2_000,
        seed: 99,
        ..ExposureConfig::default()
    })?;
    println!(
        "exposure book: {} locations, {:.0} total insured value",
        exposure.len(),
        exposure.total_tiv()
    );

    // News wire: M7.8 earthquake near the largest concentration.
    let epicentre = exposure.locations()[0].position;
    let event = ObservedEvent {
        peril: Peril::Earthquake,
        magnitude: 7.8,
        center: GeoPoint::new(epicentre.x + 15.0, epicentre.y - 10.0),
    };
    println!(
        "\nobserved event: M{:.1} {} at ({:.0} km, {:.0} km)",
        event.magnitude, event.peril, event.center.x, event.center.y
    );

    // lint: allow(D3) — demo-only latency printout; the estimate itself
    // is seeded and deterministic.
    let t0 = Instant::now();
    let estimate = rapid_estimate(&event, &exposure, &EltGenConfig::default(), 10)?;
    let elapsed = t0.elapsed();

    println!("\nrapid estimate ({:.1} ms):", elapsed.as_secs_f64() * 1e3);
    println!("  expected insured loss : {:>16.0}", estimate.mean_loss);
    println!("  loss std deviation    : {:>16.0}", estimate.sigma);
    println!(
        "  affected locations    : {:>16}",
        estimate.affected_locations
    );
    println!("\nclaims-team deployment list (top locations by expected loss):");
    println!("{:>10} {:>16}", "location", "expected loss");
    for (loc, loss) in &estimate.top_locations {
        println!("{:>10} {:>16.0}", loc.raw(), loss);
    }
    Ok(())
}
