//! Telemetry-enabled sweep: drive one declarative plan with the flight
//! recorder on, then read where the wall-clock went — per-stage spans,
//! deterministic pipeline counters, and exportable trace files.
//!
//! ```text
//! cargo run --release --example telemetry_sweep
//! ```
//!
//! Demonstrates the observability story end to end:
//!
//! * `RiskSessionBuilder::telemetry(..)` arms a [`Telemetry`] handle;
//!   every layer the sweep touches then records spans (stage-1 builds,
//!   stage-2 engine runs, sink deliveries, warehouse shuffle tasks,
//!   durable fsyncs) and bumps deterministic counters;
//! * `SweepOutcome::telemetry()` returns the stitched snapshot — span
//!   timings are diagnostic-only, while the metrics half is
//!   bit-identical on any thread count;
//! * the snapshot exports as pinned-schema JSON and as a
//!   chrome://tracing file — open the latter at `chrome://tracing` or
//!   <https://ui.perfetto.dev> for the flame view.

use riskpipe::analytics::{DrilldownLayout, ScenarioDims, SweepPlanAnalytics};
use riskpipe::prelude::*;
use std::sync::Arc;

fn main() -> RiskResult<()> {
    let telemetry = Telemetry::new();
    let session = RiskSession::builder()
        .engine(EngineKind::CpuParallel)
        .telemetry(telemetry.clone())
        .build()?;
    println!(
        "session: {:?} engine, {} threads, flight recorder armed",
        session.engine(),
        session.pool().thread_count(),
    );

    // A 2-region × 3-peril grid so the warehouse has dimensions to
    // drill into and stage 1 builds six distinct catalogues.
    let mut scenarios = Vec::new();
    let mut dims = Vec::new();
    for region in 0..2u32 {
        for peril in 0..3u32 {
            let s = ScenarioConfig::small()
                .with_seed(2026 + (region * 3 + peril) as u64)
                .with_trials(1_000)
                .with_name(format!("r{region}-p{peril}"));
            dims.push(ScenarioDims::for_scenario(region, peril, &s));
            scenarios.push(s);
        }
    }

    // One plan, three consumers, recorder on: pooled analytics, durable
    // artifacts, and a drill-down warehouse from a single pass.
    let spill = std::env::temp_dir().join("riskpipe-telemetry-example");
    let _ = std::fs::remove_dir_all(&spill);
    let store = Arc::new(riskpipe::core::ShardedFilesStore::new(&spill, 2)?);
    let layout = DrilldownLayout::new(dims, session.engine())?;
    let outcome = session
        .sweep(&scenarios)
        .summary()
        .persist_to(store)
        .warehouse(layout)
        .drive()?;
    println!(
        "drove {} scenarios; pooled TVaR99 {:.0}\n",
        outcome.delivered(),
        outcome
            .summary()
            .expect("requested")
            .pooled_tvar99()
            .unwrap_or(0.0),
    );

    let snap = outcome.telemetry().expect("session has telemetry");

    // --- the flame view, folded to per-stage totals ---------------
    println!(
        "span totals ({} spans, {} dropped):",
        snap.spans().len(),
        snap.dropped()
    );
    let mut totals: std::collections::BTreeMap<&str, (usize, u64)> = Default::default();
    for s in snap.spans() {
        let e = totals.entry(s.name).or_default();
        e.0 += 1;
        e.1 += s.dur_ns;
    }
    for (name, (count, ns)) in &totals {
        println!("  {name:<22} ×{count:<4} {:>10.3} ms", *ns as f64 / 1e6);
    }

    // --- the deterministic half ------------------------------------
    let m = snap.metrics();
    println!("\npipeline counters (bit-identical on any thread count):");
    for (name, value) in &m.counters {
        println!("  {name:<22} {value}");
    }
    for (name, h) in &m.histograms {
        println!(
            "  {name:<22} total {} sum {} counts {:?}",
            h.total, h.sum, h.counts
        );
    }

    // --- exports ---------------------------------------------------
    let out_dir = std::env::temp_dir().join("riskpipe-telemetry-out");
    std::fs::create_dir_all(&out_dir)?;
    let json_path = out_dir.join("telemetry.json");
    let trace_path = out_dir.join("trace.json");
    std::fs::write(&json_path, snap.to_json())?;
    std::fs::write(&trace_path, snap.to_chrome_trace())?;
    println!(
        "\nwrote {} (schema v{}) and {} — load the trace at chrome://tracing",
        json_path.display(),
        riskpipe::obs::JSON_SCHEMA_VERSION,
        trace_path.display()
    );

    std::fs::remove_dir_all(&spill).ok();
    Ok(())
}
