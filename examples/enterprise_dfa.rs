//! Stage 3 in full: Dynamic Financial Analysis and the enterprise
//! roll-up — catastrophe YLTs integrated with investment, interest-rate,
//! market-cycle, counterparty, operational and reserve risks, then
//! consolidated across business units with rank correlation.
//!
//! ```text
//! cargo run --release --example enterprise_dfa
//! ```

use riskpipe_aggregate::EngineKind;
use riskpipe_core::{RiskSession, ScenarioConfig};
use riskpipe_dfa::{
    run_horizon, AllocationMethod, BusinessUnit, CompanyConfig, CorrelationMatrix, DfaEngine,
    EnterpriseRollup, HorizonConfig,
};
use riskpipe_types::RiskResult;

fn main() -> RiskResult<()> {
    // Three regional business units, each its own stage-1/2 run on a
    // shared trial count — one session, one concurrent batch.
    let trials = 5_000;
    let names = ["north-america", "europe", "japan"];
    let session = RiskSession::builder()
        .engine(EngineKind::CpuParallel)
        .build()?;
    let scenarios: Vec<ScenarioConfig> = (0..names.len())
        .map(|i| {
            ScenarioConfig::small()
                .with_seed(100 + i as u64)
                .with_trials(trials)
        })
        .collect();
    let reports = session
        .sweep(&scenarios)
        .collect()
        .drive()?
        .into_reports()
        .expect("collection was requested");
    let mut units = Vec::new();
    for (name, report) in names.iter().zip(reports) {
        println!(
            "{name:>14}: mean annual cat loss {:>14.0}",
            report.ylt.mean_annual_loss()
        );
        units.push(BusinessUnit {
            name: name.to_string(),
            ylt: report.ylt,
        });
    }

    // Enterprise roll-up: moderate inter-region correlation.
    let rollup = EnterpriseRollup {
        units: units.clone(),
        correlation: CorrelationMatrix::exchangeable(3, 0.25)?,
        seed: 77,
    };
    let enterprise = rollup.run()?;
    println!("\nenterprise view:");
    for (name, tvar) in &enterprise.standalone_tvar99 {
        println!("  standalone TVaR99 {name:>14}: {tvar:>16.0}");
    }
    println!(
        "  enterprise TVaR99         : {:>16.0}",
        enterprise.enterprise_tvar99
    );
    println!(
        "  diversification benefit   : {:>15.1}%",
        enterprise.diversification_benefit * 100.0
    );

    // Capital allocation: attribute the enterprise tail back to the
    // units (Euler/co-TVaR vs the naive proportional split).
    let co = rollup.allocate(0.99, AllocationMethod::CoTvar)?;
    let prop = rollup.allocate(0.99, AllocationMethod::Proportional)?;
    println!(
        "\ncapital allocation of enterprise TVaR99 ({:.0}):",
        co.enterprise_tvar
    );
    println!(
        "{:>16} {:>16} {:>16} {:>16}",
        "unit", "standalone", "co-TVaR share", "proportional"
    );
    for (u_co, u_prop) in co.units.iter().zip(prop.units.iter()) {
        println!(
            "{:>16} {:>16.0} {:>16.0} {:>16.0}",
            u_co.name, u_co.standalone_tvar, u_co.allocated, u_prop.allocated
        );
    }

    // Full DFA on the consolidated book.
    let mut consolidated = units.remove(0).ylt;
    for u in units {
        consolidated.add(&u.ylt)?;
    }
    // Scale the cat book to the company's size.
    let company = CompanyConfig::typical();
    let scale = 0.3 * company.gross_premium / consolidated.mean_annual_loss().max(1.0);
    consolidated.scale(scale);

    let dfa = DfaEngine::typical(company);
    let result = dfa.run(&consolidated, 2026)?;
    println!(
        "\nDFA (catastrophe + investment + rates + cycle + counterparty + operational + reserve):"
    );
    println!("  mean net income  : {:>16.0}", result.mean_net_income());
    println!("  VaR99 net loss   : {:>16.0}", result.var_net_loss(0.99));
    println!("  TVaR99 net loss  : {:>16.0}", result.tvar_net_loss(0.99));
    println!("  economic capital : {:>16.0}", result.economic_capital());
    println!(
        "  return on capital: {:>15.1}%",
        result.return_on_capital() * 100.0
    );
    println!("  P(ruin)          : {:>16.5}", result.prob_ruin());

    // Multi-year capital projection: the "dynamic" in DFA.
    let horizon = run_horizon(&dfa, &consolidated, &HorizonConfig::default())?;
    println!("\n5-year capital projection (serial underwriting cycle):");
    println!(
        "{:>6} {:>20} {:>14}",
        "year", "mean capital", "cum. P(ruin)"
    );
    for (y, (cap, ruin)) in horizon
        .mean_capital_by_year
        .iter()
        .zip(&horizon.ruin_by_year)
        .enumerate()
    {
        println!("{:>6} {:>20.0} {:>14.5}", y + 1, cap, ruin);
    }
    println!(
        "  mean annualised capital growth: {:>6.2}%",
        horizon.mean_growth_rate() * 100.0
    );
    Ok(())
}
