//! YELLT-scale drill-down with MapReduce over sharded files — the
//! analysis the paper says is "almost impossible" at the
//! Year-Event-Location-Loss level in conventional tools.
//!
//! ```text
//! cargo run --release --example yellt_drilldown
//! ```
//!
//! Generates a location-resolution loss table (YELLT) for one book by
//! streaming it straight into a sharded store (never materialising it),
//! then runs two MapReduce jobs: per-location tail risk and per-event
//! contribution.

use riskpipe_catmodel::{
    simulate_yet, CatalogConfig, EltGenConfig, EventCatalog, ExposureConfig, ExposurePortfolio,
    GroundUpModel, YetConfig,
};
use riskpipe_exec::ThreadPool;
use riskpipe_mapreduce::{EventContributionJob, LocationRiskJob};
use riskpipe_tables::{ShardedReader, ShardedWriter};
use riskpipe_types::{RiskResult, TrialId};

fn main() -> RiskResult<()> {
    let pool = ThreadPool::default();
    let trials = 2_000usize;

    // Stage-1 inputs for one book.
    let catalog = EventCatalog::generate(&CatalogConfig {
        events: 5_000,
        total_annual_rate: 40.0,
        seed: 21,
        ..CatalogConfig::default()
    })?;
    let exposure = ExposurePortfolio::generate(&ExposureConfig {
        locations: 300,
        seed: 22,
        ..ExposureConfig::default()
    })?;
    let model = GroundUpModel::new(&catalog, &exposure, EltGenConfig::default());
    let yet = simulate_yet(&catalog, &YetConfig { trials, seed: 23 }, &pool)?;

    // Stream the YELLT into a sharded store, row by row.
    let dir = std::env::temp_dir().join(format!("riskpipe-yellt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = ShardedWriter::create(&dir, 8)?;
    let mut rows = 0u64;
    for t in 0..trials {
        let (events, _days, _zs) = yet.trial_slices(TrialId::new(t as u32));
        for &e in events {
            model.for_each_location_loss(e as usize, |loc, loss| {
                // Row-level spill; errors surface on finish().
                let _ = writer.push_row(t as u32, e, loc, loss);
                rows += 1;
            });
        }
    }
    let manifest = writer.finish()?;
    println!(
        "YELLT spilled: {} rows across {} shards at {}",
        manifest.rows,
        manifest.shards,
        dir.display()
    );

    let reader = ShardedReader::open(&dir)?;

    // Job 1: per-location annual mean and TVaR.
    let job = LocationRiskJob {
        trials,
        alpha: 0.99,
    };
    let (mut locations, stats) = job.run(&reader, 4, &pool)?;
    println!(
        "\nlocation risk job: {} map tasks, {} reduce tasks, {} shuffle records",
        stats.map_tasks, stats.reduce_tasks, stats.shuffle_records
    );
    locations.sort_by(|a, b| b.tvar.total_cmp(&a.tvar));
    println!("top 10 locations by 99% TVaR:");
    println!("{:>10} {:>16} {:>16}", "location", "mean annual", "TVaR 99");
    for row in locations.iter().take(10) {
        println!(
            "{:>10} {:>16.0} {:>16.0}",
            row.location.raw(),
            row.mean_annual_loss,
            row.tvar
        );
    }

    // Job 2: which events drive the book.
    let (events, _) = EventContributionJob.run(&reader, 4, &pool)?;
    println!("\ntop 10 events by total loss contribution:");
    println!("{:>10} {:>16}", "event", "total loss");
    for (e, loss) in events.iter().take(10) {
        println!("{e:>10} {loss:>16.0}");
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
