//! Full pipeline runs through the `RiskSession` facade: the per-stage
//! timing and data-volume report under both data-management strategies
//! (in-memory and sharded files), then a concurrent scenario batch —
//! the many-scenarios-per-day production shape.
//!
//! ```text
//! cargo run --release --example portfolio_rollup
//! ```

use riskpipe_core::{DataStrategy, RiskSession, ScenarioConfig};
use riskpipe_tables::ScaleSpec;
use riskpipe_types::RiskResult;

fn main() -> RiskResult<()> {
    let scenario = ScenarioConfig::small().with_seed(11).with_trials(5_000);

    println!("=== strategy 1: accumulate in memory ===\n");
    let session = RiskSession::builder().build()?;
    let report = session.run(&scenario)?;
    println!("{report}\n");

    println!("\n=== strategy 2: sharded distributed file space ===\n");
    let dir = std::env::temp_dir().join(format!("riskpipe-rollup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sharded = RiskSession::builder()
        .strategy(DataStrategy::ShardedFiles {
            dir: dir.clone(),
            shards: 8,
        })
        .build()?;
    let report = sharded.run(&scenario)?;
    println!("{report}\n");
    println!(
        "YELT spilled to {} across 8 shards ({} bytes)",
        dir.display(),
        report.yelt_file_bytes
    );
    std::fs::remove_dir_all(&dir).ok();

    println!("\n=== scenario batch: four books, one shared pool ===\n");
    let scenarios: Vec<ScenarioConfig> = (0..4)
        .map(|i| {
            ScenarioConfig::small()
                .with_seed(40 + i as u64)
                .with_trials(2_000)
        })
        .collect();
    let reports = session
        .sweep(&scenarios)
        .collect()
        .drive()?
        .into_reports()
        .expect("collection was requested");
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "seed", "mean loss", "TVaR99", "100y PML"
    );
    for (s, r) in scenarios.iter().zip(&reports) {
        println!(
            "{:>8} {:>16.0} {:>16.0} {:>16.0}",
            s.seed,
            r.measures.mean,
            r.measures.tvar99,
            r.pml_100.unwrap_or(0.0)
        );
    }

    println!("\n=== the paper's scale, for context ===\n");
    println!("{}", ScaleSpec::paper_example());
    Ok(())
}
