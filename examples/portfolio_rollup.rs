//! Full pipeline run: stage 1 → stage 2 → stage 3, with the per-stage
//! timing and data-volume report, under both data-management strategies
//! (in-memory and sharded files).
//!
//! ```text
//! cargo run --release --example portfolio_rollup
//! ```

use riskpipe_core::{Pipeline, ScenarioConfig};
use riskpipe_exec::ThreadPool;
use riskpipe_tables::ScaleSpec;
use riskpipe_types::RiskResult;
use std::sync::Arc;

fn main() -> RiskResult<()> {
    let pool = Arc::new(ThreadPool::default());
    let scenario = ScenarioConfig::small().with_seed(11).with_trials(5_000);

    println!("=== strategy 1: accumulate in memory ===\n");
    let report = Pipeline::new(scenario.clone()).run(Arc::clone(&pool))?;
    println!("{report}\n");

    println!("\n=== strategy 2: sharded distributed file space ===\n");
    let dir = std::env::temp_dir().join(format!("riskpipe-rollup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = Pipeline::new(scenario)
        .with_sharded_files(dir.clone(), 8)
        .run(pool)?;
    println!("{report}\n");
    println!(
        "YELT spilled to {} across 8 shards ({} bytes)",
        dir.display(),
        report.yelt_file_bytes
    );
    std::fs::remove_dir_all(&dir).ok();

    println!("\n=== the paper's scale, for context ===\n");
    println!("{}", ScaleSpec::paper_example());
    Ok(())
}
