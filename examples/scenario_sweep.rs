//! Streaming scenario sweep: price one book at many attachment points
//! without materialising a report per scenario — and consume the one
//! sweep from several sinks at once.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```
//!
//! Demonstrates the sweeps story end to end:
//!
//! * the declarative `SweepPlan`: `session.sweep(&sweep).summary()
//!   .persist_to(store).drive()` runs the scenarios **once** through
//!   the streaming core (input-order delivery, O(pool width) peak
//!   memory) and fans every report out to all requested consumers —
//!   pooled analytics *and* durable per-report artifacts from a single
//!   pass, each bit-identical to what it would get as the only sink;
//! * the stage-1 cache: every scenario here shares one catalogue
//!   fingerprint (only the attachment factor varies), so the expensive
//!   model run — catalogue, ELTs, YET — happens once and the hit/miss
//!   counters prove it;
//! * pooled sweep analytics: `SweepSummary` folds every trial of every
//!   scenario into mergeable quantile sketches — pooled AEP/OEP
//!   points, VaR99/TVaR99, PML, and OEP-conditional tail means per
//!   return-period band — without retaining a single per-scenario YLT;
//! * the raw sink layer beneath the plan (`run_stream` with a closure)
//!   and the lazy iterator adapter (`stream`).

use riskpipe::prelude::*;
use std::sync::Arc;

fn main() -> RiskResult<()> {
    let session = Arc::new(
        RiskSession::builder()
            .engine(EngineKind::CpuParallel)
            .build()?,
    );
    println!(
        "session: {:?} engine, {} threads, {} store",
        session.engine(),
        session.pool().thread_count(),
        session.store_name()
    );

    // A pricing sweep: one catalogue seed, twelve attachment points.
    let sweep: Vec<ScenarioConfig> = (0..12)
        .map(|i| {
            ScenarioConfig::small()
                .with_seed(2026)
                .with_name(format!("attach-{:.2}", 0.25 + 0.15 * i as f64))
                .with_attachment_factor(0.25 + 0.15 * i as f64)
        })
        .collect();

    // One declared plan, two consumers, one streaming pass: pooled
    // analytics plus durable per-report artifacts. Each report's YLT
    // is materialised once and shared by reference across the sinks.
    let spill = std::env::temp_dir().join("riskpipe-sweep-example");
    let _ = std::fs::remove_dir_all(&spill);
    let store = Arc::new(riskpipe::core::ShardedFilesStore::new(&spill, 2)?);
    println!(
        "\ndriving one plan: summary + persistence over {} scenarios",
        sweep.len()
    );
    let outcome = session
        .sweep(&sweep)
        .summary()
        .persist_to(store.clone())
        .drive()?;

    let summary = outcome.summary().expect("summary was requested");
    println!("\n{summary}");

    // The summary pooled every trial of every scenario while the
    // reports dropped: full cross-sweep EP analytics, O(sketch) memory.
    println!(
        "pooled AEP curve over {} trials ({}):",
        summary.trials(),
        if summary.analytics_exact() {
            "exact".to_string()
        } else {
            format!("sketched, rank err <= {:.4}", summary.rank_error_bound())
        }
    );
    for p in summary.aep_points() {
        println!(
            "  {:>5.0}y (p={:<6.4})  loss {:>16.0}",
            p.return_period, p.probability, p.loss
        );
    }

    // OEP-conditional tail means per return-period band, straight off
    // the pooled OEP sketch: "what does a 25-to-100-year occurrence
    // year cost on average?"
    println!("\npooled OEP tail means by return-period band:");
    for (lo, hi) in [(5.0, 25.0), (25.0, 100.0), (100.0, f64::INFINITY)] {
        if let Some(mean) = summary.tail_mean_between(lo, hi) {
            let band = if hi.is_finite() {
                format!("{lo:>3.0}y..{hi:<3.0}y")
            } else {
                format!("{lo:>3.0}y..    ")
            };
            println!("  {band}  mean occurrence loss {:>16.0}", mean);
        }
    }

    let persisted = outcome.persisted().expect("persistence was requested");
    println!(
        "\npersisted run {}: {} reports, {} bytes under {}",
        persisted.run(),
        persisted.reports(),
        persisted.bytes(),
        spill.display()
    );
    store.clear_runs()?;
    std::fs::remove_dir_all(&spill).ok();

    let stats = session.stage1_cache_stats();
    println!(
        "stage-1 cache: {} miss(es), {} hit(s) — the catalogue, ELTs and \
         YET were built {} time(s) for {} scenarios",
        stats.misses,
        stats.hits,
        stats.misses,
        sweep.len()
    );

    // The raw sink layer the plan drives: a closure over run_stream.
    println!("\nraw run_stream (callback form), first stage timings:");
    session.run_stream(&sweep[..4], |i, report: PipelineReport| {
        println!(
            "  [{i:>2}] {:<12} TVaR99 {:>16.0}  (stage 1 {:>6.1} ms)",
            report.scenario_name,
            report.measures.tvar99,
            report.timings[0].elapsed.as_secs_f64() * 1e3,
        );
        Ok(())
    })?;

    // Iterator form: same sweep, consumed lazily; dropping the iterator
    // early would cancel the remainder.
    println!("\niterator form, first three only:");
    for report in session.stream(sweep).take(3) {
        let report = report?;
        println!(
            "  {:<12} mean {:>16.0}",
            report.scenario_name, report.measures.mean
        );
    }
    Ok(())
}
