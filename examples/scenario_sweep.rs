//! Streaming scenario sweep: price one book at many attachment points
//! without materialising a report per scenario.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```
//!
//! Demonstrates the two halves of the sweeps story:
//!
//! * `run_stream` delivers each report in input order as it completes
//!   and drops it after the sink returns — peak memory is O(pool
//!   width) reports, so the same code shape scales to thousands of
//!   scenarios;
//! * the stage-1 cache: every scenario here shares one catalogue
//!   fingerprint (only the attachment factor varies), so the expensive
//!   model run — catalogue, ELTs, YET — happens once and the hit/miss
//!   counters prove it;
//! * sweep analytics over the *pooled* distribution: `SweepSummary` is
//!   itself a `ReportSink` folding every trial of every scenario into
//!   mergeable quantile sketches, so the sweep reports pooled AEP/OEP
//!   points, VaR99/TVaR99 and PML without retaining a single
//!   per-scenario YLT.

use riskpipe::core::SweepSummary;
use riskpipe::prelude::*;
use std::sync::Arc;

fn main() -> RiskResult<()> {
    let session = Arc::new(
        RiskSession::builder()
            .engine(EngineKind::CpuParallel)
            .build()?,
    );
    println!(
        "session: {:?} engine, {} threads, {} store",
        session.engine(),
        session.pool().thread_count(),
        session.store_name()
    );

    // A pricing sweep: one catalogue seed, twelve attachment points.
    let sweep: Vec<ScenarioConfig> = (0..12)
        .map(|i| {
            ScenarioConfig::small()
                .with_seed(2026)
                .with_name(format!("attach-{:.2}", 0.25 + 0.15 * i as f64))
                .with_attachment_factor(0.25 + 0.15 * i as f64)
        })
        .collect();

    // Callback form: fold each report into an online summary and let it
    // drop — nothing accumulates.
    println!("\nstreaming {} scenarios (callback form):", sweep.len());
    let mut summary = SweepSummary::new();
    session.run_stream(&sweep, |i, report: PipelineReport| {
        println!(
            "  [{i:>2}] {:<12} TVaR99 {:>16.0}  (stage 1 {:>6.1} ms)",
            report.scenario_name,
            report.measures.tvar99,
            report.timings[0].elapsed.as_secs_f64() * 1e3,
        );
        summary.push(&report);
        Ok(())
    })?;
    println!("\n{summary}");

    // The summary pooled every trial of every scenario while the
    // reports dropped: full cross-sweep EP analytics, O(sketch) memory.
    println!(
        "pooled AEP curve over {} trials ({}):",
        summary.trials(),
        if summary.analytics_exact() {
            "exact".to_string()
        } else {
            format!("sketched, rank err <= {:.4}", summary.rank_error_bound())
        }
    );
    for p in summary.aep_points() {
        println!(
            "  {:>5.0}y (p={:<6.4})  loss {:>16.0}",
            p.return_period, p.probability, p.loss
        );
    }

    let stats = session.stage1_cache_stats();
    println!(
        "\nstage-1 cache: {} miss(es), {} hit(s) — the catalogue, ELTs and \
         YET were built {} time(s) for {} scenarios",
        stats.misses,
        stats.hits,
        stats.misses,
        sweep.len()
    );

    // Persisting form: each report's YLT + measures land in an
    // IntermediateStore the moment the report is delivered, then the
    // report drops — durable per-scenario artifacts, pooled analytics,
    // O(pool width) memory, and storage throughput backpressures the
    // sweep.
    let spill = std::env::temp_dir().join("riskpipe-sweep-example");
    let _ = std::fs::remove_dir_all(&spill);
    let store = Arc::new(riskpipe::core::ShardedFilesStore::new(&spill, 2)?);
    let mut sink = PersistingSink::new(store.clone());
    session.run_stream(&sweep, &mut sink)?;
    println!(
        "\npersisting sink: {} reports, {} bytes under {}",
        sink.reports_persisted(),
        sink.bytes_persisted(),
        spill.display()
    );
    store.clear_runs()?;
    std::fs::remove_dir_all(&spill).ok();

    // Iterator form: same sweep, consumed lazily; dropping the iterator
    // early would cancel the remainder.
    println!("\niterator form, first three only:");
    for report in session.stream(sweep).take(3) {
        let report = report?;
        println!(
            "  {:<12} mean {:>16.0}",
            report.scenario_name, report.measures.mean
        );
    }
    Ok(())
}
