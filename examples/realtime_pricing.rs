//! Real-time contract pricing — the paper's §II claim that "a 1 million
//! trial aggregate simulation on a typical contract only takes 25
//! seconds and can therefore support real-time pricing".
//!
//! ```text
//! cargo run --release --example realtime_pricing [trials]
//! ```
//!
//! Prices one excess-of-loss layer against a 1M-trial YET and reports
//! premium components and throughput. (Debug builds are ~10x slower;
//! use --release for the headline number.)

use riskpipe_aggregate::{
    price_with_reinstatements, run_per_layer, AggregateOptions, Layer, LayerTerms, Portfolio,
    RealTimePricer, ReinstatementTerms,
};
use riskpipe_catmodel::{
    simulate_yet, CatalogConfig, EltGenConfig, EventCatalog, ExposureConfig, ExposurePortfolio,
    GroundUpModel, YetConfig,
};
use riskpipe_exec::ThreadPool;
use riskpipe_types::{LayerId, RiskResult};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> RiskResult<()> {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let pool = Arc::new(ThreadPool::default());
    println!(
        "real-time pricing: {} trials on {} threads",
        trials,
        pool.thread_count()
    );

    // Stage-1 inputs for one "typical contract".
    // lint: allow(D3) — demo-only build-time printout; the catalogue and
    // ELT are seeded and deterministic.
    let t0 = Instant::now();
    let catalog = EventCatalog::generate(&CatalogConfig {
        events: 10_000,
        total_annual_rate: 50.0,
        seed: 7,
        ..CatalogConfig::default()
    })?;
    let exposure = ExposurePortfolio::generate(&ExposureConfig {
        locations: 500,
        seed: 8,
        ..ExposureConfig::default()
    })?;
    let model = GroundUpModel::new(&catalog, &exposure, EltGenConfig::default());
    let elt = Arc::new(model.generate_elt(&pool)?);
    println!(
        "  contract ELT: {} rows (built in {:.2}s)",
        elt.len(),
        t0.elapsed().as_secs_f64()
    );

    // lint: allow(D3) — demo-only simulation-time printout; the YET is
    // seeded and deterministic.
    let t0 = Instant::now();
    let yet = simulate_yet(&catalog, &YetConfig { trials, seed: 99 }, &pool)?;
    println!(
        "  YET: {} occurrences over {} trials (pre-simulated in {:.2}s)",
        yet.total_occurrences(),
        yet.trials(),
        t0.elapsed().as_secs_f64()
    );

    // The layer being priced: attaches at half the mean event loss.
    let mean_event = elt.total_mean_loss() / elt.len() as f64;
    let elt_arc = Arc::clone(&elt);
    let layer = Layer::new(
        LayerId::new(0),
        LayerTerms::xl(0.5 * mean_event, 100.0 * mean_event),
        elt,
    )?;

    let pricer = RealTimePricer::new(Arc::clone(&pool));
    let result = pricer.price(layer, &yet)?;

    println!("\npricing result:");
    println!("  pure premium      : {:>16.2}", result.pure_premium);
    println!("  sd of annual loss : {:>16.2}", result.sd);
    println!("  technical premium : {:>16.2}", result.technical_premium);
    println!("  VaR 99%           : {:>16.2}", result.var99);
    println!(
        "  simulation        : {:.3}s ({:.0} trials/s)",
        result.elapsed.as_secs_f64(),
        result.trials_per_second
    );
    println!(
        "  real-time (<25s paper budget): {}",
        result.is_realtime(Duration::from_secs(25))
    );

    // The same contract quoted with paid reinstatements: two
    // reinstatements at 100%, aggregate limit 3 × the layer width.
    let reinst = ReinstatementTerms::flat(2, 1.0);
    let terms = reinst.apply_to(LayerTerms::xl(0.5 * mean_event, 100.0 * mean_event))?;
    let portfolio = Portfolio::from_parts(vec![(terms, Arc::clone(&elt_arc))])?;
    // lint: allow(D3) — demo-only quote-latency printout; the quote is
    // computed from the deterministic per-layer YLT.
    let t0 = Instant::now();
    let layer_ylts = run_per_layer(&portfolio, &yet, &AggregateOptions::default())?;
    let quote = price_with_reinstatements(&terms, &reinst, &layer_ylts[0])?;
    println!("\nquoted with 2 reinstatements @ 100% (agg limit 3x layer):");
    println!("  expected recovery : {:>16.2}", quote.expected_recovery);
    println!("  deposit premium   : {:>16.2}", quote.base_premium);
    println!(
        "  E[reinst premium] : {:>16.2}  (fraction {:.4})",
        quote.expected_reinstatement_premium, quote.expected_premium_fraction
    );
    println!(
        "  rate on line      : {:>15.2}%",
        quote.rate_on_line * 100.0
    );
    println!("  (per-layer YLT pass: {:.2}s)", t0.elapsed().as_secs_f64());
    Ok(())
}
