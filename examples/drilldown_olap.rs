//! Stage-3 drill-down OLAP: a scenario sweep streamed through a
//! `WarehouseSink` into a queryable sketch-valued warehouse.
//!
//! ```text
//! cargo run --release --example drilldown_olap
//! ```
//!
//! The paper's stage-3 workload is drill-down over trial data — by
//! peril, region, layer, return-period band — that conventional
//! portfolio tools cannot rescan per question. This example runs the
//! full subsystem end to end:
//!
//! 1. **one declared plan, three consumers**: a 2-region × 2-peril ×
//!    3-attachment sweep runs **once** through
//!    `session.sweep(..).summary().persist_to(store).warehouse(layout)
//!    .materialize_budget(..).drive()` — pooled analytics, durable
//!    per-report artifacts, and a warehouse from a single streaming
//!    pass. The warehouse ingest is the MapReduce path: each report is
//!    banded by return-period rank, spilled to a sharded per-report
//!    store, shuffled through the `YltFactJob` job, and folded into
//!    sketch-valued cells;
//! 2. **budgeted materialisation**: HRU greedy view selection under a
//!    byte budget picks which cuboids to pre-compute (a plan knob);
//! 3. **three query shapes** — rollup, slice, dice with a
//!    return-period-band filter — each answering VaR99/TVaR99 per cell
//!    from the sketches, never from a fact rescan;
//! 4. **rebuild from the spill**: the same warehouse is reconstructed
//!    from the plan's own persisted artifacts and the drill-down cells
//!    match the live sink bit for bit (pinned in tests/sweep_plan.rs
//!    and tests/drilldown.rs across 1/2/8 threads too).

use riskpipe::core::money;
use riskpipe::prelude::*;
use riskpipe::warehouse::dim;
use std::sync::Arc;

/// The sweep grid: one scenario per (region, peril, attachment point).
fn grid() -> (Vec<ScenarioConfig>, Vec<ScenarioDims>) {
    let mut scenarios = Vec::new();
    let mut dims = Vec::new();
    for region in 0..2u32 {
        for peril in 0..2u32 {
            for attach in 0..3u32 {
                let factor = 0.25 + 0.25 * attach as f64;
                let scenario = ScenarioConfig::small()
                    .with_seed(0xD1 + (region * 2 + peril) as u64)
                    .with_trials(500)
                    .with_attachment_factor(factor)
                    .with_name(format!("r{region}-p{peril}-a{factor:.2}"));
                dims.push(ScenarioDims::for_scenario(region, peril, &scenario));
                scenarios.push(scenario);
            }
        }
    }
    (scenarios, dims)
}

fn print_rows(label: &str, rows: &[SketchRow], cost: &riskpipe::warehouse::QueryCost) {
    println!(
        "\n{label} (source {:?}, {} cells read):",
        cost.source, cost.cells_read
    );
    println!(
        "  {:<24} {:>8} {:>18} {:>18}",
        "cell (geo,event,contract,time)", "count", "VaR99", "TVaR99"
    );
    for row in rows {
        println!(
            "  {:<24} {:>8} {:>18} {:>18}",
            format!("{:?}", row.codes),
            row.cell.count,
            money(row.cell.var99().unwrap_or(f64::NAN)),
            money(row.cell.tvar99().unwrap_or(f64::NAN)),
        );
    }
}

fn main() -> RiskResult<()> {
    let (scenarios, dims) = grid();
    let session = RiskSession::builder()
        .engine(EngineKind::CpuParallel)
        .build()?;
    let layout = DrilldownLayout::new(dims, session.engine())?;
    println!(
        "sweep: {} scenarios over schema {}",
        scenarios.len(),
        LevelSelect::BASE.describe(layout.schema())
    );

    // ---- 1. one plan: sweep → summary + spill + warehouse ---------
    let spill = std::env::temp_dir().join("riskpipe-drilldown-example");
    let _ = std::fs::remove_dir_all(&spill);
    let store = Arc::new(riskpipe::core::ShardedFilesStore::new(&spill, 2)?);
    let outcome = session
        .sweep(&scenarios)
        .summary()
        .persist_to(store.clone())
        .warehouse(layout.clone())
        .materialize_budget(256 * 1024)
        .drive()?;
    println!(
        "one pass: pooled TVaR99 {} over {} trials, {} reports persisted",
        outcome
            .summary()
            .unwrap()
            .pooled_tvar99()
            .unwrap_or(f64::NAN),
        outcome.summary().unwrap().trials(),
        outcome.persisted().unwrap().reports(),
    );
    let selection = outcome.selection().expect("budget was requested").clone();
    let wh = outcome.into_drilldown();
    let ingest = wh.ingest_stats();
    println!(
        "ingested {} reports / {} trials through MapReduce ({} shuffle records, {} spill bytes)",
        ingest.reports, ingest.trials, ingest.shuffle_records, ingest.spill_bytes
    );

    // ---- 2. budgeted view materialisation (plan knob) -------------
    println!(
        "materialised {} views under a 256 KiB budget (lattice cost {} → {} bytes-read):",
        selection.picked.len(),
        selection.cost_before,
        selection.cost_after
    );
    for (view, benefit) in selection.picked.iter().zip(&selection.benefits) {
        println!(
            "  {:<40} benefit {:>12}",
            view.describe(wh.schema()),
            benefit
        );
    }
    println!("warehouse footprint: {} bytes", wh.memory_bytes());

    // ---- 3. three query shapes ------------------------------------
    // Rollup: pooled loss distribution per region × peril (layers and
    // bands rolled away).
    let rollup = Query::group_by(LevelSelect([0, 0, 3, 1]));
    let (rows, cost) = wh.answer(&rollup)?;
    print_rows("rollup — region × peril", &rows, &cost);

    // Slice: region 1 only, per peril × attachment band.
    let slice = Query::group_by(LevelSelect([0, 0, 1, 1])).filter(Filter::slice(dim::GEO, 1));
    let (rows, cost) = wh.answer(&slice)?;
    print_rows("slice — region 1, peril × attachment band", &rows, &cost);

    // Dice: tail only — the ≥100-year return-period bands, per region
    // × peril.
    let dice = Query::group_by(LevelSelect([0, 0, 3, 0])).filter(Filter {
        dim: dim::TIME,
        codes: vec![6, 7],
    });
    let (rows, cost) = wh.answer(&dice)?;
    print_rows("dice — ≥100y bands, region × peril", &rows, &cost);

    // ---- 4. rebuild from the persisted spill ----------------------
    // The plan already persisted every report (run 0) while the
    // warehouse was being built from the same pass — so the overnight
    // rebuild needs no second sweep at all.
    let rebuilt = session.analytics(layout).rebuild_from_store(&store, 0)?;
    let (live, _) = wh.answer(&rollup)?;
    let (reloaded, _) = rebuilt.answer(&rollup)?;
    let identical = live.len() == reloaded.len()
        && live.iter().zip(&reloaded).all(|(a, b)| {
            a.codes == b.codes
                && a.cell.count == b.cell.count
                && a.cell.var99().map(f64::to_bits) == b.cell.var99().map(f64::to_bits)
                && a.cell.tvar99().map(f64::to_bits) == b.cell.tvar99().map(f64::to_bits)
        });
    println!(
        "\nrebuild from the plan's persisted spill: drill-down cells bit-identical to live sink: {}",
        identical
    );
    assert!(identical, "rebuild must match the live sink bit for bit");
    store.clear_runs()?;
    std::fs::remove_dir_all(&spill).ok();
    Ok(())
}
