//! Quickstart: the three-stage pipeline on a small synthetic scenario.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a catalogue + exposure books (stage 1), runs aggregate
//! analysis on the CPU-parallel engine (stage 2), and prints the risk
//! metrics and the aggregate exceedance-probability curve a reinsurer
//! would report from the YLT.

use riskpipe::prelude::*;
use riskpipe_metrics::RiskMeasures;

fn main() -> RiskResult<()> {
    // Stage 1: risk modelling.
    let scenario = ScenarioConfig::small().with_seed(2026);
    println!("building stage 1 (catalogue, exposures, ELTs, YET)...");
    let stage1 = scenario.build_stage1()?;
    println!(
        "  {} contracts, {} YET trials, {} portfolio ELT rows",
        stage1.portfolio().len(),
        stage1.year_event_table().trials(),
        stage1.portfolio().total_elt_rows(),
    );

    // Stage 2: aggregate analysis.
    println!("running aggregate analysis (CPU-parallel engine)...");
    let portfolio = stage1.portfolio();
    let ylt = AggregateRunner::new(EngineKind::CpuParallel)
        .run(&portfolio, &stage1.year_event_table())?;

    // Metrics from the YLT.
    let measures = RiskMeasures::from_ylt(&ylt);
    println!("\nportfolio risk measures:\n{measures}\n");

    let ep = EpCurve::aggregate(&ylt);
    println!("aggregate EP curve:");
    println!("{:>12} {:>12} {:>16}", "return (y)", "prob", "loss");
    for p in ep.standard_points() {
        println!(
            "{:>12.0} {:>12.4} {:>16.0}",
            p.return_period, p.probability, p.loss
        );
    }
    println!("\n100-year PML: {:.0}", ep.pml(100.0));
    Ok(())
}
