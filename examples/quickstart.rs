//! Quickstart: the three-stage pipeline on a small synthetic scenario,
//! through the `RiskSession` facade.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Configures a session once (engine + pool), runs one scenario through
//! risk modelling (stage 1), aggregate analysis (stage 2) and DFA
//! (stage 3), and prints the risk metrics and the aggregate
//! exceedance-probability curve a reinsurer would report from the YLT.

use riskpipe::prelude::*;

fn main() -> RiskResult<()> {
    let session = RiskSession::builder()
        .engine(EngineKind::CpuParallel)
        .build()?;
    println!(
        "session: {:?} engine, {} threads, {} store",
        session.engine(),
        session.pool().thread_count(),
        session.store_name()
    );

    let scenario = ScenarioConfig::small().with_seed(2026);
    println!("running scenario '{}'...", scenario.name);
    let report = session.run(&scenario)?;
    println!(
        "  {} portfolio ELT rows, {} YET occurrences, {} trials",
        report.elt_rows,
        report.yet_occurrences,
        report.ylt.trials(),
    );

    // Metrics from the YLT.
    println!("\nportfolio risk measures:\n{}\n", report.measures);

    let ep = EpCurve::aggregate(&report.ylt);
    println!("aggregate EP curve:");
    println!("{:>12} {:>12} {:>16}", "return (y)", "prob", "loss");
    for p in ep.standard_points() {
        println!(
            "{:>12.0} {:>12.4} {:>16.0}",
            p.return_period, p.probability, p.loss
        );
    }
    println!("\n100-year PML: {:.0}", ep.pml(100.0));
    println!(
        "\nstage 3 (DFA): P(ruin) {:.4}, economic capital {:.0}",
        report.prob_ruin, report.economic_capital
    );
    Ok(())
}
