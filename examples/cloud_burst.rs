//! Pricing the pipeline's processor burst: one simulated week under
//! fixed and elastic provisioning.
//!
//! ```text
//! cargo run --release --example cloud_burst
//! ```

use riskpipe::cloud::{
    peak_deadline_demand, pipeline_week, simulate, total_work_core_ms, FixedPolicy,
    PipelineWeekSpec, Policy, ReactivePolicy, ScheduledPolicy, SimConfig, Stage, DAY_MS, HOUR_MS,
    WEEK_MS,
};
use riskpipe::types::RiskResult;

fn main() -> RiskResult<()> {
    let spec = PipelineWeekSpec::default();
    let jobs = pipeline_week(&spec)?;
    let cfg = SimConfig::default();

    let work_ch = total_work_core_ms(&jobs) as f64 / 3_600_000.0;
    let peak_cores = peak_deadline_demand(&jobs, WEEK_MS);
    let peak_nodes = ((peak_cores as f64 * 1.25) as u64).div_ceil(cfg.node.cores as u64) as u32;
    println!(
        "one pipeline week: {} jobs, {:.0} core-hours; deadline-peak {} cores\n",
        jobs.len(),
        work_ch,
        peak_cores
    );

    let burst = 4 * DAY_MS + 17 * HOUR_MS;
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(FixedPolicy::new(4)),
        Box::new(FixedPolicy::new(peak_nodes)),
        Box::new(ReactivePolicy::new(2, peak_nodes)),
        Box::new(ScheduledPolicy {
            windows: vec![(burst, burst + 14 * HOUR_MS, peak_nodes)],
            base_nodes: 2,
        }),
    ];

    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>11} {:>10}",
        "policy", "complete", "deadlines", "core-hours", "utilization", "peak nodes"
    );
    for p in policies.iter_mut() {
        let r = simulate(&jobs, p.as_mut(), &cfg)?;
        println!(
            "{:<12} {:>10} {:>11.1}% {:>12.0} {:>10.1}% {:>10}",
            r.policy,
            if r.all_complete() { "all" } else { "NO" },
            r.deadline_attainment() * 100.0,
            r.core_hours(),
            r.utilization() * 100.0,
            r.peak_nodes
        );
        let rollup = r
            .jobs
            .iter()
            .find(|j| j.stage == Stage::PortfolioRollup)
            .expect("rollup job");
        println!(
            "{:<12} stage-2 roll-up: span {}, deadline met: {}",
            "",
            rollup
                .span_ms()
                .map(|s| format!("{:.1} h", s as f64 / 3_600_000.0))
                .unwrap_or_else(|| "never finished".into()),
            rollup
                .deadline_met()
                .map(|m| m.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    println!(
        "\nthe burst is the story: a cluster sized for the week's average\n\
         blows the Friday-night reporting deadline; sized for the burst it\n\
         idles six days out of seven. Elastic provisioning meets the deadline\n\
         at roughly a tenth of the fixed-peak cost."
    );
    Ok(())
}
