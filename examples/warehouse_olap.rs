//! Stage-3 analytics over a pre-computed warehouse: build loss facts
//! from the catastrophe model, materialise views, and run the
//! drill-downs an analyst actually asks for.
//!
//! ```text
//! cargo run --release --example warehouse_olap
//! ```

use riskpipe::catmodel::{
    simulate_yet, CatalogConfig, EltGenConfig, EventCatalog, ExposureConfig, ExposurePortfolio,
    GroundUpModel, YetConfig,
};
use riskpipe::exec::ThreadPool;
use riskpipe::types::{EventId, RiskResult, TrialId};
use riskpipe::warehouse::{dim, FactBuilder, Filter, LevelSelect, Query, Schema, Warehouse};

fn main() -> RiskResult<()> {
    let pool = ThreadPool::default();
    let (locations, events, books, trials) = (400u32, 3_000u32, 4u32, 1_500usize);

    // Stage 1/2: location-level losses for a small multi-book
    // portfolio (the YELLT-shaped stream the warehouse ingests).
    println!("generating location-level loss facts ({books} books)...");
    let catalog = EventCatalog::generate(&CatalogConfig {
        events: events as usize,
        total_annual_rate: 30.0,
        seed: 71,
        ..CatalogConfig::default()
    })?;
    let yet = simulate_yet(&catalog, &YetConfig { trials, seed: 72 }, &pool)?;
    let schema = Schema::standard(locations, 8, events, 4, books, 2)?;
    let mut builder = FactBuilder::new(&schema);
    builder.set_trials(trials as u32);
    for book in 0..books {
        let exposure = ExposurePortfolio::generate(&ExposureConfig {
            locations: locations as usize,
            seed: 80 + book as u64,
            ..ExposureConfig::default()
        })?;
        let model = GroundUpModel::new(&catalog, &exposure, EltGenConfig::default());
        let elt = model.generate_elt(&pool)?;
        for t in 0..trials {
            let (evs, days, _) = yet.trial_slices(TrialId::new(t as u32));
            for (k, &e) in evs.iter().enumerate() {
                if elt.row_of(EventId::new(e)).is_none() {
                    continue;
                }
                let day = days[k].min(364) as u32;
                model.for_each_location_loss(e as usize, |loc, loss| {
                    builder
                        .push([loc.raw(), e, book, day], loss)
                        .expect("codes");
                });
            }
        }
    }
    let facts = builder.build();
    println!("  {} facts from {} trials\n", facts.rows(), trials);

    // Materialise: base plus the mid-level view the query mix lives on.
    let mut wh = Warehouse::new(schema.clone(), facts);
    println!("materialising views (parallel build)...");
    let cost = wh.materialize_all(&[LevelSelect::BASE, LevelSelect([1, 1, 1, 1])], Some(&pool))?;
    println!(
        "  build read {cost} rows; views: {:?}\n",
        wh.materialized()
            .iter()
            .map(|s| s.describe(&schema))
            .collect::<Vec<_>>()
    );

    // Drill-downs.
    let trials_f = trials as f64;
    println!("expected annual loss by region × peril (top cells):");
    let (rows, qc) = wh.answer(&Query::group_by(LevelSelect([1, 1, 2, 3])).top(8))?;
    println!(
        "  served from {:?} ({} rows read)",
        qc.source,
        qc.rows_read()
    );
    for r in &rows {
        println!(
            "  region {:>2}  peril {:>2}  EAL {:>14.0}  max single loss {:>12.0}",
            r.codes[dim::GEO],
            r.codes[dim::EVENT],
            r.cell.sum / trials_f,
            r.cell.max
        );
    }

    println!("\nseasonality of book 0 (loss share by season):");
    let (rows, _) = wh.answer(
        &Query::group_by(LevelSelect([2, 2, 0, 2])).filter(Filter::slice(dim::CONTRACT, 0)),
    )?;
    let total: f64 = rows.iter().map(|r| r.cell.sum).sum();
    for r in &rows {
        let share = 100.0 * r.cell.sum / total;
        println!(
            "  season {}: {:>5.1}%  {}",
            r.codes[dim::TIME],
            share,
            "#".repeat((share / 2.0) as usize)
        );
    }

    println!("\ntop 5 loss-driving events in region 0:");
    let (rows, qc) = wh.answer(
        &Query::group_by(LevelSelect([1, 0, 2, 3]))
            .filter(Filter::slice(dim::GEO, 0))
            .top(5),
    )?;
    for r in &rows {
        println!(
            "  event {:>6}: total {:>14.0} over {} facts",
            r.codes[dim::EVENT],
            r.cell.sum,
            r.cell.count
        );
    }
    println!("  ({} rows read, source {:?})", qc.rows_read(), qc.source);
    Ok(())
}
