//! Minimal offline shim for the `bytes` crate API surface this
//! workspace uses: [`Bytes`], [`BytesMut`], and the little-endian
//! read/write subset of [`Buf`]/[`BufMut`]. `Bytes` is a cheap-to-clone
//! `Arc<[u8]>` view; `BytesMut` is a growable buffer that freezes into
//! one.

use std::ops::Deref;
use std::sync::Arc;

/// Read access to a contiguous (or logically contiguous) byte buffer,
/// consumed front-to-back.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The current unconsumed contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Consumed prefix (for the `Buf` impl).
    offset: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.into(),
            offset: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.offset
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.offset..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.offset..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.offset..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: v.into(),
            offset: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.offset += cnt;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Consumed prefix (for the `Buf` impl).
    offset: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
            offset: 0,
        }
    }

    /// Length of the unconsumed contents.
    pub fn len(&self) -> usize {
        self.data.len() - self.offset
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        let v = if self.offset == 0 {
            self.data
        } else {
            self.data[self.offset..].to_vec()
        };
        Bytes::from(v)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.offset..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.offset..]
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.offset += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_f64_le(1.5);
        b.put_slice(b"abc");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r, b"abc");
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3, 4];
        let mut b: &[u8] = &data;
        assert!(b.has_remaining());
        assert_eq!(b.get_u8(), 1);
        b.advance(1);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u16_le(), u16::from_le_bytes([3, 4]));
        assert!(!b.has_remaining());
    }

    #[test]
    fn bytes_clone_is_shallow_and_deref_works() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b.len(), 3);
    }
}
