//! Minimal offline shim for the `proptest` API surface this workspace
//! uses: the [`proptest!`] macro over `pat in strategy` arguments,
//! range/tuple/vec strategies, `any::<T>()`, `prop_map`/`prop_flat_map`
//! adapters, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking** — a failing case
//! reports its inputs (via `Debug` where available in the assertion
//! message) and panics immediately. Case generation is fully
//! deterministic: every test function derives its RNG seed from its own
//! name, so failures reproduce exactly across runs and machines.

pub mod test_runner {
    //! The deterministic case runner.

    /// SplitMix64 — small, fast, and deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded explicitly.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// FNV-1a over a test name — the per-test seed.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived
        /// from it.
        fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            U: Strategy,
            F: Fn(Self::Value) -> U,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        U: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U::Value;
        fn generate(&self, rng: &mut TestRng) -> U::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    // `$u` is `$t`'s unsigned twin: the span is computed with a
    // wrapping subtraction in the native width and reinterpreted
    // unsigned, so signed ranges (negative starts included) never
    // underflow.
    macro_rules! int_range_strategy {
        ($($t:ty => $u:ty),+ $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as $u as u128;
                    let r = ((rng.next_u64() as u128) % span) as $u;
                    self.start.wrapping_add(r as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi.wrapping_sub(lo) as $u as u128) + 1;
                    let r = ((rng.next_u64() as u128) % span) as $u;
                    lo.wrapping_add(r as $t)
                }
            }
        )+};
    }
    int_range_strategy!(
        u8 => u8,
        u16 => u16,
        u32 => u32,
        u64 => u64,
        usize => usize,
        i8 => u8,
        i16 => u16,
        i32 => u32,
        i64 => u64,
        isize => usize,
    );

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $i:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A 0),
        (A 0, B 1),
        (A 0, B 1, C 2),
        (A 0, B 1, C 2, D 3),
        (A 0, B 1, C 2, D 3, E 4),
        (A 0, B 1, C 2, D 3, E 4, F 5),
    );
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, broad-magnitude values (no NaN/inf surprises).
            (rng.next_f64() - 0.5) * 2e12
        }
    }

    /// The full-domain strategy for `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating any `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A collection-size specification: a half-open `[lo, hi)` pair
    /// accepting `usize`, `Range<usize>` and `RangeInclusive<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            if self.lo >= self.hi {
                self.lo
            } else {
                self.lo + (rng.next_u64() as usize) % (self.hi - self.lo)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end().saturating_add(1),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A vector whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: SizeRange,
    }

    /// A map whose target size is drawn from `len`. Key collisions are
    /// retried a bounded number of times, so maps may come up slightly
    /// short when the key domain is small.
    pub fn btree_map<K, V>(key: K, value: V, len: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            len: len.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.draw(rng);
            let mut map = std::collections::BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < n && attempts < n * 10 + 16 {
                attempts += 1;
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` half the time, `Some(inner)` the other half.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    /// `prop::collection::vec(...)` etc. resolve through this alias.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: `proptest! { #[test] fn f(x in 0u32..10) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal: expands each `fn name(pat in strategy, ..) { body }`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::test_runner::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(
                    seed ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                );
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        case + 1, config.cases, stringify!($name), msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__pa, __pb) => {
                if !(*__pa == *__pb) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), __pa, __pb
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__pa, __pb) => {
                if !(*__pa == *__pb) {
                    return ::std::result::Result::Err(::std::format!($($fmt)+));
                }
            }
        }
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__pa, __pb) => {
                if *__pa == *__pb {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{}` != `{}`\n  both: {:?}",
                        stringify!($a),
                        stringify!($b),
                        __pa
                    ));
                }
            }
        }
    };
}

/// Skip the current case when an assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.25..0.75f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_honoured(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
            nested in prop::collection::vec((0u16..4, 0.0..1.0f64), 0..5),
        ) {
            prop_assert!(pair < 20);
            for (a, f) in nested {
                prop_assert!(a < 4, "a was {}", a);
                prop_assert!((0.0..1.0).contains(&f));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_respected(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    proptest! {
        #[test]
        fn signed_ranges_with_negative_bounds(
            x in -5i64..5,
            y in -128i8..=127,
            z in isize::MIN..0,
        ) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((-128..=127).contains(&y));
            prop_assert!(z < 0);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = (0u32..1000, 0.0..1.0f64);
        let mut r1 = crate::test_runner::TestRng::new(42);
        let mut r2 = crate::test_runner::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    fn flat_map_derives_dependent_strategies() {
        use crate::strategy::Strategy;
        let s = (2usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n..(n + 1)));
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
        }
    }
}
