//! Minimal offline shim for the `criterion` API surface this
//! workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! No statistics: each benchmark runs `sample_size` timed iterations
//! (after one warm-up) and prints mean/min wall times. Passing `--test`
//! (as `cargo test` does for bench targets) runs each benchmark exactly
//! once, so benches double as smoke tests.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How a group's throughput is expressed in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayable parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the measured closure; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration times for the caller's report line.
    times: Vec<Duration>,
}

impl Bencher {
    /// Run and time `f` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up.
        black_box(f());
        self.times.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed());
        }
    }
}

fn report(name: &str, times: &[Duration], throughput: Option<Throughput>) {
    if times.is_empty() {
        println!("bench {name:<40} (no samples)");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples){rate}",
        mean,
        min,
        times.len()
    );
}

/// The top-level harness.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` / `cargo bench` pass harness flags; `--test`
        // means "run once as a smoke test".
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the default number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a closure directly under the harness.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        run_one(name, samples, None, f);
        self
    }
}

fn run_one(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut b);
    report(name, &b.times, throughput);
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored (the shim has no target time); kept for API parity.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the throughput used in this group's report lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmark a closure over an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("unit", |b| b.iter(|| runs += 1));
        // warm-up + samples
        assert!(runs >= 2);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("b", 5), &5u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
