//! Minimal offline shim for the `crossbeam-deque` API surface this
//! workspace uses. Semantics match the real crate — per-worker LIFO
//! deques whose owner pops from one end while stealers take from the
//! other, plus a FIFO injector with batch stealing — but the
//! implementation is a mutexed `VecDeque` rather than a lock-free
//! Chase-Lev deque. Correctness over peak throughput; the pool's
//! batching keeps the lock off the hot path.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// How many injector jobs a batch steal moves into the worker's deque
/// (beyond the one returned).
const BATCH: usize = 16;

/// Outcome of a steal attempt.
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One item was stolen.
    Success(T),
    /// A race was lost; retry.
    Retry,
}

impl<T> Steal<T> {
    /// Whether this is `Success`.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Extract the stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

fn locked<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    match q.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// A deque owned by a single worker thread.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Create a LIFO worker deque (owner pops most-recent first).
    pub fn new_lifo() -> Self {
        Self {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Create a FIFO worker deque.
    pub fn new_fifo() -> Self {
        Self::new_lifo()
    }

    /// Push onto the owner's end.
    pub fn push(&self, item: T) {
        locked(&self.queue).push_back(item);
    }

    /// Pop from the owner's end (LIFO).
    pub fn pop(&self) -> Option<T> {
        locked(&self.queue).pop_back()
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    /// A handle other threads use to steal from this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// Steals from the opposite end of a [`Worker`]'s deque.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steal the oldest item.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// A shared FIFO injector queue.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a task for any worker to take.
    pub fn push(&self, item: T) {
        locked(&self.queue).push_back(item);
    }

    /// Steal one task.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Steal a batch into `dest`, returning one task directly.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = locked(&self.queue);
        let first = match q.pop_front() {
            Some(v) => v,
            None => return Steal::Empty,
        };
        if !q.is_empty() {
            let mut d = locked(&dest.queue);
            for _ in 0..BATCH {
                match q.pop_front() {
                    Some(v) => d.push_back(v),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// Whether the injector is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        assert!(matches!(s.steal(), Steal::Success(1)));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_batch_steal_moves_work() {
        let inj = Injector::new();
        for i in 0..40 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let got = inj.steal_batch_and_pop(&w);
        assert!(matches!(got, Steal::Success(0)));
        assert!(!w.is_empty());
        let mut drained = 0;
        while w.pop().is_some() {
            drained += 1;
        }
        assert!(drained > 0 && drained <= super::BATCH);
        assert!(!inj.is_empty());
    }

    #[test]
    fn empty_steals_report_empty() {
        let inj: Injector<u32> = Injector::new();
        assert!(matches!(inj.steal(), Steal::Empty));
        let w: Worker<u32> = Worker::new_lifo();
        assert!(matches!(w.stealer().steal(), Steal::Empty));
        assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Empty));
    }
}
