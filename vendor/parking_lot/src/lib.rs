//! Minimal offline shim for the `parking_lot` API surface this
//! workspace uses: [`Mutex`] (non-poisoning `lock()` returning the
//! guard directly) and [`Condvar`] (`wait`/`wait_for` taking `&mut
//! MutexGuard`). Backed by `std::sync`; poisoning is swallowed the way
//! parking_lot semantically never poisons.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive with the parking_lot calling
/// convention: `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Guard returned by [`Mutex::lock`]. Holds the std guard in an
/// `Option` so [`Condvar`] waits can move it out and back by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's `&mut guard` convention.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(50));
        }
        h.join().unwrap();
        assert!(*done);
    }
}
